"""Compile expressions to plain Python closures (the per-row hot path).

:mod:`repro.engine.expression` interprets the AST recursively for every
row: each :class:`ColumnRef` walks schemas, each node costs an
``isinstance`` ladder, and every row allocates an ``EvalContext``.
That is fine for the oracle but dominates wall-clock time on the
transformed plans' restrict/project/join loops and on nested
iteration's inner rescans.

This module compiles an :class:`~repro.sql.ast.Expr` against a *schema
chain* — the row's own :class:`~repro.engine.schema.RowSchema` plus the
schemas of any enclosing (correlated) contexts — into a closure of the
form ``fn(row, outer)``:

* column indices are resolved **once**, at compile time (a reference to
  an enclosing block becomes a fixed number of ``.outer`` hops plus a
  tuple index);
* comparison and arithmetic operators are bound **once** (no per-row
  string dispatch);
* SQL three-valued logic is preserved exactly: NULL propagation,
  short-circuit AND/OR over unknown, ``<=>`` null-safe equality, the
  type-mismatch errors of :func:`~repro.engine.expression.compare_values`.

Anything the compiler cannot express — subqueries, aggregates used as
scalars, references that do not bind in the chain — raises
:class:`CannotCompile`; callers fall back to the interpreter, which
reproduces the documented runtime error (or evaluates the subquery).
The ``try_compile_*`` helpers return None in that case, and also when
compilation is globally disabled (the benchmark harness toggles
:func:`set_compile_enabled` to measure interpreted vs compiled runs).
"""

from __future__ import annotations

import operator
from collections.abc import Callable, Sequence
from contextlib import contextmanager


from repro.engine.params import param_value
from repro.engine.schema import RowSchema
from repro.errors import BindError, ExecutionError
from repro.storage.locks import make_lock
from repro.sql.ast import (
    And,
    Between,
    BinaryArith,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    IsNull,
    Literal,
    Not,
    Or,
    Parameter,
    UnaryMinus,
)

#: A compiled expression: ``fn(row, outer)`` where ``row`` is the local
#: tuple and ``outer`` is the enclosing EvalContext chain (or None when
#: the expression references only local columns).
CompiledFn = Callable[[tuple, object], object]


class CannotCompile(Exception):
    """The expression needs the interpreter (subquery, unbound ref, ...)."""


# -- global toggle (benchmark harness) --------------------------------------

_COMPILE_ENABLED = True


def compile_enabled() -> bool:
    return _COMPILE_ENABLED


def set_compile_enabled(enabled: bool) -> None:
    """Globally enable/disable compilation (``try_compile_*`` → None)."""
    global _COMPILE_ENABLED
    _COMPILE_ENABLED = bool(enabled)


@contextmanager
def interpreted_only():
    """Context manager: force the interpreted path (for benchmarks)."""
    previous = _COMPILE_ENABLED
    set_compile_enabled(False)
    try:
        yield
    finally:
        set_compile_enabled(previous)


# -- column resolution -------------------------------------------------------


def _normalize_chain(schemas: RowSchema | Sequence[RowSchema]) -> tuple[RowSchema, ...]:
    if isinstance(schemas, RowSchema):
        return (schemas,)
    chain = tuple(schemas)
    if not chain:
        raise CannotCompile("empty schema chain")
    return chain


def _resolve(ref: ColumnRef, chain: tuple[RowSchema, ...]) -> tuple[int, int]:
    """Resolve a reference to ``(depth, index)``; innermost schema first."""
    for depth, schema in enumerate(chain):
        try:
            index = schema.try_index_of(ref)
        except BindError as error:  # ambiguous within one schema
            raise CannotCompile(str(error)) from error
        if index is not None:
            return depth, index
    raise CannotCompile(f"cannot resolve column {ref.qualified()}")


def _column_getter(depth: int, index: int) -> CompiledFn:
    if depth == 0:
        return lambda row, outer: row[index]
    hops = depth - 1

    def get(row, outer):
        context = outer
        for _ in range(hops):
            context = context.outer
        return context.row[index]

    return get


# -- scalar compilation ------------------------------------------------------

_ARITH_OPS = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
}

_CMP_OPS = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _require_number(value: object) -> None:
    if not _is_number(value):
        raise ExecutionError(f"expected a number, got {value!r}")


def compile_scalar(
    expr: Expr, schemas: RowSchema | Sequence[RowSchema]
) -> CompiledFn:
    """Compile a scalar expression; raises :class:`CannotCompile`."""
    return _scalar(expr, _normalize_chain(schemas))


def _scalar(expr: Expr, chain: tuple[RowSchema, ...]) -> CompiledFn:
    if isinstance(expr, Literal):
        value = expr.value
        return lambda row, outer: value
    if isinstance(expr, Parameter):
        index, name = expr.index, expr.name
        return lambda row, outer: param_value(index, name)
    if isinstance(expr, ColumnRef):
        depth, index = _resolve(expr, chain)
        return _column_getter(depth, index)
    if isinstance(expr, UnaryMinus):
        operand = _scalar(expr.operand, chain)

        def negate(row, outer):
            value = operand(row, outer)
            if value is None:
                return None
            _require_number(value)
            return -value

        return negate
    if isinstance(expr, BinaryArith):
        left = _scalar(expr.left, chain)
        right = _scalar(expr.right, chain)
        if expr.op == "/":

            def divide(row, outer):
                l = left(row, outer)
                r = right(row, outer)
                if l is None or r is None:
                    return None
                _require_number(l)
                _require_number(r)
                if r == 0:
                    raise ExecutionError("division by zero")
                return l / r

            return divide
        py_op = _ARITH_OPS.get(expr.op)
        if py_op is None:
            raise CannotCompile(f"unknown arithmetic operator {expr.op!r}")

        def arith(row, outer):
            l = left(row, outer)
            r = right(row, outer)
            if l is None or r is None:
                return None
            _require_number(l)
            _require_number(r)
            return py_op(l, r)

        return arith
    # ScalarSubquery, FuncCall, Star, predicates-as-scalars: interpreter.
    raise CannotCompile(f"cannot compile scalar {type(expr).__name__}")


# -- predicate compilation ---------------------------------------------------


def _compare_maker(op: str) -> Callable[[object, object], object]:
    """Three-valued comparison with the op bound once.

    Mirrors :func:`repro.engine.expression.compare_values` exactly,
    including the mixed-type :class:`ExecutionError`.
    """
    py_op = _CMP_OPS[op]

    def compare(left: object, right: object) -> bool | None:
        if left is None or right is None:
            return None
        if _is_number(left) != _is_number(right):
            raise ExecutionError(
                f"cannot compare {left!r} with {right!r} (type mismatch)"
            )
        return py_op(left, right)

    return compare


def compile_predicate(
    expr: Expr, schemas: RowSchema | Sequence[RowSchema]
) -> CompiledFn:
    """Compile a predicate to a three-valued closure; raises
    :class:`CannotCompile` for subquery predicates and friends."""
    return _predicate(expr, _normalize_chain(schemas))


def _predicate(expr: Expr, chain: tuple[RowSchema, ...]) -> CompiledFn:
    if isinstance(expr, And):
        parts = [_predicate(operand, chain) for operand in expr.operands]

        def conj(row, outer):
            result: bool | None = True
            for part in parts:
                value = part(row, outer)
                if value is False:
                    return False
                if value is None:
                    result = None
            return result

        return conj
    if isinstance(expr, Or):
        parts = [_predicate(operand, chain) for operand in expr.operands]

        def disj(row, outer):
            result: bool | None = False
            for part in parts:
                value = part(row, outer)
                if value is True:
                    return True
                if value is None:
                    result = None
            return result

        return disj
    if isinstance(expr, Not):
        operand = _predicate(expr.operand, chain)

        def negate(row, outer):
            value = operand(row, outer)
            if value is None:
                return None
            return not value

        return negate
    if isinstance(expr, Comparison):
        left = _scalar(expr.left, chain)
        right = _scalar(expr.right, chain)
        if expr.null_safe:
            equal = _compare_maker("=")

            def null_safe(row, outer):
                l = left(row, outer)
                r = right(row, outer)
                if l is None or r is None:
                    return l is None and r is None
                return equal(l, r) is True

            return null_safe
        compare = _compare_maker(expr.op)
        return lambda row, outer: compare(left(row, outer), right(row, outer))
    if isinstance(expr, IsNull):
        operand = _scalar(expr.operand, chain)
        if expr.negated:
            return lambda row, outer: operand(row, outer) is not None
        return lambda row, outer: operand(row, outer) is None
    if isinstance(expr, Between):
        value_fn = _scalar(expr.operand, chain)
        low_fn = _scalar(expr.low, chain)
        high_fn = _scalar(expr.high, chain)
        ge = _compare_maker(">=")
        le = _compare_maker("<=")
        negated = expr.negated

        def between(row, outer):
            value = value_fn(row, outer)
            low = low_fn(row, outer)
            high = high_fn(row, outer)
            # Both bounds compared eagerly, like the interpreter.
            above = ge(value, low)
            below = le(value, high)
            if above is False or below is False:
                inside: bool | None = False
            elif above is None or below is None:
                inside = None
            else:
                inside = True
            if inside is None:
                return None
            return (not inside) if negated else inside

        return between
    if isinstance(expr, InList):
        value_fn = _scalar(expr.operand, chain)
        item_fns = [_scalar(item, chain) for item in expr.items]
        equal = _compare_maker("=")
        negated = expr.negated

        def membership(row, outer):
            value = value_fn(row, outer)
            items = [fn(row, outer) for fn in item_fns]
            result: bool | None = False
            for item in items:
                matched = equal(value, item)
                if matched is True:
                    result = True
                    break
                if matched is None:
                    result = None
            if result is None:
                return None
            return (not result) if negated else result

        return membership
    # InSubquery, Exists, Quantified, bare scalars: interpreter.
    raise CannotCompile(f"cannot compile predicate {type(expr).__name__}")


# -- closure memo ------------------------------------------------------------
#
# Expr nodes are frozen dataclasses and RowSchema hashes over its field
# tuple, so ``(expr, chain)`` is a usable cache key.  Compiled closures
# are pure (all per-row state flows through ``(row, outer)`` and the
# parameter contextvar), so one closure can serve every thread.  The
# memo is what lets a cached plan skip recompilation on replay.

_MEMO_CAPACITY = 4096
_memo_lock = make_lock("engine.compile_memo")
#: key → CompiledFn, or the CannotCompile sentinel below.
_memo: dict[tuple, object] = {}
_CANNOT = object()


def clear_compile_memo() -> None:
    """Drop all memoized closures (tests and DDL-heavy sessions)."""
    with _memo_lock:
        _memo.clear()


def _memoized(
    kind: str,
    compiler: Callable[[Expr, tuple[RowSchema, ...]], CompiledFn],
    expr: Expr,
    schemas: RowSchema | Sequence[RowSchema],
) -> CompiledFn | None:
    try:
        chain = _normalize_chain(schemas)
    except CannotCompile:
        return None
    key = (kind, expr, chain)
    try:
        with _memo_lock:
            cached = _memo.get(key)
            if cached is not None:
                # Reinsert for LRU recency (dicts preserve order).
                _memo.pop(key, None)
                _memo[key] = cached
    except TypeError:
        # Unhashable literal embedded in the expression; compile fresh.
        try:
            return compiler(expr, chain)
        except CannotCompile:
            return None
    if cached is _CANNOT:
        return None
    if cached is not None:
        return cached  # type: ignore[return-value]
    try:
        compiled: object = compiler(expr, chain)
    except CannotCompile:
        compiled = _CANNOT
    with _memo_lock:
        while len(_memo) >= _MEMO_CAPACITY:
            _memo.pop(next(iter(_memo)))
        _memo[key] = compiled
    return None if compiled is _CANNOT else compiled  # type: ignore[return-value]


# -- fallible front door -----------------------------------------------------


def try_compile_scalar(
    expr: Expr, schemas: RowSchema | Sequence[RowSchema]
) -> CompiledFn | None:
    """Compiled scalar, or None (fall back to the interpreter)."""
    if not _COMPILE_ENABLED:
        return None
    return _memoized("s", _scalar, expr, schemas)


def try_compile_predicate(
    expr: Expr, schemas: RowSchema | Sequence[RowSchema]
) -> CompiledFn | None:
    """Compiled predicate, or None (fall back to the interpreter)."""
    if not _COMPILE_ENABLED:
        return None
    return _memoized("p", _predicate, expr, schemas)
