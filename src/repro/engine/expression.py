"""Expression evaluation with SQL three-valued logic.

Scalar values are Python objects: int, float, str (TEXT and DATE) and
None for the SQL NULL.  Predicates evaluate to True, False, or None
(unknown); a WHERE clause keeps a tuple only when its predicate is
True, which is what makes the paper's COUNT-bug examples behave: a
comparison against ``MAX({}) = NULL`` is unknown and rejects the tuple.

Subqueries are delegated to the executor through the
:class:`EvalContext`, so this module stays independent of how nesting
is processed (nested iteration vs. transformed plans — transformed
plans simply contain no subqueries anymore).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import BindError, ExecutionError
from repro.engine.params import param_value
from repro.engine.schema import RowSchema
from repro.sql.ast import (
    And,
    Between,
    BinaryArith,
    ColumnRef,
    Comparison,
    Exists,
    Expr,
    FuncCall,
    InList,
    InSubquery,
    IsNull,
    Literal,
    Not,
    Or,
    Parameter,
    Quantified,
    ScalarSubquery,
    Select,
    Star,
    UnaryMinus,
)


@dataclass
class EvalContext:
    """Evaluation context for one row, chained for correlated nesting.

    Attributes:
        row: the current tuple.
        schema: the row's schema.
        outer: enclosing context, searched when a reference does not
            bind locally (correlation — the defining feature of type-J
            and type-JA nesting).
        subquery_handler: callback used to evaluate nested query blocks;
            installed by the nested-iteration executor.  Physical plans
            never contain subqueries, so it may be None.
    """

    row: tuple
    schema: RowSchema
    outer: Optional["EvalContext"] = None
    subquery_handler: Optional["SubqueryHandler"] = None

    def resolve(self, ref: ColumnRef) -> object:
        """Resolve a column reference, walking out through outer contexts."""
        context: EvalContext | None = self
        while context is not None:
            index = context.schema.try_index_of(ref)
            if index is not None:
                return context.row[index]
            context = context.outer
        raise BindError(f"cannot resolve column {ref.qualified()}")

    def child(self, row: tuple, schema: RowSchema) -> "EvalContext":
        """A context for an inner block's row, enclosing this one."""
        return EvalContext(
            row=row,
            schema=schema,
            outer=self,
            subquery_handler=self.subquery_handler,
        )


class SubqueryHandler:
    """Interface the executor implements to evaluate nested blocks."""

    def scalar(self, query: Select, context: EvalContext | None) -> object:
        """Value of a scalar subquery (NULL for an empty result)."""
        raise NotImplementedError

    def column(self, query: Select, context: EvalContext | None) -> list[object]:
        """All values of a single-column subquery (for IN/ANY/ALL)."""
        raise NotImplementedError

    def exists(self, query: Select, context: EvalContext | None) -> bool:
        """Whether the subquery yields at least one row."""
        raise NotImplementedError


# ---------------------------------------------------------------------------
# Scalar evaluation
# ---------------------------------------------------------------------------


def eval_scalar(expr: Expr, context: EvalContext) -> object:
    """Evaluate a scalar expression for one row."""
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, Parameter):
        return param_value(expr.index, expr.name)
    if isinstance(expr, ColumnRef):
        return context.resolve(expr)
    if isinstance(expr, UnaryMinus):
        value = eval_scalar(expr.operand, context)
        if value is None:
            return None
        _require_number(value)
        return -value
    if isinstance(expr, BinaryArith):
        return _eval_arith(expr, context)
    if isinstance(expr, ScalarSubquery):
        handler = _require_handler(context)
        return handler.scalar(expr.query, context)
    if isinstance(expr, FuncCall):
        raise ExecutionError(
            f"aggregate {expr.name} used outside aggregation context"
        )
    if isinstance(expr, Star):
        raise ExecutionError("* is not a scalar expression")
    # Predicates used as scalars (no BOOLEAN type in this dialect).
    raise ExecutionError(f"expected scalar expression, got {type(expr).__name__}")


def _eval_arith(expr: BinaryArith, context: EvalContext) -> object:
    left = eval_scalar(expr.left, context)
    right = eval_scalar(expr.right, context)
    if left is None or right is None:
        return None
    _require_number(left)
    _require_number(right)
    if expr.op == "+":
        return left + right
    if expr.op == "-":
        return left - right
    if expr.op == "*":
        return left * right
    if expr.op == "/":
        if right == 0:
            raise ExecutionError("division by zero")
        return left / right
    raise ExecutionError(f"unknown arithmetic operator {expr.op!r}")


def _require_number(value: object) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ExecutionError(f"expected a number, got {value!r}")


def _require_handler(context: EvalContext) -> SubqueryHandler:
    if context.subquery_handler is None:
        raise ExecutionError(
            "subquery encountered but no executor installed "
            "(physical plans must be fully unnested)"
        )
    return context.subquery_handler


# ---------------------------------------------------------------------------
# Comparison with SQL semantics
# ---------------------------------------------------------------------------


def null_safe_equal(left: object, right: object) -> bool:
    """Two-valued null-safe equality (``<=>`` / IS NOT DISTINCT FROM).

    NULL <=> NULL is True, NULL <=> value is False; otherwise ordinary
    equality.  Never returns unknown.
    """
    if left is None or right is None:
        return left is None and right is None
    return compare_values("=", left, right) is True


def compare_values(op: str, left: object, right: object) -> bool | None:
    """Three-valued comparison of two scalar values.

    NULL on either side yields unknown (None).  Numbers compare with
    numbers, strings with strings; mixing is an execution error rather
    than silent falsehood.
    """
    if left is None or right is None:
        return None
    left_is_num = isinstance(left, (int, float)) and not isinstance(left, bool)
    right_is_num = isinstance(right, (int, float)) and not isinstance(right, bool)
    if left_is_num != right_is_num:
        raise ExecutionError(
            f"cannot compare {left!r} with {right!r} (type mismatch)"
        )
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise ExecutionError(f"unknown comparison operator {op!r}")


def sql_and(left: bool | None, right: bool | None) -> bool | None:
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return True


def sql_or(left: bool | None, right: bool | None) -> bool | None:
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return False


def sql_not(value: bool | None) -> bool | None:
    if value is None:
        return None
    return not value


# ---------------------------------------------------------------------------
# Predicate evaluation
# ---------------------------------------------------------------------------


def eval_predicate(expr: Expr, context: EvalContext) -> bool | None:
    """Evaluate a predicate for one row under three-valued logic."""
    if isinstance(expr, And):
        result: bool | None = True
        for operand in expr.operands:
            result = sql_and(result, eval_predicate(operand, context))
            if result is False:
                return False
        return result
    if isinstance(expr, Or):
        result = False
        for operand in expr.operands:
            result = sql_or(result, eval_predicate(operand, context))
            if result is True:
                return True
        return result
    if isinstance(expr, Not):
        return sql_not(eval_predicate(expr.operand, context))
    if isinstance(expr, Comparison):
        left = eval_scalar(expr.left, context)
        right = eval_scalar(expr.right, context)
        if expr.null_safe:
            return null_safe_equal(left, right)
        return compare_values(expr.op, left, right)
    if isinstance(expr, IsNull):
        value = eval_scalar(expr.operand, context)
        answer = value is None
        return not answer if expr.negated else answer
    if isinstance(expr, Between):
        value = eval_scalar(expr.operand, context)
        low = eval_scalar(expr.low, context)
        high = eval_scalar(expr.high, context)
        inside = sql_and(
            compare_values(">=", value, low), compare_values("<=", value, high)
        )
        return sql_not(inside) if expr.negated else inside
    if isinstance(expr, InList):
        value = eval_scalar(expr.operand, context)
        items = [eval_scalar(item, context) for item in expr.items]
        return _membership(value, items, expr.negated)
    if isinstance(expr, InSubquery):
        handler = _require_handler(context)
        value = eval_scalar(expr.operand, context)
        items = handler.column(expr.query, context)
        return _membership(value, items, expr.negated)
    if isinstance(expr, Exists):
        handler = _require_handler(context)
        answer = handler.exists(expr.query, context)
        return not answer if expr.negated else answer
    if isinstance(expr, Quantified):
        handler = _require_handler(context)
        value = eval_scalar(expr.operand, context)
        items = handler.column(expr.query, context)
        return _quantified(expr.op, expr.quantifier, value, items)
    # A bare scalar in predicate position is a dialect error.
    raise ExecutionError(f"not a predicate: {type(expr).__name__}")


def _membership(value: object, items: list[object], negated: bool) -> bool | None:
    """SQL semantics of ``value IN items`` (and NOT IN via negation)."""
    result: bool | None = False
    for item in items:
        result = sql_or(result, compare_values("=", value, item))
        if result is True:
            break
    return sql_not(result) if negated else result


def _quantified(
    op: str, quantifier: str, value: object, items: list[object]
) -> bool | None:
    """SQL semantics of ``value op ANY|ALL items``.

    ``op ANY ∅`` is false and ``op ALL ∅`` is (vacuously) true — the
    edge case that makes the paper's section 8.2 rewrites "logically
    (but not necessarily semantically) equivalent".
    """
    if quantifier == "ANY":
        result: bool | None = False
        for item in items:
            result = sql_or(result, compare_values(op, value, item))
            if result is True:
                break
        return result
    result = True
    for item in items:
        result = sql_and(result, compare_values(op, value, item))
        if result is False:
            break
    return result
