"""The nested-iteration executor — System R's strategy and our oracle.

This interprets a nested query AST directly, the way the paper says
System R did (section 2.4, quoting [SEL 79:33]):

* a **type-A/N** inner block (no correlation) is evaluated *once*; a
  scalar result becomes a constant, a column result is materialized
  into a temporary list ``X`` on disk and the nested predicate becomes
  ``... IN X``, rescanned per outer tuple;
* a **type-J/JA** inner block (correlated) is re-evaluated once per
  outer tuple that survives the simple predicates — which is exactly
  why "the inner relation may have to be retrieved once for each tuple
  of the outer relation", the inefficiency the transformations attack.

Because every table scan goes through the buffer pool, running this
executor *measures* the nested-iteration page-I/O cost that the paper's
Figure 1 and section 7.4 model analytically.

Semantically this executor is the reference: the transformation tests
compare every rewritten plan's result against it (multiset equality).
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass
from functools import partial

from repro.catalog.catalog import Catalog
from repro.engine.aggregate import compute_aggregate
from repro.engine.compile import try_compile_predicate, try_compile_scalar
from repro.engine.expression import (
    EvalContext,
    SubqueryHandler,
    eval_predicate,
    eval_scalar,
)
from repro.engine.relation import Relation
from repro.engine.schema import RowSchema
from repro.engine.sort import _orderable
from repro.errors import BindError, CardinalityError, ExecutionError
from repro.sql.analysis import is_correlated, outer_references
from repro.sql.ast import (
    ColumnRef,
    Expr,
    FuncCall,
    Select,
    Star,
    conjuncts,
)
from repro.sql.printer import to_sql
from repro.storage.locks import make_lock


@dataclass
class QueryResult:
    """The rows a query produced, with output column names."""

    columns: list[str]
    rows: list[tuple]

    def multiset(self) -> Counter:
        """Bag of rows — the equivalence the paper's lemmas are stated in."""
        return Counter(self.rows)

    def column(self, index: int = 0) -> list[object]:
        return [row[index] for row in self.rows]

    def sorted_rows(self) -> list[tuple]:
        return sorted(self.rows, key=lambda r: tuple(_orderable(v) for v in r))

    def __len__(self) -> int:
        return len(self.rows)


class _Pending:
    """Single-flight cache placeholder: the owner thread is computing
    this entry; waiters block on the event, then re-read the cache."""

    __slots__ = ("event",)

    def __init__(self) -> None:
        self.event = threading.Event()


_MISSING = object()


class NestedIterationExecutor(SubqueryHandler):
    """Evaluates nested queries by (cached) nested iteration.

    Concurrency.  With ``parallelism > 1`` the *outermost* loop of a
    single-table top-level block is sharded across the exchange pool
    (each worker evaluates the WHERE plan — correlated subqueries and
    all — over its own page shard of the outer table).  The result
    caches are then shared mutable state:

    * ``_scalar_cache`` / ``_column_cache`` / ``_corr_memo`` hold
      *computed results*, where a lost-update race would change
      observable I/O (recomputing an inner block re-reads its pages;
      recomputing the materialized ``X`` writes a second temp).  They
      are single-flight: one lock guards the maps, and the first
      thread to miss installs a :class:`_Pending` entry and computes
      while later threads block on it — each inner block still runs
      exactly once per key, same as serial.
    * the plan caches (``_where_plans``, ``_item_plans``,
      ``_scalar_plans``, ``_outer_ref_plans``, ``_index_plans``) map
      AST node ids to pure, idempotent derivations.  Two threads may
      race to compute the same plan; both results are identical, the
      dict store is atomic under the GIL, and no I/O is involved — so
      these stay lock-free.
    """

    def __init__(
        self,
        catalog: Catalog,
        materialize_uncorrelated: bool = True,
        use_indexes: bool = True,
        memoize_correlated: bool = True,
        verify: bool = True,
        parallelism: int = 1,
        parallel_threshold: int | None = None,
    ) -> None:
        self.catalog = catalog
        self.materialize_uncorrelated = materialize_uncorrelated
        self.use_indexes = use_indexes
        self.memoize_correlated = memoize_correlated
        self.verify = verify
        self.parallelism = parallelism
        if parallel_threshold is None:
            from repro.engine.parallel import DEFAULT_PARALLEL_THRESHOLD

            parallel_threshold = DEFAULT_PARALLEL_THRESHOLD
        self.parallel_threshold = parallel_threshold
        self._scalar_cache: dict[int, object] = {}
        self._column_cache: dict[int, Relation | list[object]] = {}
        self._index_plans: dict[int, object] = {}
        # Compiled-evaluation plans, keyed on AST node identity (the
        # plan lists hold the nodes, keeping their ids stable).
        self._where_plans: dict[int, list] = {}
        self._item_plans: dict[int, list] = {}
        self._scalar_plans: dict[int, object] = {}
        # Correlated-subquery memo: (kind, id(query), outer values) →
        # result, plus the per-query list of referenced outer columns.
        self._outer_ref_plans: dict[int, object] = {}
        self._corr_memo: dict[tuple, object] = {}
        self._cache_lock = make_lock("engine.subquery_memo")

    def _single_flight(self, cache: dict, key, compute):
        """Return ``cache[key]``, computing it exactly once.

        The first thread to miss installs a :class:`_Pending` marker
        and computes outside the lock (the computation reads pages and
        may evaluate further subqueries — holding the lock across it
        would serialize all workers).  Waiters block on the marker's
        event and re-read.  On failure the marker is removed so a
        waiter retries the computation rather than caching an error.
        """
        while True:
            with self._cache_lock:
                entry = cache.get(key, _MISSING)
                if entry is _MISSING:
                    pending = _Pending()
                    cache[key] = pending
                    break
            if not isinstance(entry, _Pending):
                return entry
            entry.event.wait()
        try:
            value = compute()
        except BaseException:
            with self._cache_lock:
                cache.pop(key, None)
            pending.event.set()
            raise
        with self._cache_lock:
            cache[key] = value
        pending.event.set()
        return value

    # -- public API ------------------------------------------------------

    def execute(self, select: Select) -> QueryResult:
        """Run a (possibly nested) query and return its result."""
        if self.verify:
            self._verify(select)
        self._scalar_cache.clear()
        self._column_cache.clear()
        self._index_plans.clear()
        self._where_plans.clear()
        self._item_plans.clear()
        self._scalar_plans.clear()
        self._outer_ref_plans.clear()
        self._corr_memo.clear()
        try:
            schema, rows = self._execute_block(select, outer=None)
        finally:
            self._drop_materialized()
        names = self._output_names(select)
        return QueryResult(columns=names, rows=rows)

    def _verify(self, select: Select) -> None:
        """Static scope check before any page is touched.

        Unresolvable or ambiguous references surface as
        ``ColumnVerificationError`` (a ``BindError``) up front instead
        of mid-iteration.  Unknown tables are left for the catalog to
        report (``CatalogError``), and the check is skipped entirely in
        that case so cascading column findings don't mask it.
        """
        from repro.analysis.verifier import verify_nested

        findings = verify_nested(select, self.catalog)
        if findings.by_rule("PV004"):
            return
        findings.raise_errors("static verification before nested iteration")

    # -- SubqueryHandler -------------------------------------------------

    def scalar(self, query: Select, context: EvalContext | None) -> object:
        correlated = self._is_correlated(query)
        if not correlated:
            return self._single_flight(
                self._scalar_cache,
                id(query),
                partial(self._scalar_value, query, None),
            )
        memo_key = self._memo_key("scalar", query, context)
        if memo_key is None:
            return self._scalar_value(query, context)
        return self._single_flight(
            self._corr_memo, memo_key, partial(self._scalar_value, query, context)
        )

    def _scalar_value(self, query: Select, outer: EvalContext | None) -> object:
        _, rows = self._execute_block(query, outer=outer)
        if rows and len(rows[0]) != 1:
            raise ExecutionError("scalar subquery must select one column")
        if len(rows) > 1:
            raise CardinalityError(
                f"scalar subquery returned {len(rows)} rows: {to_sql(query)}"
            )
        return rows[0][0] if rows else None

    def column(self, query: Select, context: EvalContext | None) -> list[object]:
        correlated = self._is_correlated(query)
        if not correlated:
            cached = self._single_flight(
                self._column_cache,
                id(query),
                partial(self._column_store, query),
            )
            if isinstance(cached, Relation):
                return [row[0] for row in cached]
            return list(cached)
        memo_key = self._memo_key("column", query, context)
        if memo_key is None:
            return self._column_values(query, context)
        return self._single_flight(
            self._corr_memo, memo_key, partial(self._column_values, query, context)
        )

    def _column_store(self, query: Select) -> Relation | list[object]:
        values = self._column_values(query, None)
        if not self.materialize_uncorrelated:
            return values
        # System R's X: the inner result lives on disk and is
        # rescanned per outer tuple (cheap only if it fits in B).
        # Single-flight matters doubly here: a duplicated computation
        # would not just waste work, it would *write a second temp* —
        # extra page I/O and a leaked heap.
        return Relation.materialize(
            RowSchema([(None, "X")]),
            [(v,) for v in values],
            self.catalog.buffer,
            name="X",
        )

    def _column_values(
        self, query: Select, outer: EvalContext | None
    ) -> list[object]:
        _, rows = self._execute_block(query, outer=outer)
        if rows and len(rows[0]) != 1:
            raise ExecutionError("IN subquery must select one column")
        return [row[0] for row in rows]

    def exists(self, query: Select, context: EvalContext | None) -> bool:
        correlated = self._is_correlated(query)
        memo_key = (
            self._memo_key("exists", query, context) if correlated else None
        )
        if memo_key is None:
            _, rows = self._execute_block(
                query, outer=context if correlated else None
            )
            return bool(rows)
        return self._single_flight(
            self._corr_memo, memo_key, partial(self._exists_value, query, context)
        )

    def _exists_value(self, query: Select, context: EvalContext | None) -> bool:
        _, rows = self._execute_block(query, outer=context)
        return bool(rows)

    def _memo_key(
        self, kind: str, query: Select, context: EvalContext | None
    ) -> tuple | None:
        """Memo key for a correlated block: the *values* of the outer
        columns it references.  Two outer tuples that agree on those
        columns get the same inner result, so the inner block runs once
        per distinct combination instead of once per outer tuple.

        Returns None (no memoization) when disabled, when the block's
        outer references cannot be enumerated, or when one of them does
        not resolve in the given context.
        """
        if not self.memoize_correlated or context is None:
            return None
        refs = self._outer_ref_plans.get(id(query))
        if refs is None:
            refs = self._outer_ref_plan(query)
            self._outer_ref_plans[id(query)] = refs
        if refs is False:
            return None
        try:
            values = tuple(context.resolve(ref) for ref in refs)
        except BindError:
            return None
        return (kind, id(query), values)

    def _outer_ref_plan(self, query: Select):
        """The distinct outer columns a correlated block references."""

        def has_column(binding: str, column: str) -> bool:
            if self.catalog.has_table(binding):
                return self.catalog.schema_of(binding).has_column(column)
            return False

        all_bindings = tuple(self.catalog.table_names())
        try:
            refs = outer_references(query, has_column, all_bindings)
        except Exception:
            return False
        distinct: list[ColumnRef] = []
        for ref in refs:
            if ref not in distinct:
                distinct.append(ref)
        return distinct

    # -- block evaluation --------------------------------------------------

    def _execute_block(
        self, select: Select, outer: EvalContext | None
    ) -> tuple[RowSchema, list[tuple]]:
        schema = self._from_schema(select)
        qualifying = self._qualifying_rows(select, schema, outer)

        if select.group_by or select.has_aggregate_select():
            rows = self._aggregate_rows(select, schema, qualifying, outer)
        else:
            rows = [
                self._project_row(select, schema, row, outer) for row in qualifying
            ]

        if select.distinct:
            rows = _dedup(rows)
        if select.order_by:
            rows = self._order_rows(select, schema, qualifying, rows, outer)
        return schema, rows

    def _from_schema(self, select: Select) -> RowSchema:
        fields: list[tuple[str | None, str]] = []
        for ref in select.from_tables:
            table_schema = self.catalog.schema_of(ref.name)
            fields.extend(
                (ref.binding, column) for column in table_schema.column_names
            )
        return RowSchema(fields)

    def _qualifying_rows(
        self, select: Select, schema: RowSchema, outer: EvalContext | None
    ) -> list[tuple]:
        indexed = self._indexed_rows(select, schema, outer)
        if indexed is not None:
            return indexed
        plan = self._where_plan(select, schema, outer)
        parallel = self._parallel_qualifying_rows(select, schema, outer, plan)
        if parallel is not None:
            return parallel
        rows: list[tuple] = []
        for combined in self._from_rows(select, 0, ()):
            if self._row_qualifies(plan, combined, schema, outer):
                rows.append(combined)
        return rows

    def _row_qualifies(
        self,
        plan: list,
        combined: tuple,
        schema: RowSchema,
        outer: EvalContext | None,
    ) -> bool:
        context: EvalContext | None = None
        keep = True
        # Conjuncts evaluated in predicate order, stopping on the
        # first False — exactly the interpreter's AND semantics, so
        # mixing compiled and interpreted conjuncts changes nothing.
        for conjunct, compiled in plan:
            if compiled is not None:
                value = compiled(combined, outer)
            else:
                if context is None:
                    context = EvalContext(
                        combined, schema, outer, subquery_handler=self
                    )
                value = eval_predicate(conjunct, context)
            if value is False:
                return False
            if value is not True:
                keep = False
        return keep

    def _parallel_qualifying_rows(
        self,
        select: Select,
        schema: RowSchema,
        outer: EvalContext | None,
        plan: list,
    ) -> list[tuple] | None:
        """Shard the outermost loop across the exchange pool, or None.

        Only the *top-level* block of a *single-table* FROM clause
        fans out: workers evaluate the full WHERE plan — correlated
        subqueries included — over disjoint page shards of the outer
        table, and the ordered gather restores scan order, so the
        qualifying rows come back exactly as the serial loop would
        produce them.  Inner blocks (``outer is not None``) stay serial
        on whichever thread reached them, and multi-table blocks stay
        serial because their nested inner rescans are re-read-sensitive
        under concurrent eviction.  Page-I/O identity for the sharded
        loop itself holds by the single-pass argument (disjoint shards,
        each page read once); the subqueries a worker triggers are
        deduplicated by the single-flight caches, so inner blocks run
        once per memo key — the serial schedule — and their reads are
        identical whenever the buffer keeps the working set resident,
        which the serial executor requires for its own costs anyway.
        """
        if (
            outer is not None
            or self.parallelism <= 1
            or len(select.from_tables) != 1
        ):
            return None
        heap = self.catalog.heap_of(select.from_tables[0].name)
        if heap.num_rows < self.parallel_threshold:
            return None
        from repro.engine.exchange import in_worker, run_tasks

        if in_worker():
            return None
        nparts = max(1, min(self.parallelism, heap.num_pages))
        shards = heap.partition_pages(nparts)

        def work(index: int) -> list[tuple]:
            rows: list[tuple] = []
            for _page_index, batch in heap.scan_pages_partition(shards[index]):
                for combined in batch:
                    if self._row_qualifies(plan, combined, schema, None):
                        rows.append(combined)
            return rows

        gathered = run_tasks(
            [partial(work, index) for index in range(nparts)],
            width=self.parallelism,
        )
        return [row for shard in gathered for row in shard]

    def _where_plan(
        self, select: Select, schema: RowSchema, outer: EvalContext | None
    ) -> list:
        """Per-conjunct evaluators for a block's WHERE clause: a
        compiled closure where possible, the AST (interpreted per row)
        where not.  Cached per block — a correlated block keeps its
        plan across the per-outer-tuple rescans."""
        plan = self._where_plans.get(id(select))
        if plan is None:
            parts = conjuncts(select.where) if select.where is not None else []
            chain = _schema_chain(schema, outer)
            plan = [
                (part, try_compile_predicate(part, chain)) for part in parts
            ]
            self._where_plans[id(select)] = plan
        return plan

    # -- index fast path ------------------------------------------------------

    def _indexed_rows(
        self, select: Select, schema: RowSchema, outer: EvalContext | None
    ) -> list[tuple] | None:
        """Evaluate a single-table block by an index probe, when possible.

        System R's access-path selection in miniature: if the block
        scans one table, some equality conjunct compares an indexed
        local column with an expression free of local references (a
        correlation column or a constant), probe the index with the
        expression's value and filter the survivors with the remaining
        predicate.  Returns None when no index plan applies.
        """
        if not self.use_indexes:
            return None
        plan = self._index_plans.get(id(select))
        if plan is None:
            plan = self._make_index_plan(select, schema)
            self._index_plans[id(select)] = plan
        if plan is False:
            return None
        index, key_expr, residual = plan

        # The probe key is evaluated in the *outer* context only (the
        # expression has no local references by construction).
        probe_context = EvalContext(
            (), RowSchema(()), outer, subquery_handler=self
        )
        value = eval_scalar(key_expr, probe_context)
        rows: list[tuple] = []
        for row in index.lookup(value):
            context = EvalContext(row, schema, outer, subquery_handler=self)
            if residual is None or eval_predicate(residual, context) is True:
                rows.append(row)
        return rows

    def _make_index_plan(self, select: Select, schema: RowSchema):
        from repro.sql.ast import Comparison, conjuncts, make_and, walk

        if len(select.from_tables) != 1 or select.where is None:
            return False
        table = select.from_tables[0]

        parts = conjuncts(select.where)
        for position, conjunct in enumerate(parts):
            if not isinstance(conjunct, Comparison) or conjunct.op != "=":
                continue
            for local_side, other_side in (
                (conjunct.left, conjunct.right),
                (conjunct.right, conjunct.left),
            ):
                if not isinstance(local_side, ColumnRef):
                    continue
                if schema.try_index_of(local_side) is None:
                    continue
                # The probe expression must be local-reference-free and
                # subquery-free (its value must not depend on this row).
                other_refs = [
                    node
                    for node in walk(other_side, into_subqueries=False)
                    if isinstance(node, (ColumnRef, Select))
                ]
                if any(
                    isinstance(node, Select) for node in other_refs
                ) or any(
                    isinstance(node, ColumnRef)
                    and schema.try_index_of(node) is not None
                    for node in other_refs
                ):
                    continue
                index = self.catalog.index_for(table.name, local_side.column)
                if index is None:
                    continue
                residual = make_and(
                    parts[:position] + parts[position + 1 :]
                )
                return (index, other_side, residual)
        return False

    def _from_rows(self, select: Select, index: int, prefix: tuple):
        """Cartesian product of the FROM tables by nested rescans.

        Inner tables are rescanned per outer tuple through the buffer
        pool — the join method System R's nested iteration uses.
        """
        if index == len(select.from_tables):
            yield prefix
            return
        heap = self.catalog.heap_of(select.from_tables[index].name)
        for row in heap.scan():
            yield from self._from_rows(select, index + 1, prefix + row)

    # -- projection and aggregation ---------------------------------------

    def _project_row(
        self,
        select: Select,
        schema: RowSchema,
        row: tuple,
        outer: EvalContext | None,
    ) -> tuple:
        plan = self._item_plans.get(id(select))
        if plan is None:
            chain = _schema_chain(schema, outer)
            plan = [
                (item.expr, None)
                if isinstance(item.expr, Star)
                else (item.expr, try_compile_scalar(item.expr, chain))
                for item in select.items
            ]
            self._item_plans[id(select)] = plan
        context: EvalContext | None = None
        values: list[object] = []
        for expr, compiled in plan:
            if isinstance(expr, Star):
                values.extend(self._star_values(expr, schema, row))
            elif compiled is not None:
                values.append(compiled(row, outer))
            else:
                if context is None:
                    context = EvalContext(row, schema, outer, subquery_handler=self)
                values.append(eval_scalar(expr, context))
        return tuple(values)

    def _star_values(self, star: Star, schema: RowSchema, row: tuple) -> list[object]:
        if star.table is None:
            return list(row)
        return [
            value
            for value, (qualifier, _) in zip(row, schema.fields)
            if qualifier == star.table
        ]

    def _aggregate_rows(
        self,
        select: Select,
        schema: RowSchema,
        qualifying: list[tuple],
        outer: EvalContext | None,
    ) -> list[tuple]:
        if select.group_by:
            key_plans = [
                (expr, self._scalar_plan(expr, schema, outer))
                for expr in select.group_by
            ]
            groups: dict[tuple, list[tuple]] = {}
            order: list[tuple] = []
            for row in qualifying:
                context = EvalContext(row, schema, outer, subquery_handler=self)
                key = tuple(
                    _orderable(
                        compiled(row, outer)
                        if compiled is not None
                        else eval_scalar(expr, context)
                    )
                    for expr, compiled in key_plans
                )
                if key not in groups:
                    groups[key] = []
                    order.append(key)
                groups[key].append(row)
            result: list[tuple] = []
            for key in order:
                group = groups[key]
                if select.having is not None:
                    keep = self._eval_group_predicate(
                        select.having, schema, group, outer
                    )
                    if keep is not True:
                        continue
                result.append(
                    tuple(
                        self._eval_group_expr(item.expr, schema, group, outer)
                        for item in select.items
                    )
                )
            return result

        # Scalar aggregation: the whole input is one group, and SQL
        # returns exactly one row even for an empty input.
        group = qualifying
        if select.having is not None:
            keep = self._eval_group_predicate(select.having, schema, group, outer)
            if keep is not True:
                return []
        return [
            tuple(
                self._eval_group_expr(item.expr, schema, group, outer)
                for item in select.items
            )
        ]

    def _eval_group_expr(
        self,
        expr: Expr,
        schema: RowSchema,
        group: list[tuple],
        outer: EvalContext | None,
    ) -> object:
        if isinstance(expr, FuncCall) and expr.is_aggregate:
            if isinstance(expr.arg, Star):
                values: list[object] = [1] * len(group)
            else:
                compiled = self._scalar_plan(expr.arg, schema, outer)
                if compiled is not None:
                    values = [compiled(row, outer) for row in group]
                else:
                    values = [
                        eval_scalar(
                            expr.arg,
                            EvalContext(row, schema, outer, subquery_handler=self),
                        )
                        for row in group
                    ]
            return compute_aggregate(expr.name, values, expr.distinct)
        if not group:
            return None
        context = EvalContext(group[0], schema, outer, subquery_handler=self)
        return eval_scalar(expr, context)

    def _eval_group_predicate(
        self,
        predicate: Expr,
        schema: RowSchema,
        group: list[tuple],
        outer: EvalContext | None,
    ) -> bool | None:
        """Evaluate a HAVING predicate over one group.

        Aggregates inside the predicate are computed over the group by
        substituting their values first (structurally, via a wrapper
        context on a representative row would not see them).
        """
        from repro.sql import ast as A

        def rewrite(node: Expr) -> Expr:
            if isinstance(node, FuncCall) and node.is_aggregate:
                return A.Literal(self._eval_group_expr(node, schema, group, outer))
            if isinstance(node, A.Comparison):
                return A.Comparison(
                    rewrite(node.left), node.op, rewrite(node.right), node.outer
                )
            if isinstance(node, A.And):
                return A.And(tuple(rewrite(op) for op in node.operands))
            if isinstance(node, A.Or):
                return A.Or(tuple(rewrite(op) for op in node.operands))
            if isinstance(node, A.Not):
                return A.Not(rewrite(node.operand))
            return node

        rewritten = rewrite(predicate)
        representative = group[0] if group else tuple(None for _ in schema.fields)
        context = EvalContext(representative, schema, outer, subquery_handler=self)
        return eval_predicate(rewritten, context)

    def _order_rows(
        self,
        select: Select,
        schema: RowSchema,
        qualifying: list[tuple],
        rows: list[tuple],
        outer: EvalContext | None,
    ) -> list[tuple]:
        """Sort output rows by the ORDER BY items.

        Supported when each ORDER BY expression references output
        columns by name or position in the SELECT list.
        """
        out_names = self._output_names(select)

        def key(row: tuple) -> tuple:
            values = []
            for item in select.order_by:
                expr = item.expr
                if not (isinstance(expr, ColumnRef) and expr.column in out_names):
                    raise ExecutionError(
                        "ORDER BY supports output-column references only"
                    )
                values.append(_orderable(row[out_names.index(expr.column)]))
            return tuple(values)

        descending_flags = {item.descending for item in select.order_by}
        if len(descending_flags) > 1:
            raise ExecutionError("mixed ASC/DESC ORDER BY is not supported")
        return sorted(rows, key=key, reverse=descending_flags == {True})

    # -- helpers -----------------------------------------------------------

    def _scalar_plan(self, expr: Expr, schema: RowSchema, outer: EvalContext | None):
        """Compiled closure for a scalar expression, or None; cached on
        the AST node's identity (the cache holds the node alive)."""
        if id(expr) in self._scalar_plans:
            cached_expr, compiled = self._scalar_plans[id(expr)]
            return compiled
        compiled = try_compile_scalar(expr, _schema_chain(schema, outer))
        self._scalar_plans[id(expr)] = (expr, compiled)
        return compiled

    def _is_correlated(self, query: Select) -> bool:
        """Correlation test used to decide caching.

        The enclosing bindings are not tracked here; instead we ask
        whether the block's subtree references *any* table binding that
        is not introduced within the subtree itself.
        """

        def has_column(binding: str, column: str) -> bool:
            if self.catalog.has_table(binding):
                return self.catalog.schema_of(binding).has_column(column)
            return False

        all_bindings = tuple(
            name for name in self.catalog.table_names()
        )
        try:
            return is_correlated(query, has_column, all_bindings)
        except Exception:
            # Unresolvable references surface later as BindError during
            # evaluation; treat as correlated (no caching) here.
            return True

    def _output_names(self, select: Select) -> list[str]:
        names: list[str] = []
        for item in select.items:
            if item.alias:
                names.append(item.alias)
            elif isinstance(item.expr, ColumnRef):
                names.append(item.expr.column)
            elif isinstance(item.expr, FuncCall):
                names.append(to_sql(item.expr))
            elif isinstance(item.expr, Star):
                star = item.expr
                for ref in select.from_tables:
                    if star.table is None or star.table == ref.binding:
                        names.extend(
                            self.catalog.schema_of(ref.name).column_names
                        )
            else:
                names.append(f"EXPR{len(names) + 1}")
        return names

    def _drop_materialized(self) -> None:
        for cached in self._column_cache.values():
            if isinstance(cached, Relation):
                cached.drop()
        self._column_cache.clear()
        self._scalar_cache.clear()


def _schema_chain(
    schema: RowSchema, outer: EvalContext | None
) -> tuple[RowSchema, ...]:
    """The schema chain the compiler resolves against: the block's own
    schema, then each enclosing context's, innermost first — the same
    order :meth:`EvalContext.resolve` searches at runtime."""
    chain = [schema]
    context = outer
    while context is not None:
        chain.append(context.schema)
        context = context.outer
    return tuple(chain)


def _dedup(rows: list[tuple]) -> list[tuple]:
    seen: set[tuple] = set()
    result: list[tuple] = []
    for row in rows:
        if row not in seen:
            seen.add(row)
            result.append(row)
    return result
