"""Physical operators over :class:`~repro.engine.relation.Relation`.

These are the building blocks of the *transformed* plans: the paper
evaluates a rewritten query as a sequence of temp-table builds
(restrict/project → sort → join → group) followed by a final join.
Each operator reads its inputs through the buffer pool and materializes
its output into a fresh heap file, so the page I/O of an entire plan is
measured end to end.

Join methods provided (section 7 considers both at each join step):

* :func:`nested_loop_join` — the "nested iteration" join: the right
  input is rescanned once per left tuple; cheap when it fits in the
  buffer, quadratic in I/O when it does not.
* :func:`merge_join` — sort-merge join over inputs sorted on the join
  key; supports the non-equality operators of section 5.3 and the
  left-outer mode of section 5.2 ("the outer join includes all values
  from columns participating in the join, with NULLs in the opposite
  column if there is no match").
* :func:`hash_join` — build/probe equi join needing **no sorted
  inputs**: the right input is read once into an in-memory hash table
  with duplicate chains, then the left input probes it.  An extension
  beyond the paper's section-7 repertoire (its cost model considers
  only nested-loop and sort-merge); inner and left-outer modes, the
  null-safe ``<=>`` key regime, and in-join residual predicates all
  match :func:`merge_join` semantics exactly.

Hash-based grouping (:func:`hash_group_aggregate`) and duplicate
elimination (:func:`hash_distinct`) likewise avoid the sort their
merge-based counterparts require.
"""

from __future__ import annotations

import bisect
from collections.abc import Callable, Iterator, Sequence

from repro.catalog.catalog import TableEntry
from repro.engine.aggregate import AggSpec, apply_specs
from repro.engine.compile import try_compile_predicate, try_compile_scalar
from repro.engine.expression import EvalContext, eval_predicate, eval_scalar
from repro.engine.relation import Relation
from repro.engine.schema import RowSchema
from repro.engine.sort import _orderable
from repro.errors import ExecutionError
from repro.sql.ast import Expr
from repro.storage.buffer import BufferPool

JoinMode = str  # "inner" | "left"


def scan_table(entry: TableEntry, binding: str | None = None) -> Relation:
    """A relation view over a stored table (reads go through the buffer)."""
    schema = RowSchema.for_table(
        binding or entry.schema.name, entry.schema.column_names
    )
    return Relation(schema, heap=entry.heap, name=entry.schema.name)


def restrict_project(
    source: Relation,
    buffer: BufferPool,
    predicate: Expr | None = None,
    projections: Sequence[tuple[Expr, str | None, str]] | None = None,
    name: str | None = None,
    rows_per_page: int | None = None,
) -> Relation:
    """One-pass selection + projection, materialized to a new heap.

    This is the paper's "restriction and projection of the inner table"
    (building ``Rt3``/``TEMP2``): cost = read input + write output.

    Args:
        predicate: WHERE predicate over the source schema (no subqueries).
        projections: output columns as ``(expr, qualifier, name)``
            triples; None keeps the source schema unchanged.
    """
    source_schema = source.schema
    if projections is None:
        out_schema = source_schema
        compute: Callable[[tuple], tuple] | None = None
    else:
        out_schema = RowSchema((qual, col) for _, qual, col in projections)
        compiled_items = [
            try_compile_scalar(expr, source_schema) for expr, _, _ in projections
        ]
        if all(fn is not None for fn in compiled_items):

            def compute(row: tuple) -> tuple:
                return tuple(fn(row, None) for fn in compiled_items)

        else:

            def compute(row: tuple) -> tuple:
                context = EvalContext(row, source_schema)
                return tuple(
                    eval_scalar(expr, context) for expr, _, _ in projections
                )

    if predicate is None:
        keep: Callable[[tuple], object] | None = None
    else:
        keep = try_compile_predicate(predicate, source_schema)
        if keep is None:

            def keep(row: tuple, _outer=None) -> object:
                return eval_predicate(predicate, EvalContext(row, source_schema))

    def generate() -> Iterator[tuple]:
        for row in source:
            if keep is not None and keep(row, None) is not True:
                continue
            yield row if compute is None else compute(row)

    return Relation.materialize(
        out_schema, generate(), buffer, rows_per_page=rows_per_page, name=name
    )


def nested_loop_join(
    left: Relation,
    right: Relation,
    buffer: BufferPool,
    predicate: Expr | None = None,
    mode: JoinMode = "inner",
    name: str | None = None,
) -> Relation:
    """Join by rescanning ``right`` once per ``left`` tuple.

    The rescans go through the buffer pool, so when ``right`` fits in
    ``B - 1`` pages the measured cost collapses to one read of each
    input — exactly the distinction the paper's section 7.2 draws.
    """
    out_schema = left.schema + right.schema
    right_nulls = (None,) * len(right.schema)
    keep = _row_predicate(predicate, out_schema)

    def generate() -> Iterator[tuple]:
        for left_row in left:
            matched = False
            for right_row in right:
                combined = left_row + right_row
                if keep is None or keep(combined) is True:
                    matched = True
                    yield combined
            if mode == "left" and not matched:
                yield left_row + right_nulls

    return Relation.materialize(out_schema, generate(), buffer, name=name)


def _row_predicate(
    predicate: Expr | None, schema: RowSchema
) -> Callable[[tuple], object] | None:
    """A per-row predicate callable: compiled when possible, interpreted
    otherwise (None when there is no predicate at all)."""
    if predicate is None:
        return None
    compiled = try_compile_predicate(predicate, schema)
    if compiled is not None:
        return lambda row: compiled(row, None)
    return lambda row: eval_predicate(predicate, EvalContext(row, schema))


def merge_join(
    left: Relation,
    right: Relation,
    buffer: BufferPool,
    left_key: Sequence[int],
    right_key: Sequence[int],
    op: str = "=",
    mode: JoinMode = "inner",
    name: str | None = None,
    null_safe: bool = False,
    residual: Callable[[tuple], object] | None = None,
) -> Relation:
    """Sort-merge join; inputs must already be sorted on their keys.

    For ``op="="`` this is the classic streaming merge join (multi-column
    keys supported).  For the non-equality operators of section 5.3
    (single-column keys) the right side is kept as a sorted array and
    binary-searched, which costs the same page I/O the paper's model
    charges: one read of each input plus the output write.

    ``mode="left"`` is the outer join of section 5.2: left tuples with
    no match appear once, NULL-padded on the right — the fix that lets
    COUNT see its empty groups.

    ``null_safe=True`` (equi joins only) makes NULL keys join NULL keys
    (``<=>`` semantics); both inputs sort NULLs first, so the merge
    stays aligned.

    ``residual`` is an extra predicate over the combined row, evaluated
    *as part of the join condition*: a right row only counts as a match
    when it returns True.  This matters for ``mode="left"`` — filtering
    after an outer join would drop the NULL-padded rows (and fail to
    NULL-pad left rows whose only key matches flunk the residual).
    """
    if op == "=":
        generate = _merge_equi_join(
            left, right, list(left_key), list(right_key), mode, null_safe, residual
        )
    else:
        if len(left_key) != 1 or len(right_key) != 1:
            raise ExecutionError(
                f"theta merge join ({op}) supports single-column keys only"
            )
        if null_safe:
            raise ExecutionError("null-safe merge join requires the = operator")
        generate = _merge_theta_join(
            left, right, left_key[0], right_key[0], op, mode, residual
        )

    out_schema = left.schema + right.schema
    return Relation.materialize(out_schema, generate, buffer, name=name)


def _merge_equi_join(
    left: Relation,
    right: Relation,
    left_key: list[int],
    right_key: list[int],
    mode: JoinMode,
    null_safe: bool = False,
    residual: Callable[[tuple], object] | None = None,
) -> Iterator[tuple]:
    right_nulls = (None,) * len(right.schema)
    right_groups = _group_iterator(iter(right), right_key, keep_nulls=null_safe)
    current_key: tuple | None = None
    current_group: list[tuple] = []
    exhausted = False

    def advance_right_to(key: tuple) -> None:
        nonlocal current_key, current_group, exhausted
        while not exhausted and (current_key is None or current_key < key):
            try:
                current_key, current_group = next(right_groups)
            except StopIteration:
                exhausted = True
                current_group = []

    for left_row in left:
        if not null_safe and any(left_row[i] is None for i in left_key):
            if mode == "left":
                yield left_row + right_nulls
            continue
        key = tuple(_orderable(left_row[i]) for i in left_key)
        advance_right_to(key)
        matched = False
        if not exhausted and current_key == key:
            for right_row in current_group:
                combined = left_row + right_row
                if residual is not None and residual(combined) is not True:
                    continue
                matched = True
                yield combined
        if mode == "left" and not matched:
            yield left_row + right_nulls


def _group_iterator(
    rows: Iterator[tuple], key_columns: list[int], keep_nulls: bool = False
) -> Iterator[tuple[tuple, list[tuple]]]:
    """Yield ``(key, rows)`` groups from a key-sorted stream.

    Rows whose key contains NULL are dropped unless ``keep_nulls``: a
    NULL never equi-joins, but it does null-safe-join (NULLs sort first,
    so a NULL group streams out ahead of every value group).
    """
    current_key: tuple | None = None
    group: list[tuple] = []
    for row in rows:
        if not keep_nulls and any(row[i] is None for i in key_columns):
            continue
        key = tuple(_orderable(row[i]) for i in key_columns)
        if key != current_key:
            if current_key is not None:
                yield current_key, group
            current_key = key
            group = []
        group.append(row)
    if current_key is not None:
        yield current_key, group


def _merge_theta_join(
    left: Relation,
    right: Relation,
    left_key: int,
    right_key: int,
    op: str,
    mode: JoinMode,
    residual: Callable[[tuple], object] | None = None,
) -> Iterator[tuple]:
    right_nulls = (None,) * len(right.schema)
    # One sequential read of the right input; kept sorted in memory.
    right_rows = [row for row in right if row[right_key] is not None]
    right_keys = [_orderable(row[right_key]) for row in right_rows]

    for left_row in left:
        value = left_row[left_key]
        if value is None:
            if mode == "left":
                yield left_row + right_nulls
            continue
        key = _orderable(value)
        matches = _theta_range(right_rows, right_keys, key, op)
        matched = False
        for right_row in matches:
            combined = left_row + right_row
            if residual is not None and residual(combined) is not True:
                continue
            matched = True
            yield combined
        if mode == "left" and not matched:
            yield left_row + right_nulls


def _theta_range(
    rows: list[tuple], keys: list, key, op: str
) -> Iterator[tuple]:
    """Rows whose key satisfies ``row.key op left.key`` — note direction.

    The predicate form in the paper is ``inner.column op outer.column``
    (e.g. ``SUPPLY.PNUM < PARTS.PNUM``), with the *right* (inner) value
    on the left of the operator, so for op ``<`` we return right rows
    whose key is *less than* the probe key.
    """
    if op == "<":
        end = bisect.bisect_left(keys, key)
        return iter(rows[:end])
    if op == "<=":
        end = bisect.bisect_right(keys, key)
        return iter(rows[:end])
    if op == ">":
        start = bisect.bisect_right(keys, key)
        return iter(rows[start:])
    if op == ">=":
        start = bisect.bisect_left(keys, key)
        return iter(rows[start:])
    if op == "<>":
        start = bisect.bisect_left(keys, key)
        end = bisect.bisect_right(keys, key)
        return iter(rows[:start] + rows[end:])
    raise ExecutionError(f"unsupported theta-join operator {op!r}")


def hash_join(
    left: Relation,
    right: Relation,
    buffer: BufferPool,
    left_key: Sequence[int],
    right_key: Sequence[int],
    mode: JoinMode = "inner",
    name: str | None = None,
    null_safe: bool = False,
    residual: Callable[[tuple], object] | None = None,
) -> Relation:
    """Hash equi join: build on ``right``, probe with ``left``.

    Neither input needs to be sorted.  The right input is read once and
    hashed on its key columns (duplicate keys chain in insertion
    order); each left row then probes the table.  Key equality follows
    SQL ``=``: a NULL in either key matches nothing — build rows with
    NULL keys are not even inserted, and probe rows with NULL keys
    produce no matches (but are NULL-padded under ``mode="left"``).

    ``null_safe=True`` switches both sides to ``<=>`` semantics: NULL
    keys hash and join like any other value (NULL <=> NULL is true).

    ``residual`` is evaluated over the combined row *as part of the
    join condition*, exactly as in :func:`merge_join`: under
    ``mode="left"`` a left row whose only key matches flunk the
    residual is NULL-padded rather than dropped.
    """
    out_schema = left.schema + right.schema
    right_nulls = (None,) * len(right.schema)
    build_key = list(right_key)
    probe_key = list(left_key)

    def generate() -> Iterator[tuple]:
        table: dict[tuple, list[tuple]] = {}
        for row in right:
            if not null_safe and any(row[i] is None for i in build_key):
                continue
            table.setdefault(tuple(row[i] for i in build_key), []).append(row)

        for left_row in left:
            matched = False
            if null_safe or not any(left_row[i] is None for i in probe_key):
                key = tuple(left_row[i] for i in probe_key)
                for right_row in table.get(key, ()):
                    combined = left_row + right_row
                    if residual is not None and residual(combined) is not True:
                        continue
                    matched = True
                    yield combined
            if mode == "left" and not matched:
                yield left_row + right_nulls

    return Relation.materialize(out_schema, generate(), buffer, name=name)


def hash_group_aggregate(
    source: Relation,
    buffer: BufferPool,
    group_columns: Sequence[int],
    specs: Sequence[AggSpec],
    out_names: Sequence[tuple[str | None, str]],
    name: str | None = None,
    always_emit: bool = False,
) -> Relation:
    """Grouped aggregation by hashing — the input needs **no sort**.

    Same contract as :func:`group_aggregate` except groups are
    accumulated in a hash table and emitted in first-appearance order
    (NULL group keys form one group, as in SQL's GROUP BY).
    """
    expected = len(group_columns) + len(specs)
    if len(out_names) != expected:
        raise ExecutionError(
            f"group_aggregate needs {expected} output names, got {len(out_names)}"
        )
    out_schema = RowSchema(out_names)
    group_cols = list(group_columns)
    agg_specs = list(specs)

    def generate() -> Iterator[tuple]:
        if not group_cols:
            rows = source.to_list()
            if rows or always_emit:
                yield tuple(apply_specs(rows, agg_specs))
            return
        groups: dict[tuple, list[tuple]] = {}
        for row in source:
            groups.setdefault(tuple(row[i] for i in group_cols), []).append(row)
        for key, rows in groups.items():
            yield key + tuple(apply_specs(rows, agg_specs))

    return Relation.materialize(out_schema, generate(), buffer, name=name)


def hash_distinct(
    source: Relation, buffer: BufferPool, name: str | None = None
) -> Relation:
    """Duplicate elimination by hashing (first occurrence kept, input
    order preserved) — the hash counterpart of sort-unique."""

    def generate() -> Iterator[tuple]:
        seen: set[tuple] = set()
        for row in source:
            if row not in seen:
                seen.add(row)
                yield row

    return Relation.materialize(source.schema, generate(), buffer, name=name)


def group_aggregate(
    source: Relation,
    buffer: BufferPool,
    group_columns: Sequence[int],
    specs: Sequence[AggSpec],
    out_names: Sequence[tuple[str | None, str]],
    name: str | None = None,
    always_emit: bool = False,
) -> Relation:
    """Grouped aggregation over an input sorted on the group columns.

    Output rows are ``group key values + aggregate values`` with the
    given output schema.  With no group columns the whole input is one
    group; ``always_emit`` controls whether an empty ungrouped input
    yields the SQL scalar-aggregate row (COUNT = 0, others NULL).
    """
    expected = len(group_columns) + len(specs)
    if len(out_names) != expected:
        raise ExecutionError(
            f"group_aggregate needs {expected} output names, got {len(out_names)}"
        )
    out_schema = RowSchema(out_names)
    group_cols = list(group_columns)
    agg_specs = list(specs)

    def generate() -> Iterator[tuple]:
        current_key: tuple | None = None
        group: list[tuple] = []
        saw_rows = False

        def emit(key: tuple | None, rows: list[tuple]) -> tuple:
            prefix = () if key is None else key
            return tuple(prefix) + tuple(apply_specs(rows, agg_specs))

        if not group_cols:
            rows = source.to_list()
            if rows or always_emit:
                yield emit(None, rows)
            return

        for row in source:
            saw_rows = True
            key = tuple(row[i] for i in group_cols)
            if current_key is None or key != current_key:
                if current_key is not None:
                    yield emit(current_key, group)
                current_key = key
                group = []
            group.append(row)
        if saw_rows:
            yield emit(current_key, group)

    return Relation.materialize(out_schema, generate(), buffer, name=name)


def index_nested_loop_join(
    left: Relation,
    index,
    right_schema: RowSchema,
    buffer: BufferPool,
    left_key: int,
    mode: JoinMode = "inner",
    name: str | None = None,
) -> Relation:
    """Join by probing an index on the right relation's join column.

    This is System R's classic accelerator for nested iteration: each
    left tuple costs an index-leaf probe plus the matching heap pages
    instead of a full rescan of the right relation.

    Args:
        index: a :class:`repro.storage.index.IsamIndex` on the right
            relation's join column.
        right_schema: schema of the right relation's rows.
        left_key: position of the join column in the left rows.
        mode: ``"inner"`` or ``"left"`` (NULL-padded) — note that using
            the outer mode here *before* applying the right relation's
            simple predicates reproduces the section 5.2 trap; see
            ``benchmarks/bench_index.py``.
    """
    out_schema = left.schema + right_schema
    right_nulls = (None,) * len(right_schema)

    def generate() -> Iterator[tuple]:
        for left_row in left:
            value = left_row[left_key]
            matched = False
            if value is not None:
                for right_row in index.lookup(value):
                    matched = True
                    yield left_row + right_row
            if mode == "left" and not matched:
                yield left_row + right_nulls

    return Relation.materialize(out_schema, generate(), buffer, name=name)


def project_columns(
    source: Relation,
    buffer: BufferPool,
    columns: Sequence[int],
    out_names: Sequence[tuple[str | None, str]],
    name: str | None = None,
) -> Relation:
    """Positional projection, materialized (a cheap restrict_project)."""
    out_schema = RowSchema(out_names)
    cols = list(columns)

    def generate() -> Iterator[tuple]:
        for row in source:
            yield tuple(row[i] for i in cols)

    return Relation.materialize(out_schema, generate(), buffer, name=name)
