"""Row schemas: how column references bind to tuple positions."""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import BindError
from repro.sql.ast import ColumnRef


class RowSchema:
    """An ordered list of ``(qualifier, column)`` pairs describing a row.

    The qualifier is the table binding (table name or alias) a column
    came from, or None for computed columns.  Binding resolves a
    :class:`ColumnRef` to a tuple index:

    * a qualified reference ``T.C`` matches the column with qualifier
      ``T`` and name ``C``;
    * an unqualified reference ``C`` matches the unique column named
      ``C``; ambiguity is an error.
    """

    __slots__ = ("fields",)

    def __init__(self, fields: Iterable[tuple[str | None, str]]) -> None:
        self.fields: tuple[tuple[str | None, str], ...] = tuple(fields)

    @classmethod
    def for_table(cls, binding: str, column_names: Iterable[str]) -> "RowSchema":
        return cls((binding, name) for name in column_names)

    def __len__(self) -> int:
        return len(self.fields)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RowSchema) and self.fields == other.fields

    def __hash__(self) -> int:
        return hash(self.fields)

    def __repr__(self) -> str:
        names = ", ".join(self.qualified_names())
        return f"RowSchema({names})"

    def __add__(self, other: "RowSchema") -> "RowSchema":
        """Concatenation — the schema of a join of two rows."""
        return RowSchema(self.fields + other.fields)

    def qualified_names(self) -> list[str]:
        return [
            f"{qualifier}.{name}" if qualifier else name
            for qualifier, name in self.fields
        ]

    def column_names(self) -> list[str]:
        return [name for _, name in self.fields]

    @property
    def qualifiers(self) -> set[str]:
        return {qualifier for qualifier, _ in self.fields if qualifier}

    def try_index_of(self, ref: ColumnRef) -> int | None:
        """Resolve a column reference, or None when it does not bind here."""
        matches = [
            index
            for index, (qualifier, name) in enumerate(self.fields)
            if name == ref.column and (ref.table is None or ref.table == qualifier)
        ]
        if not matches:
            return None
        if len(matches) > 1:
            raise BindError(f"ambiguous column reference {ref.qualified()}")
        return matches[0]

    def index_of(self, ref: ColumnRef) -> int:
        """Resolve a column reference; raises :class:`BindError` if absent."""
        index = self.try_index_of(ref)
        if index is None:
            raise BindError(f"cannot resolve column {ref.qualified()}")
        return index
