"""Scatter-gather exchange: the shared worker pool for intra-query
parallelism.

One process-wide, size-bounded thread pool executes every parallel
operator's partition tasks — the same discipline the serving layer uses
for inter-query concurrency (a fixed pool, not a thread per request),
now applied inside a single query.  Sharing one pool keeps the total
thread count bounded no matter how many concurrent queries each ask for
``parallelism=N``.

Why this is safe and deadlock-free:

* **No nested submission.**  Partition tasks never submit sub-tasks to
  the pool: :func:`run_tasks` sets a thread-local flag while a task
  runs, and any :func:`run_tasks` call made *from inside a task* (a
  parallel operator reached through a nested-iteration worker, say)
  executes its functions inline on the calling thread.  A bounded pool
  whose tasks can wait on other tasks can deadlock; one whose tasks are
  always leaves cannot.
* **Ordered gather.**  Results come back in task order regardless of
  completion order — partition 0's output precedes partition 1's — so a
  range-partitioned scan gathered through the exchange reproduces the
  serial scan's row order exactly.
* **Width bounding.**  A query's ``parallelism=N`` may be smaller than
  its partition count; a semaphore limits that query's *executing*
  tasks to N while the extras queue.  (The pool cap bounds the whole
  process; the semaphore bounds one query.)
* **First-error propagation.**  The gather waits for every task to
  settle, then re-raises the first exception in task order.  Waiting
  for settlement before raising means no task is still touching shared
  state (a heap being dropped, a buffer pool being reset) after the
  exchange returns.

The GIL means pure-Python work does not speed up across threads; the
parallelism here overlaps the *simulated I/O* (``DiskManager`` sleeps
outside all locks on reads), exactly like the serving layer's
throughput story.  The page-I/O totals are unaffected: each task reads
its own disjoint page shard once, so the sum over tasks equals the
serial schedule (see DESIGN.md, "page-I/O identity").
"""

from __future__ import annotations

import contextvars
import threading
from collections.abc import Callable, Sequence
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from repro.storage.locks import make_lock

__all__ = ["POOL_MAX_WORKERS", "run_tasks", "shutdown_pool"]

#: Hard cap on exchange worker threads for the whole process.
POOL_MAX_WORKERS = 16

_pool: ThreadPoolExecutor | None = None
_pool_lock = make_lock("exchange.pool")
_local = threading.local()


def _shared_pool() -> ThreadPoolExecutor:
    global _pool
    with _pool_lock:
        if _pool is None:
            _pool = ThreadPoolExecutor(
                max_workers=POOL_MAX_WORKERS,
                thread_name_prefix="repro-exchange",
            )
        return _pool


def shutdown_pool() -> None:
    """Tear down the shared pool (tests); it is recreated on next use."""
    global _pool
    with _pool_lock:
        pool, _pool = _pool, None
    if pool is not None:
        pool.shutdown(wait=True)


def in_worker() -> bool:
    """True when the calling thread is executing an exchange task."""
    return bool(getattr(_local, "active", False))


def run_tasks(
    fns: Sequence[Callable[[], Any]], width: int | None = None
) -> list[Any]:
    """Run ``fns`` on the shared pool; gather results in task order.

    ``width`` bounds how many of *this call's* tasks execute at once
    (a query's ``parallelism`` knob); ``None`` means no per-call bound
    beyond the pool cap.  Calls made from inside an exchange task, with
    a single task, or with ``width=1`` run inline serially — same
    results, same I/O, no pool interaction.
    """
    fns = list(fns)
    if not fns:
        return []
    if len(fns) == 1 or width == 1 or in_worker():
        return [fn() for fn in fns]
    semaphore = (
        threading.Semaphore(width)
        if width is not None and width < len(fns)
        else None
    )

    def call(fn: Callable[[], Any]) -> Any:
        _local.active = True
        try:
            if semaphore is None:
                return fn()
            with semaphore:
                return fn()
        finally:
            _local.active = False

    pool = _shared_pool()
    # Context propagation: bind-parameter values travel in a ContextVar
    # (repro.engine.params), which pool threads do not inherit.  Each
    # task gets its own copy of the submitting context — a single
    # Context object cannot be entered by two threads at once.
    futures = [
        pool.submit(contextvars.copy_context().run, call, fn) for fn in fns
    ]
    results: list[Any] = []
    first_error: BaseException | None = None
    for future in futures:
        try:
            results.append(future.result())
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            if first_error is None:
                first_error = exc
            results.append(None)
    if first_error is not None:
        raise first_error
    return results
