"""Execution engine: expressions, physical operators, and the
nested-iteration reference executor.

Two evaluation paths share this package:

* the **nested-iteration executor**
  (:mod:`repro.engine.nested_iteration`) interprets a nested query AST
  directly, re-evaluating correlated inner blocks once per outer tuple —
  System R's strategy, the paper's baseline and its semantic oracle;
* the **physical operators** (:mod:`repro.engine.operators`,
  :mod:`repro.engine.sort`) execute the *transformed* plans: temp-table
  builds, external sorts, merge joins, hash joins, outer joins, and
  grouped aggregation, all through the buffer pool so page I/O is
  measured.

Both paths evaluate per-row expressions through
:mod:`repro.engine.compile` when possible: an expression + schema chain
is compiled once into a plain closure (column indices and operators
bound ahead of time), falling back to the
:mod:`repro.engine.expression` interpreter for subqueries and other
shapes the compiler does not cover.
"""

from repro.engine.compile import (
    CannotCompile,
    compile_predicate,
    compile_scalar,
    interpreted_only,
    set_compile_enabled,
    try_compile_predicate,
    try_compile_scalar,
)
from repro.engine.expression import EvalContext, eval_predicate, eval_scalar
from repro.engine.nested_iteration import NestedIterationExecutor, QueryResult
from repro.engine.relation import Relation
from repro.engine.schema import RowSchema

__all__ = [
    "CannotCompile",
    "EvalContext",
    "NestedIterationExecutor",
    "QueryResult",
    "Relation",
    "RowSchema",
    "compile_predicate",
    "compile_scalar",
    "eval_predicate",
    "eval_scalar",
    "interpreted_only",
    "set_compile_enabled",
    "try_compile_predicate",
    "try_compile_scalar",
]
