"""Execution engine: expressions, physical operators, and the
nested-iteration reference executor.

Two evaluation paths share this package:

* the **nested-iteration executor**
  (:mod:`repro.engine.nested_iteration`) interprets a nested query AST
  directly, re-evaluating correlated inner blocks once per outer tuple —
  System R's strategy, the paper's baseline and its semantic oracle;
* the **physical operators** (:mod:`repro.engine.operators`,
  :mod:`repro.engine.sort`) execute the *transformed* plans: temp-table
  builds, external sorts, merge joins, outer joins, and grouped
  aggregation, all through the buffer pool so page I/O is measured.
"""

from repro.engine.expression import EvalContext, eval_predicate, eval_scalar
from repro.engine.nested_iteration import NestedIterationExecutor, QueryResult
from repro.engine.relation import Relation
from repro.engine.schema import RowSchema

__all__ = [
    "EvalContext",
    "NestedIterationExecutor",
    "QueryResult",
    "Relation",
    "RowSchema",
    "eval_predicate",
    "eval_scalar",
]
