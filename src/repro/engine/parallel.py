"""Partition-parallel physical operators (the ``parallelism=N`` path).

Drop-in counterparts of the single-pass operators in
:mod:`repro.engine.operators` / :mod:`repro.engine.vectorized` that
scatter disjoint page shards of their input across the shared exchange
pool (:mod:`repro.engine.exchange`) and gather results in shard order.

**The page-I/O identity invariant.**  Every operator here preserves the
serial engines' page-I/O *totals* exactly, by construction:

* inputs are sharded at page granularity
  (:meth:`Relation.iter_partition_batches`) — the shards are disjoint
  and their union is the serial scan, so the reads across all workers
  sum to the serial schedule no matter how threads interleave;
* these are all single-pass operators — no worker ever re-reads a page
  within its pass, so eviction pressure cannot multiply reads the way
  it can for rescanning operators (nested-loop join and external sort
  therefore stay serial);
* workers return plain in-memory row batches; the output heap is
  materialized *serially* on the gathering thread, in shard order, so
  the output row stream — and hence page fill, page count, and write
  totals — is bit-identical to the serial operator's.

Row order is preserved under the default ``"range"`` partition scheme:
shard 0's pages precede shard 1's in scan order, so the ordered gather
reproduces the serial output sequence, not merely the same bag.  The
aggregate's merge step additionally relies on this to keep
first-appearance group order global (see
:func:`parallel_group_aggregate`).

Speedup comes from overlapping the simulated disk reads
(:class:`DiskManager` sleeps outside all locks), not from the
GIL-bound Python work — the same mechanism that scales the serving
layer's inter-query throughput, applied inside one query.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Sequence
from functools import partial

from repro.engine.aggregate import AggSpec, apply_specs
from repro.engine.compile import try_compile_scalar
from repro.engine.exchange import run_tasks
from repro.engine.expression import EvalContext, eval_scalar
from repro.engine.operators import JoinMode, _row_predicate
from repro.engine.relation import Relation
from repro.engine.schema import RowSchema
from repro.engine.vectorized import _batch_mask, _batch_scalar, _columns, _rows
from repro.errors import ExecutionError
from repro.sql.ast import Expr
from repro.storage.buffer import BufferPool

__all__ = [
    "DEFAULT_PARALLEL_THRESHOLD",
    "parallel_distinct",
    "parallel_group_aggregate",
    "parallel_hash_join",
    "parallel_restrict_project",
]

#: Inputs below this row count run the serial operator even under
#: ``parallelism > 1``: the exchange's dispatch overhead exceeds any
#: I/O overlap on small inputs, and correctness is identical either
#: way.  Benchmarks and the difftest's parallel legs override it.
DEFAULT_PARALLEL_THRESHOLD = 2048


def _batch_processor(
    schema: RowSchema,
    predicate: Expr | None,
    projections: Sequence[tuple[Expr, str | None, str]] | None,
    engine: str,
) -> Callable[[list[tuple]], list[tuple]]:
    """A pure ``batch -> output rows`` function for restrict/project.

    Mirrors the serial operators exactly: the ``"vectorized"`` engine
    evaluates mask/scalar batch kernels (with the same per-expression
    scalar fallbacks), anything else evaluates the row engine's
    compiled-or-interpreted closures.  The returned function is
    stateless, so one instance is safely shared by every worker.
    """
    if engine == "vectorized":
        mask_fn = None if predicate is None else _batch_mask(predicate, schema)
        evaluators = (
            None
            if projections is None
            else [_batch_scalar(expr, schema) for expr, _, _ in projections]
        )

        def process(batch: list[tuple]) -> list[tuple]:
            if not batch:
                return []
            cols = _columns(batch, len(schema))
            if mask_fn is None:
                sel: list[int] | None = None
                count = len(batch)
            else:
                mask = mask_fn(cols, batch)
                sel = [i for i, value in enumerate(mask) if value is True]
                if not sel:
                    return []
                count = len(sel)
            if evaluators is None:
                return batch if sel is None else [batch[i] for i in sel]
            out_cols = [fn(cols, batch, sel) for fn in evaluators]
            return _rows(out_cols, count)

        return process

    keep = _row_predicate(predicate, schema)
    if projections is None:
        compute: Callable[[tuple], tuple] | None = None
    else:
        compiled_items = [
            try_compile_scalar(expr, schema) for expr, _, _ in projections
        ]
        if all(fn is not None for fn in compiled_items):

            def compute(row: tuple) -> tuple:
                return tuple(fn(row, None) for fn in compiled_items)

        else:

            def compute(row: tuple) -> tuple:
                context = EvalContext(row, schema)
                return tuple(
                    eval_scalar(expr, context) for expr, _, _ in projections
                )

    def process(batch: list[tuple]) -> list[tuple]:
        if keep is not None:
            batch = [row for row in batch if keep(row) is True]
        if compute is None:
            return batch
        return [compute(row) for row in batch]

    return process


def parallel_restrict_project(
    source: Relation,
    buffer: BufferPool,
    predicate: Expr | None = None,
    projections: Sequence[tuple[Expr, str | None, str]] | None = None,
    name: str | None = None,
    rows_per_page: int | None = None,
    *,
    parallelism: int = 2,
    engine: str = "row",
) -> Relation:
    """Partition-parallel selection + projection.

    Same contract as :func:`repro.engine.operators.restrict_project`
    (and its vectorized counterpart, chosen by ``engine``): workers
    filter and project disjoint page shards, the gather concatenates
    their outputs in shard order, and the result heap is materialized
    serially — identical rows, row order, pages, and I/O totals.
    """
    source_schema = source.schema
    if projections is None:
        out_schema = source_schema
    else:
        out_schema = RowSchema((qual, col) for _, qual, col in projections)
    process = _batch_processor(source_schema, predicate, projections, engine)
    nparts = source.partition_count(parallelism)

    def work(index: int) -> list[list[tuple]]:
        out: list[list[tuple]] = []
        for batch in source.iter_partition_batches(index, nparts):
            rows = process(batch)
            if rows:
                out.append(rows)
        return out

    shards = run_tasks(
        [partial(work, index) for index in range(nparts)], width=parallelism
    )
    return Relation.materialize_batches(
        out_schema,
        (batch for shard in shards for batch in shard),
        buffer,
        rows_per_page=rows_per_page,
        name=name,
    )


def parallel_hash_join(
    left: Relation,
    right: Relation,
    buffer: BufferPool,
    left_key: Sequence[int],
    right_key: Sequence[int],
    mode: JoinMode = "inner",
    name: str | None = None,
    null_safe: bool = False,
    residual: Callable[[tuple], object] | None = None,
    *,
    parallelism: int = 2,
) -> Relation:
    """Shared-build, partitioned-probe hash equi join.

    Build follows :func:`repro.engine.operators.hash_join` to the
    letter (read once, duplicate chains in insertion order, NULL keys
    skipped unless ``null_safe``) and runs serially on the calling
    thread — one build, read-only afterwards, so workers probe it
    without any synchronization.  The probe side is sharded; each
    worker emits matches in its shard's scan order and the ordered
    gather restores the serial probe order, so output rows, NULL
    padding under ``mode="left"``, and in-join ``residual`` semantics
    are all exactly the serial operator's.

    (A partitioned build with per-worker tables merged was the
    alternative; the shared build wins here because the probe side is
    the large input in every plan this executor produces, and merging
    duplicate chains across worker tables would have to re-sort them
    into insertion order to keep output order deterministic.)
    """
    out_schema = left.schema + right.schema
    right_nulls = (None,) * len(right.schema)
    build_key = list(right_key)
    probe_key = list(left_key)

    table: dict[tuple, list[tuple]] = {}
    for build_batch in right.iter_batches():
        for row in build_batch:
            if not null_safe and any(row[i] is None for i in build_key):
                continue
            table.setdefault(tuple(row[i] for i in build_key), []).append(row)

    nparts = left.partition_count(parallelism)
    left_outer = mode == "left"

    def probe(index: int) -> list[list[tuple]]:
        get = table.get
        out: list[list[tuple]] = []
        for batch in left.iter_partition_batches(index, nparts):
            chunk: list[tuple] = []
            append = chunk.append
            for left_row in batch:
                matched = False
                if null_safe or not any(
                    left_row[i] is None for i in probe_key
                ):
                    key = tuple(left_row[i] for i in probe_key)
                    bucket = get(key)
                    if bucket is not None:
                        for right_row in bucket:
                            combined = left_row + right_row
                            if (
                                residual is not None
                                and residual(combined) is not True
                            ):
                                continue
                            matched = True
                            append(combined)
                if left_outer and not matched:
                    append(left_row + right_nulls)
            if chunk:
                out.append(chunk)
        return out

    shards = run_tasks(
        [partial(probe, index) for index in range(nparts)],
        width=parallelism,
    )
    return Relation.materialize_batches(
        out_schema,
        (batch for shard in shards for batch in shard),
        buffer,
        name=name,
    )


def parallel_group_aggregate(
    source: Relation,
    buffer: BufferPool,
    group_columns: Sequence[int],
    specs: Sequence[AggSpec],
    out_names: Sequence[tuple[str | None, str]],
    name: str | None = None,
    always_emit: bool = False,
    *,
    parallelism: int = 2,
) -> Relation:
    """Partition-parallel grouped aggregation: partial, merge, finalize.

    Workers build per-shard ``group key -> row list`` partials; the
    gather merges them *in shard order* and finalizes each group with
    the shared :func:`~repro.engine.aggregate.apply_specs` — the same
    code path every serial aggregate uses, so 3VL and NULL semantics
    (SUM over an empty group is NULL, COUNT is 0, ``always_emit`` for
    the empty scalar aggregate) are inherited, not reimplemented.

    Two order guarantees make this a drop-in for both serial shapes:

    * merging shards in range order makes the merged dict's insertion
      order the *global* first-appearance order (a key's first global
      appearance lies in the earliest shard containing it), matching
      the hash aggregates exactly;
    * each key's row list concatenates shard sublists in range order,
      i.e. scan order — so order-sensitive finalization sees the serial
      row sequence, and over key-sorted input first-appearance order
      *is* sorted order, matching the streaming sorted aggregate too.
    """
    expected = len(group_columns) + len(specs)
    if len(out_names) != expected:
        raise ExecutionError(
            f"group_aggregate needs {expected} output names, got {len(out_names)}"
        )
    out_schema = RowSchema(out_names)
    group_cols = list(group_columns)
    agg_specs = list(specs)
    nparts = source.partition_count(parallelism)

    if not group_cols:

        def collect(index: int) -> list[tuple]:
            rows: list[tuple] = []
            for batch in source.iter_partition_batches(index, nparts):
                rows.extend(batch)
            return rows

        parts = run_tasks(
            [partial(collect, index) for index in range(nparts)],
            width=parallelism,
        )
        all_rows = [row for part in parts for row in part]
        output: list[tuple] = []
        if all_rows or always_emit:
            output = [tuple(apply_specs(all_rows, agg_specs))]
        return Relation.materialize_batches(
            out_schema, [output] if output else [], buffer, name=name
        )

    def build(index: int) -> dict[tuple, list[tuple]]:
        groups: dict[tuple, list[tuple]] = {}
        setdefault = groups.setdefault
        for batch in source.iter_partition_batches(index, nparts):
            for row in batch:
                setdefault(tuple(row[i] for i in group_cols), []).append(row)
        return groups

    parts = run_tasks(
        [partial(build, index) for index in range(nparts)], width=parallelism
    )
    merged: dict[tuple, list[tuple]] = {}
    for part in parts:
        for key, rows in part.items():
            existing = merged.get(key)
            if existing is None:
                merged[key] = rows
            else:
                existing.extend(rows)
    output = [
        key + tuple(apply_specs(rows, agg_specs))
        for key, rows in merged.items()
    ]
    return Relation.materialize_batches(
        out_schema, [output] if output else [], buffer, name=name
    )


def parallel_distinct(
    source: Relation,
    buffer: BufferPool,
    name: str | None = None,
    *,
    parallelism: int = 2,
) -> Relation:
    """Partition-parallel duplicate elimination, first occurrence kept.

    Workers dedupe within their shard (preserving shard scan order);
    the gather re-checks against a global seen-set in shard order, so
    the survivors are exactly the serial operator's: the first global
    occurrence of each distinct row, in scan order.
    """
    nparts = source.partition_count(parallelism)

    def dedupe(index: int) -> list[list[tuple]]:
        local_seen: set[tuple] = set()
        out: list[list[tuple]] = []
        for batch in source.iter_partition_batches(index, nparts):
            rows = [row for row in dict.fromkeys(batch) if row not in local_seen]
            local_seen.update(rows)
            if rows:
                out.append(rows)
        return out

    parts = run_tasks(
        [partial(dedupe, index) for index in range(nparts)], width=parallelism
    )
    seen: set[tuple] = set()

    def batches() -> Iterator[list[tuple]]:
        for part in parts:
            for batch in part:
                rows = [row for row in batch if row not in seen]
                seen.update(rows)
                if rows:
                    yield rows

    return Relation.materialize_batches(
        source.schema, batches(), buffer, name=name
    )
