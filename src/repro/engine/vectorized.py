"""Batch-at-a-time physical operators (the ``engine="vectorized"`` path).

Drop-in counterparts of the row operators in
:mod:`repro.engine.operators`, with the same signatures and the same
output relations, evaluated a batch at a time:

* inputs are consumed through :meth:`Relation.iter_batches` — one batch
  per heap page, so page-I/O accounting is identical to a row scan;
* each batch is transposed to columns and expressions run as **batch
  kernels** from :mod:`repro.engine.vector_compile`, amortizing
  dispatch over the whole batch instead of paying it per row;
* outputs are materialized through
  :meth:`Relation.materialize_batches`, which fills the same pages the
  row path would, one buffer interaction per page instead of per row.

When an expression has no batch kernel (correlated reference, subquery,
compilation globally disabled), that one expression falls back to the
scalar closure path — compiled closure if available, interpreter
otherwise — over the selected rows, while the rest of the batch
pipeline stays columnar.  Under
:func:`~repro.engine.compile.interpreted_only` every expression takes
that fallback, so the toggle still measures interpreted evaluation.

Error-surfacing note: within one batch, kernels evaluate
column-at-a-time, so when several cells would each raise a
data-dependent error the *first* error surfaced can differ from the
row engine's row-at-a-time order.  The set of evaluated cells — and
hence whether an error occurs at all — is identical (AND/OR gate later
operands through selection vectors; see ``vector_compile``).
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Sequence
from operator import itemgetter

from repro.engine.aggregate import AggSpec, apply_specs
from repro.engine.compile import compile_enabled, try_compile_scalar
from repro.engine.expression import EvalContext, eval_scalar
from repro.engine.operators import JoinMode, _row_predicate
from repro.engine.relation import Relation
from repro.engine.schema import RowSchema
from repro.sql.ast import And, ColumnRef, Comparison
from repro.engine.vector_compile import (
    referenced_indexes,
    try_compile_batch_predicate,
    try_compile_batch_scalar,
)
from repro.errors import ExecutionError
from repro.sql.ast import Expr
from repro.storage.buffer import BufferPool


def _columns(batch: list[tuple], width: int) -> list[tuple]:
    """Transpose a row batch to columns (width needed for empty batches)."""
    if not batch:
        return [()] * width
    return list(zip(*batch))


def _rows(columns: list[list], count: int) -> list[tuple]:
    """Transpose columns back to rows; zero columns → empty tuples."""
    if not columns:
        return [()] * count
    return list(zip(*columns))


def _scalar_fallback(
    expr: Expr, schema: RowSchema
) -> Callable[[tuple], object]:
    """Per-row scalar evaluation: compiled closure when available,
    interpreter otherwise (the per-expression CannotCompile fallback)."""
    compiled = try_compile_scalar(expr, schema)
    if compiled is not None:
        return lambda row: compiled(row, None)
    return lambda row: eval_scalar(expr, EvalContext(row, schema))


def _batch_scalar(
    expr: Expr, schema: RowSchema
) -> Callable[[list, list[tuple], "list[int] | None"], list]:
    """A column evaluator ``fn(cols, batch, sel)`` for one scalar.

    Uses the batch kernel when one compiles; otherwise evaluates the
    scalar closure (or interpreter) row by row over the selection.
    """
    kernel = try_compile_batch_scalar(expr, schema)
    if kernel is not None:
        return lambda cols, batch, sel: kernel(cols, len(batch), sel)
    row_fn = _scalar_fallback(expr, schema)

    def fallback(cols, batch, sel):
        if sel is None:
            return [row_fn(row) for row in batch]
        return [row_fn(batch[i]) for i in sel]

    return fallback


def _batch_mask(
    predicate: Expr, schema: RowSchema
) -> Callable[[list, list[tuple]], list]:
    """A full-batch predicate mask evaluator ``fn(cols, batch)``."""
    kernel = try_compile_batch_predicate(predicate, schema)
    if kernel is not None:
        return lambda cols, batch: kernel(cols, len(batch), None)
    row_fn = _row_predicate(predicate, schema)

    def fallback(cols, batch):
        return [row_fn(row) for row in batch]

    return fallback


def vectorized_restrict_project(
    source: Relation,
    buffer: BufferPool,
    predicate: Expr | None = None,
    projections: Sequence[tuple[Expr, str | None, str]] | None = None,
    name: str | None = None,
    rows_per_page: int | None = None,
) -> Relation:
    """Batch selection + projection; same contract as
    :func:`repro.engine.operators.restrict_project`."""
    source_schema = source.schema
    if projections is None:
        out_schema = source_schema
        evaluators = None
    else:
        out_schema = RowSchema((qual, col) for _, qual, col in projections)
        evaluators = [
            _batch_scalar(expr, source_schema) for expr, _, _ in projections
        ]
    mask_fn = (
        None if predicate is None else _batch_mask(predicate, source_schema)
    )

    def batches() -> Iterator[list[tuple]]:
        for batch in source.iter_batches():
            if not batch:
                continue
            cols = _columns(batch, len(source_schema))
            if mask_fn is None:
                sel: list[int] | None = None
                count = len(batch)
            else:
                mask = mask_fn(cols, batch)
                sel = [i for i, value in enumerate(mask) if value is True]
                if not sel:
                    continue
                count = len(sel)
            if evaluators is None:
                yield batch if sel is None else [batch[i] for i in sel]
            else:
                out_cols = [fn(cols, batch, sel) for fn in evaluators]
                yield _rows(out_cols, count)

    return Relation.materialize_batches(
        out_schema, batches(), buffer, rows_per_page=rows_per_page, name=name
    )


def _and_kernels(kernels: list) -> "Callable | None":
    """AND a list of mask kernels down to True/False (callers gating on
    ``is True`` never see the difference between False and unknown)."""
    if not kernels:
        return None
    if len(kernels) == 1:
        return kernels[0]

    def combined(cols, n, sel):
        result = kernels[0](cols, n, sel)
        for kernel in kernels[1:]:
            nxt = kernel(cols, n, sel)
            result = [
                a is True and b is True for a, b in zip(result, nxt)
            ]
        return result

    return combined


def vectorized_hash_join(
    left: Relation,
    right: Relation,
    buffer: BufferPool,
    left_key: Sequence[int],
    right_key: Sequence[int],
    mode: JoinMode = "inner",
    name: str | None = None,
    null_safe: bool = False,
    residual: Callable[[tuple], object] | None = None,
) -> Relation:
    """Batch build/probe hash equi join; same contract as
    :func:`repro.engine.operators.hash_join`.

    Build and probe consume page-sized batches; a single-column key
    avoids per-row tuple construction on both sides.  The residual
    stays a per-combined-row callable (it is the correlated part of the
    join condition), evaluated only on candidate matches.
    """
    out_schema = left.schema + right.schema
    right_nulls = (None,) * len(right.schema)
    build_key = list(right_key)
    probe_key = list(left_key)
    single = len(build_key) == 1 and len(probe_key) == 1

    # The executor's residual callable carries its source expression
    # (see _residual_callable); when it batch-compiles, candidate
    # matches are filtered a batch at a time instead of per row.  On
    # top of that, the residual's top-level conjuncts are decomposed:
    #
    # * an equality between one left and one right column folds into
    #   the composite hash key — plain ``=`` components skip NULL keys
    #   at build (NULL never matches), ``<=>`` components admit them
    #   (dict equality on None is exactly null-safe matching);
    # * a conjunct reading only right columns filters rows out of the
    #   hash table at build; only left columns, it masks probe rows —
    #   equivalent for inner and left-outer joins alike (a left row
    #   all of whose matches fail the residual pads with NULLs either
    #   way), and far cheaper than materializing candidates;
    # * anything left over keeps the candidate-time check (kernel when
    #   it compiles, scalar fallback otherwise).
    #
    # A pushed conjunct is evaluated at rows the row engine never
    # visits (non-candidates), so a data-dependent error could surface
    # where the row engine reports none, and a folded equality can no
    # longer raise the mixed-type error at all; the difftest grammar
    # generates no error-raising predicates (integer-only comparisons,
    # no division), so the legs still agree.  Decomposition is gated on
    # ``compile_enabled`` so the interpreted leg measures the row
    # engine's evaluation order faithfully.
    residual_kernel = None
    build_residual = probe_residual = None
    left_width = len(left.schema)
    # Leading ``nchecked`` key components never admit NULL (build rows
    # with NULL there are skipped); trailing components match NULL to
    # NULL via dict equality (null-safe join keys and ``<=>`` folds).
    nchecked = 0 if null_safe else len(build_key)
    expr = getattr(residual, "expr", None) if residual is not None else None
    if expr is not None and compile_enabled():
        schema = residual.schema
        conjuncts = (
            list(expr.operands) if isinstance(expr, And) else [expr]
        )
        eq_folds: list[tuple[int, int]] = []  # plain '=' components
        ns_folds: list[tuple[int, int]] = []  # '<=>' components
        left_parts: list = []
        right_parts: list = []
        leftover: list = []
        for conjunct in conjuncts:
            if (
                isinstance(conjunct, Comparison)
                and conjunct.op == "="
                and isinstance(conjunct.left, ColumnRef)
                and isinstance(conjunct.right, ColumnRef)
            ):
                li = referenced_indexes(conjunct.left, schema)
                ri = referenced_indexes(conjunct.right, schema)
                if li and ri:
                    (li,), (ri,) = li, ri
                    pair = None
                    if li < left_width <= ri:
                        pair = (li, ri - left_width)
                    elif ri < left_width <= li:
                        pair = (ri, li - left_width)
                    if pair is not None:
                        target = ns_folds if conjunct.null_safe else eq_folds
                        target.append(pair)
                        continue
            refs = referenced_indexes(conjunct, schema)
            kernel = (
                None
                if refs is None
                else try_compile_batch_predicate(conjunct, schema)
            )
            if kernel is None:
                leftover.append(conjunct)
            elif refs and all(i >= left_width for i in refs):
                right_parts.append(kernel)
            elif all(i < left_width for i in refs):
                left_parts.append(kernel)
            else:
                leftover.append(conjunct)
        if eq_folds or ns_folds or left_parts or right_parts:
            primary = list(zip(probe_key, build_key))
            checked = ([] if null_safe else primary) + eq_folds
            unchecked = (primary if null_safe else []) + ns_folds
            pairs = checked + unchecked
            probe_key = [p for p, _ in pairs]
            build_key = [b for _, b in pairs]
            nchecked = len(checked)
            single = len(build_key) == 1
            probe_residual = _and_kernels(left_parts)
            build_residual = _and_kernels(right_parts)
            if leftover:
                # Candidates were pre-filtered by the pushed conjuncts
                # (all True there), so re-checking the full residual on
                # them is redundant but correct; keep the original
                # whole-expression check for the leftovers.
                residual_kernel = try_compile_batch_predicate(expr, schema)
            else:
                residual = None
        else:
            residual_kernel = try_compile_batch_predicate(expr, schema)

    # Per-batch key extraction at C speed: a multi-index itemgetter
    # yields ready-made key tuples (a single-index one bare values) in
    # one ``map`` pass.
    build_getter = itemgetter(*build_key)
    probe_getter = itemgetter(*probe_key)

    def batch_keys(batch: list[tuple], getter) -> Sequence:
        return list(map(getter, batch))

    table: dict = {}
    get = table.get
    full_check = nchecked == len(build_key)
    # Kernel column positions follow the combined schema, so a pushed
    # build-side residual sees right columns behind a left-width pad.
    build_pad = [()] * left_width
    for batch in right.iter_batches():
        if not batch:
            continue
        if build_residual is not None:
            mask = build_residual(
                build_pad + list(zip(*batch)), len(batch), None
            )
            batch = [row for row, keep in zip(batch, mask) if keep is True]
            if not batch:
                continue
        for key, row in zip(batch_keys(batch, build_getter), batch):
            if nchecked and (
                (key is None)
                if single
                else (
                    None in key
                    if full_check
                    else None in key[:nchecked]
                )
            ):
                continue
            bucket = get(key)
            if bucket is None:
                table[key] = [row]
            else:
                bucket.append(row)

    left_outer = mode == "left"

    def batches() -> Iterator[list[tuple]]:
        for batch in left.iter_batches():
            if not batch:
                continue
            # Probe keys containing NULL simply miss the table (build
            # skipped NULL keys unless null_safe, and a tuple holding
            # None never equals one that doesn't), so no per-row NULL
            # test is needed on the probe side.
            keys = batch_keys(batch, probe_getter)
            out: list[tuple] = []
            if probe_residual is not None:
                # Left-only residual: mask the probe batch up front.  A
                # failing probe row has no surviving match by definition
                # (outer: pad; inner: skip), and output stays in probe
                # order so downstream order-sensitive operators (the
                # streaming sorted aggregate) see the row engine's
                # sequence.
                mask = probe_residual(list(zip(*batch)), len(batch), None)
                if left_outer:
                    append = out.append
                    extend = out.extend
                    for key, left_row, keep in zip(keys, batch, mask):
                        bucket = get(key) if keep is True else None
                        if bucket is None:
                            append(left_row + right_nulls)
                        else:
                            extend([left_row + r for r in bucket])
                else:
                    out = [
                        left_row + right_row
                        for key, left_row, keep in zip(keys, batch, mask)
                        if keep is True
                        if (bucket := get(key)) is not None
                        for right_row in bucket
                    ]
                if out:
                    yield out
                continue
            if residual_kernel is not None:
                # Candidate combined rows for the whole probe batch,
                # filtered by one kernel call; spans track which slice
                # belongs to which left row for the outer padding.
                if left_outer:
                    cand: list[tuple] = []
                    spans: list[tuple] = []
                    for key, left_row in zip(keys, batch):
                        start = len(cand)
                        bucket = get(key)
                        if bucket is not None:
                            cand.extend(
                                [left_row + r for r in bucket]
                            )
                        spans.append((left_row, start, len(cand)))
                else:
                    cand = [
                        left_row + right_row
                        for key, left_row in zip(keys, batch)
                        if (bucket := get(key)) is not None
                        for right_row in bucket
                    ]
                if cand:
                    cols = list(zip(*cand))
                    mask = residual_kernel(cols, len(cand), None)
                else:
                    mask = []
                if left_outer:
                    append = out.append
                    for left_row, start, end in spans:
                        matched = False
                        for i in range(start, end):
                            if mask[i] is True:
                                matched = True
                                append(cand[i])
                        if not matched:
                            append(left_row + right_nulls)
                else:
                    out = [
                        row
                        for row, value in zip(cand, mask)
                        if value is True
                    ]
            elif residual is not None:
                # Residual with no batch kernel: per-candidate scalar
                # fallback (compiled closure or interpreter).
                append = out.append
                for key, left_row in zip(keys, batch):
                    matched = False
                    bucket = get(key)
                    if bucket is not None:
                        for right_row in bucket:
                            combined = left_row + right_row
                            if residual(combined) is not True:
                                continue
                            matched = True
                            append(combined)
                    if left_outer and not matched:
                        append(left_row + right_nulls)
            elif left_outer:
                extend = out.extend
                append = out.append
                for key, left_row in zip(keys, batch):
                    bucket = get(key)
                    if bucket is None:
                        append(left_row + right_nulls)
                    else:
                        extend([left_row + r for r in bucket])
            else:
                out = [
                    left_row + right_row
                    for key, left_row in zip(keys, batch)
                    if (bucket := get(key)) is not None
                    for right_row in bucket
                ]
            if out:
                yield out

    return Relation.materialize_batches(out_schema, batches(), buffer, name=name)


def vectorized_group_aggregate(
    source: Relation,
    buffer: BufferPool,
    group_columns: Sequence[int],
    specs: Sequence[AggSpec],
    out_names: Sequence[tuple[str | None, str]],
    name: str | None = None,
    always_emit: bool = False,
) -> Relation:
    """Batch grouped aggregation (hash accumulator).

    Groups are emitted in first-appearance order, which makes this a
    drop-in for *both* row counterparts: it matches
    :func:`~repro.engine.operators.hash_group_aggregate` by definition,
    and over a key-sorted input (the merge/nested plans) first
    appearance *is* sorted order, so it matches
    :func:`~repro.engine.operators.group_aggregate` too.  Aggregates
    are computed by the shared :func:`~repro.engine.aggregate.apply_specs`,
    so NULL handling, DISTINCT, and empty-group semantics are the row
    engine's, not a reimplementation.
    """
    expected = len(group_columns) + len(specs)
    if len(out_names) != expected:
        raise ExecutionError(
            f"group_aggregate needs {expected} output names, got {len(out_names)}"
        )
    out_schema = RowSchema(out_names)
    group_cols = list(group_columns)
    agg_specs = list(specs)
    single = len(group_cols) == 1

    def batches() -> Iterator[list[tuple]]:
        if not group_cols:
            rows: list[tuple] = []
            for batch in source.iter_batches():
                rows.extend(batch)
            if rows or always_emit:
                yield [tuple(apply_specs(rows, agg_specs))]
            return
        groups: dict = {}
        setdefault = groups.setdefault
        if single:
            gc = group_cols[0]
            for batch in source.iter_batches():
                for row in batch:
                    setdefault(row[gc], []).append(row)
            out = [
                (key,) + tuple(apply_specs(rows, agg_specs))
                for key, rows in groups.items()
            ]
        else:
            for batch in source.iter_batches():
                for row in batch:
                    setdefault(
                        tuple(row[i] for i in group_cols), []
                    ).append(row)
            out = [
                key + tuple(apply_specs(rows, agg_specs))
                for key, rows in groups.items()
            ]
        if out:
            yield out

    return Relation.materialize_batches(out_schema, batches(), buffer, name=name)


def vectorized_sorted_group_aggregate(
    source: Relation,
    buffer: BufferPool,
    group_columns: Sequence[int],
    specs: Sequence[AggSpec],
    out_names: Sequence[tuple[str | None, str]],
    name: str | None = None,
    always_emit: bool = False,
) -> Relation:
    """Batch streaming aggregation over a key-sorted input.

    The batch counterpart of
    :func:`~repro.engine.operators.group_aggregate`: groups completed
    within a batch are emitted with that batch, and the group straddling
    a batch boundary is carried and emitted with the batch that closes
    it — the row operator's behaviour at page granularity, so the
    output heap's pages interleave with source reads in the same order
    (identical buffer/LRU footprint, not just identical totals).
    """
    expected = len(group_columns) + len(specs)
    if len(out_names) != expected:
        raise ExecutionError(
            f"group_aggregate needs {expected} output names, got {len(out_names)}"
        )
    out_schema = RowSchema(out_names)
    group_cols = list(group_columns)
    agg_specs = list(specs)

    def batches() -> Iterator[list[tuple]]:
        if not group_cols:
            rows: list[tuple] = []
            for batch in source.iter_batches():
                rows.extend(batch)
            if rows or always_emit:
                yield [tuple(apply_specs(rows, agg_specs))]
            return
        current_key: tuple | None = None
        group: list[tuple] = []
        saw_rows = False
        for batch in source.iter_batches():
            out: list[tuple] = []
            for row in batch:
                saw_rows = True
                key = tuple(row[i] for i in group_cols)
                if current_key is None or key != current_key:
                    if current_key is not None:
                        out.append(
                            current_key + tuple(apply_specs(group, agg_specs))
                        )
                    current_key = key
                    group = []
                group.append(row)
            if out:
                yield out
        if saw_rows:
            assert current_key is not None
            yield [current_key + tuple(apply_specs(group, agg_specs))]

    return Relation.materialize_batches(out_schema, batches(), buffer, name=name)


def vectorized_distinct(
    source: Relation, buffer: BufferPool, name: str | None = None
) -> Relation:
    """Batch duplicate elimination, first occurrence kept (the batch
    counterpart of :func:`~repro.engine.operators.hash_distinct`)."""

    def batches() -> Iterator[list[tuple]]:
        seen: set[tuple] = set()
        update = seen.update
        for batch in source.iter_batches():
            # dict.fromkeys dedupes within the batch preserving first
            # occurrence at C speed; the comprehension then drops rows
            # already seen in earlier batches.
            out = [row for row in dict.fromkeys(batch) if row not in seen]
            update(out)
            if out:
                yield out

    return Relation.materialize_batches(
        source.schema, batches(), buffer, name=name
    )
