"""External (B-1)-way merge sort.

The paper (section 7, quoting Kim's notation): "When it is necessary to
sort a relation, a (B-1)-way multi-way merge sort is used, which
requires 2·P·log_{B-1}(P) page I/O's to sort a relation R."

This module implements that sort for real: run formation fills the B
buffer pages, each merge pass combines up to B-1 runs, and every page
touched flows through the buffer pool so the measured I/O can be
compared against the model's ``2·P·log`` term.  An optional
``unique=True`` removes duplicate rows while sorting — the paper's
"sorting it and removing duplicates" step in building ``Rt2``/``Rt3``.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterator, Sequence

from repro.engine.relation import Relation, temp_rows_per_page
from repro.storage.buffer import BufferPool
from repro.storage.heap import HeapFile


def sort_key(row: tuple, key_columns: Sequence[int]) -> tuple:
    """Total-order sort key: chosen columns first, whole row as tiebreak.

    NULL sorts before every value (an arbitrary but consistent choice),
    and the wrapper keeps Python from comparing None with ints.
    """
    return tuple(_orderable(row[i]) for i in key_columns) + tuple(
        _orderable(v) for v in row
    )


def _orderable(value: object) -> tuple:
    if value is None:
        return (0, 0, "")
    if isinstance(value, bool):
        return (1, int(value), "")
    if isinstance(value, (int, float)):
        return (1, value, "")
    return (2, 0, str(value))


def external_sort(
    source: Relation,
    key_columns: Sequence[int],
    buffer: BufferPool,
    unique: bool = False,
    name: str | None = None,
) -> Relation:
    """Sort a relation by the given columns into a new heap-backed relation.

    Args:
        source: the input (heap-backed or in-memory).
        key_columns: tuple positions forming the (major) sort key.
        buffer: the buffer pool; its capacity is the paper's ``B``.
        unique: drop duplicate *rows* while sorting (sort-based
            duplicate elimination, as the paper's temp-table builds use).
        name: optional name for the output relation.
    """
    rows_per_page = (
        source.heap.rows_per_page
        if source.heap is not None
        else temp_rows_per_page(len(source.schema))
    )
    run_rows = max(1, buffer.capacity * rows_per_page)
    key = list(key_columns)

    runs = _form_runs(source, key, run_rows, rows_per_page, buffer, unique)
    result_heap = _merge_runs(runs, key, rows_per_page, buffer, unique, name)
    return Relation(source.schema, heap=result_heap, name=name)


def _form_runs(
    source: Relation,
    key: list[int],
    run_rows: int,
    rows_per_page: int,
    buffer: BufferPool,
    unique: bool,
) -> list[HeapFile]:
    """Scan the input, producing sorted runs of at most ``run_rows`` rows."""
    runs: list[HeapFile] = []
    chunk: list[tuple] = []

    def emit() -> None:
        if not chunk:
            return
        chunk.sort(key=lambda row: sort_key(row, key))
        rows: Iterator[tuple] | list[tuple] = chunk
        if unique:
            rows = _dedup_sorted(iter(chunk))
        run = HeapFile(buffer, rows_per_page=rows_per_page, name="sort-run")
        run.extend(rows)
        run.flush()
        runs.append(run)
        chunk.clear()

    for row in source:
        chunk.append(row)
        if len(chunk) >= run_rows:
            emit()
    emit()
    return runs


def _merge_runs(
    runs: list[HeapFile],
    key: list[int],
    rows_per_page: int,
    buffer: BufferPool,
    unique: bool,
    name: str | None,
) -> HeapFile:
    """(B-1)-way merge passes until a single run remains."""
    fan_in = max(2, buffer.capacity - 1)

    if not runs:
        return HeapFile(buffer, rows_per_page=rows_per_page, name=name)

    while len(runs) > 1:
        next_runs: list[HeapFile] = []
        for start in range(0, len(runs), fan_in):
            group = runs[start : start + fan_in]
            if len(group) == 1:
                next_runs.append(group[0])
                continue
            merged_iter = heapq.merge(
                *(run.scan() for run in group),
                key=lambda row: sort_key(row, key),
            )
            rows: Iterator[tuple] = merged_iter
            if unique:
                rows = _dedup_sorted(rows)
            merged = HeapFile(buffer, rows_per_page=rows_per_page, name="sort-run")
            merged.extend(rows)
            merged.flush()
            for run in group:
                run.truncate()
            next_runs.append(merged)
        runs = next_runs

    result = runs[0]
    result.name = name
    return result


def _dedup_sorted(rows: Iterator[tuple]) -> Iterator[tuple]:
    """Drop consecutive duplicate rows from a sorted stream."""
    previous: tuple | None = None
    for row in rows:
        if row != previous:
            yield row
        previous = row


def sort_cost_model(pages: int, buffer_pages: int) -> float:
    """The paper's analytic sort cost: ``2·P·log_{B-1}(P)`` page I/Os.

    Continuous logarithm, as the paper's section 7.4 arithmetic implies
    (see DESIGN.md, "Cost-model logarithms").  Returns 0 for relations
    of one page or fewer.
    """
    import math

    if pages <= 1:
        return 0.0
    base = max(2, buffer_pages - 1)
    return 2.0 * pages * math.log(pages, base)
