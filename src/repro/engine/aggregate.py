"""Aggregate functions with SQL semantics.

The semantics the paper leans on (sections 5.1 and 5.3):

* ``COUNT`` over an empty group is **0** — which is exactly the value
  Kim's NEST-JA temp table can never produce, hence the COUNT bug;
* ``MAX``/``MIN``/``SUM``/``AVG`` over an empty group are **NULL**
  (the paper assumes ``MAX({}) = NULL``), and a comparison against
  NULL is unknown, so such outer tuples are rejected;
* NULL input values are ignored by every aggregate; ``COUNT(*)``
  counts rows, ``COUNT(c)`` counts non-NULL values of ``c`` — the
  distinction behind the paper's COUNT(*) sub-case (section 5.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ExecutionError
from repro.sql.ast import AGGREGATE_FUNCTIONS


@dataclass(frozen=True)
class AggSpec:
    """A physical aggregate: function over a column position.

    Attributes:
        func: one of COUNT, SUM, AVG, MIN, MAX.
        column: input tuple index, or None for ``COUNT(*)``.
        distinct: aggregate over distinct values only.
    """

    func: str
    column: int | None
    distinct: bool = False

    def __post_init__(self) -> None:
        if self.func not in AGGREGATE_FUNCTIONS:
            raise ExecutionError(f"unknown aggregate {self.func!r}")
        if self.column is None and self.func != "COUNT":
            raise ExecutionError(f"{self.func}(*) is not valid SQL")


def compute_aggregate(func: str, values: list[object], distinct: bool = False) -> object:
    """Apply an aggregate to a list of column values (NULLs included).

    ``values`` holds the column values of one group, NULLs and all;
    for ``COUNT(*)`` pass one arbitrary non-NULL marker per row.
    """
    if func not in AGGREGATE_FUNCTIONS:
        raise ExecutionError(f"unknown aggregate {func!r}")
    present = [value for value in values if value is not None]
    if distinct:
        present = _distinct_preserving_order(present)
    if func == "COUNT":
        return len(present)
    if not present:
        return None
    if func == "MIN":
        return min(present)
    if func == "MAX":
        return max(present)
    if func == "SUM":
        return _numeric_sum(present)
    if func == "AVG":
        return _numeric_sum(present) / len(present)
    raise ExecutionError(f"unknown aggregate {func!r}")


def apply_specs(rows: list[tuple], specs: list[AggSpec]) -> list[object]:
    """Evaluate several physical aggregates over one group of rows."""
    results: list[object] = []
    for spec in specs:
        if spec.column is None:
            values: list[object] = [1] * len(rows)
        else:
            values = [row[spec.column] for row in rows]
        results.append(compute_aggregate(spec.func, values, spec.distinct))
    return results


def _numeric_sum(values: list[object]) -> object:
    total: float | int = 0
    for value in values:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ExecutionError(f"cannot SUM/AVG non-numeric value {value!r}")
        total += value
    return total


def _distinct_preserving_order(values: list[object]) -> list[object]:
    seen: set[object] = set()
    result: list[object] = []
    for value in values:
        if value not in seen:
            seen.add(value)
            result.append(value)
    return result
