"""Compile expressions to columnar batch kernels (the vectorized path).

:mod:`repro.engine.compile` turns an expression into a per-row closure;
this module turns the same expression into a **batch kernel**::

    fn(cols, n, sel) -> list

where ``cols`` is the batch's column list (one sequence per schema
field), ``n`` is the batch's row count, and ``sel`` is either None
(evaluate every row) or a list of row indices to evaluate.  The result
is dense over the selection: ``len(result) == n`` when ``sel`` is None,
``len(sel)`` otherwise.  Kernels never mutate their input columns.

Three-valued logic is carried in the value domain: NULL is ``None`` in
a value column, unknown is ``None`` in a predicate mask — the validity
information rides with the data, and :func:`null_mask` recovers an
explicit validity vector when a kernel needs one (``IS NULL``).

Semantics match the row engine cell for cell:

* AND/OR gate their later operands through **selection vectors** — the
  second conjunct is evaluated only at rows where the first is not
  already False (not True for OR), exactly the set of cells the row
  engine's short-circuit evaluates, so data-dependent errors are
  raised iff the row engine would raise them.  (Within one kernel,
  cells are visited in row order; *across* operands a batch evaluates
  column-at-a-time, so which of several erroneous cells reports first
  can differ from the row engine.  The difftest grammar generates no
  error-raising cases, and both engines agree on whether an error
  occurs.)
* comparisons reproduce :func:`repro.engine.expression.compare_values`
  exactly, including the mixed-type :class:`ExecutionError`;
* NULL propagation, ``<=>``, BETWEEN's eager bounds, and IN's
  membership scan all mirror the row compiler in
  :mod:`repro.engine.compile`.

Anything outside the batch repertoire — subqueries, references into an
enclosing (correlated) scope, aggregates as scalars — raises
:class:`~repro.engine.compile.CannotCompile`; the vectorized operators
fall back **per expression** to the scalar closure path (or the
interpreter), so one stubborn expression never forces a whole plan off
the batch engine.  The ``try_compile_batch_*`` helpers honour the same
global toggle as the row compiler: under
:func:`~repro.engine.compile.interpreted_only` they return None and the
vectorized operators run every expression through the interpreter.
"""

from __future__ import annotations

import operator
from collections.abc import Callable, Sequence

from repro.engine.compile import (
    CannotCompile,
    _memoized,
    compile_enabled,
)
from repro.engine.params import param_value
from repro.engine.schema import RowSchema
from repro.errors import ExecutionError
from repro.sql.ast import (
    And,
    Between,
    BinaryArith,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    IsNull,
    Literal,
    Not,
    Or,
    Parameter,
    UnaryMinus,
)

#: A batch kernel: ``fn(cols, n, sel) -> column`` (dense over ``sel``).
BatchFn = Callable[[list, int, "list[int] | None"], list]

_ARITH_OPS = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
}

_CMP_OPS = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def null_mask(column: Sequence) -> list[bool]:
    """Explicit validity vector for a value column (True = NULL)."""
    return [value is None for value in column]


# Type-domain fast paths.  ``set(map(type, column))`` runs at C speed;
# when both operand columns are homogeneous (all numbers, or all
# strings, optionally with NULLs) the kernel can dispatch to a
# ``map``/comprehension with no per-element type checking, because the
# row engine's mixed-type :class:`ExecutionError` is impossible within
# the domain.  Note ``bool`` is deliberately NOT numeric (it falls to
# the general path, which raises on bool-vs-number like the row
# engine's ``compare_values``).
_NONE = type(None)
_NUM = frozenset((int, float))
_NUM_N = frozenset((int, float, _NONE))
_STR = frozenset((str,))
_STR_N = frozenset((str, _NONE))


# -- helpers -----------------------------------------------------------------


def _out_length(n: int, sel: list[int] | None) -> int:
    return n if sel is None else len(sel)


def _single_schema(chain: tuple[RowSchema, ...]) -> RowSchema:
    """Batch kernels evaluate one row scope; deeper chains are the
    correlated case and take the row-at-a-time path."""
    if len(chain) != 1:
        raise CannotCompile("batch kernels support a single row scope")
    return chain[0]


# -- scalar kernels ----------------------------------------------------------


def compile_batch_scalar(
    expr: Expr, schemas: RowSchema | Sequence[RowSchema]
) -> BatchFn:
    """Compile a scalar to a batch kernel; raises :class:`CannotCompile`."""
    chain = (schemas,) if isinstance(schemas, RowSchema) else tuple(schemas)
    return _scalar(expr, chain)


def _scalar(expr: Expr, chain: tuple[RowSchema, ...]) -> BatchFn:
    schema = _single_schema(chain)
    if isinstance(expr, Literal):
        value = expr.value

        def constant(cols, n, sel):
            return [value] * _out_length(n, sel)

        return constant
    if isinstance(expr, Parameter):
        index, name = expr.index, expr.name

        def parameter(cols, n, sel):
            return [param_value(index, name)] * _out_length(n, sel)

        return parameter
    if isinstance(expr, ColumnRef):
        position = _resolve(expr, schema)

        def column(cols, n, sel):
            source = cols[position]
            if sel is None:
                return source
            return [source[i] for i in sel]

        return column
    if isinstance(expr, UnaryMinus):
        operand = _scalar(expr.operand, chain)

        def negate(cols, n, sel):
            values = operand(cols, n, sel)
            kinds = set(map(type, values))
            if kinds <= _NUM:
                return list(map(operator.neg, values))
            if kinds <= _NUM_N:
                return [None if v is None else -v for v in values]
            out = []
            append = out.append
            for value in values:
                if value is None:
                    append(None)
                elif not _is_number(value):
                    raise ExecutionError(f"expected a number, got {value!r}")
                else:
                    append(-value)
            return out

        return negate
    if isinstance(expr, BinaryArith):
        left = _scalar(expr.left, chain)
        right = _scalar(expr.right, chain)
        if expr.op == "/":

            def divide(cols, n, sel):
                lv = left(cols, n, sel)
                rv = right(cols, n, sel)
                lk = set(map(type, lv))
                rk = set(map(type, rv))
                if lk <= _NUM_N and rk <= _NUM_N:
                    try:
                        if lk <= _NUM and rk <= _NUM:
                            return list(map(operator.truediv, lv, rv))
                        return [
                            None if a is None or b is None else a / b
                            for a, b in zip(lv, rv)
                        ]
                    except ZeroDivisionError:
                        raise ExecutionError("division by zero") from None
                out = []
                append = out.append
                for l, r in zip(lv, rv):
                    if l is None or r is None:
                        append(None)
                        continue
                    if not _is_number(l):
                        raise ExecutionError(f"expected a number, got {l!r}")
                    if not _is_number(r):
                        raise ExecutionError(f"expected a number, got {r!r}")
                    if r == 0:
                        raise ExecutionError("division by zero")
                    append(l / r)
                return out

            return divide
        py_op = _ARITH_OPS.get(expr.op)
        if py_op is None:
            raise CannotCompile(f"unknown arithmetic operator {expr.op!r}")

        def arith(cols, n, sel):
            lv = left(cols, n, sel)
            rv = right(cols, n, sel)
            lk = set(map(type, lv))
            rk = set(map(type, rv))
            if lk <= _NUM and rk <= _NUM:
                return list(map(py_op, lv, rv))
            if lk <= _NUM_N and rk <= _NUM_N:
                return [
                    None if a is None or b is None else py_op(a, b)
                    for a, b in zip(lv, rv)
                ]
            out = []
            append = out.append
            for l, r in zip(lv, rv):
                if l is None or r is None:
                    append(None)
                    continue
                if not _is_number(l):
                    raise ExecutionError(f"expected a number, got {l!r}")
                if not _is_number(r):
                    raise ExecutionError(f"expected a number, got {r!r}")
                append(py_op(l, r))
            return out

        return arith
    # ScalarSubquery, FuncCall, Star, predicates-as-scalars: row path.
    raise CannotCompile(f"cannot batch-compile scalar {type(expr).__name__}")


def _resolve(ref: ColumnRef, schema: RowSchema) -> int:
    from repro.errors import BindError

    try:
        index = schema.try_index_of(ref)
    except BindError as error:
        raise CannotCompile(str(error)) from error
    if index is None:
        raise CannotCompile(f"cannot resolve column {ref.qualified()}")
    return index


# -- predicate kernels -------------------------------------------------------


def compile_batch_predicate(
    expr: Expr, schemas: RowSchema | Sequence[RowSchema]
) -> BatchFn:
    """Compile a predicate to a three-valued mask kernel."""
    chain = (schemas,) if isinstance(schemas, RowSchema) else tuple(schemas)
    return _predicate(expr, chain)


def _compare_kernel(op: str, left: BatchFn, right: BatchFn) -> BatchFn:
    py_op = _CMP_OPS[op]

    def compare(cols, n, sel):
        lv = left(cols, n, sel)
        rv = right(cols, n, sel)
        lk = set(map(type, lv))
        rk = set(map(type, rv))
        if (lk <= _NUM and rk <= _NUM) or (lk <= _STR and rk <= _STR):
            return list(map(py_op, lv, rv))
        if (lk <= _NUM_N and rk <= _NUM_N) or (lk <= _STR_N and rk <= _STR_N):
            return [
                None if a is None or b is None else py_op(a, b)
                for a, b in zip(lv, rv)
            ]
        out = []
        append = out.append
        for l, r in zip(lv, rv):
            if l is None or r is None:
                append(None)
            elif _is_number(l) != _is_number(r):
                raise ExecutionError(
                    f"cannot compare {l!r} with {r!r} (type mismatch)"
                )
            else:
                append(py_op(l, r))
        return out

    return compare


def _predicate(expr: Expr, chain: tuple[RowSchema, ...]) -> BatchFn:
    _single_schema(chain)
    if isinstance(expr, And):
        parts = [_predicate(operand, chain) for operand in expr.operands]
        return _gated_connective(parts, short_circuit=False)
    if isinstance(expr, Or):
        parts = [_predicate(operand, chain) for operand in expr.operands]
        return _gated_connective(parts, short_circuit=True)
    if isinstance(expr, Not):
        operand = _predicate(expr.operand, chain)

        def negate(cols, n, sel):
            return [
                None if value is None else not value
                for value in operand(cols, n, sel)
            ]

        return negate
    if isinstance(expr, Comparison):
        left = _scalar(expr.left, chain)
        right = _scalar(expr.right, chain)
        if expr.null_safe:

            def null_safe(cols, n, sel):
                lv = left(cols, n, sel)
                rv = right(cols, n, sel)
                lk = set(map(type, lv))
                rk = set(map(type, rv))
                if (lk <= _NUM and rk <= _NUM) or (lk <= _STR and rk <= _STR):
                    return list(map(operator.eq, lv, rv))
                if (lk <= _NUM_N and rk <= _NUM_N) or (
                    lk <= _STR_N and rk <= _STR_N
                ):
                    return [
                        (a is None and b is None)
                        if (a is None or b is None)
                        else a == b
                        for a, b in zip(lv, rv)
                    ]
                out = []
                append = out.append
                for l, r in zip(lv, rv):
                    if l is None or r is None:
                        append(l is None and r is None)
                    elif _is_number(l) != _is_number(r):
                        raise ExecutionError(
                            f"cannot compare {l!r} with {r!r} (type mismatch)"
                        )
                    else:
                        append(l == r)
                return out

            return null_safe
        return _compare_kernel(expr.op, left, right)
    if isinstance(expr, IsNull):
        operand = _scalar(expr.operand, chain)
        negated = expr.negated

        def is_null(cols, n, sel):
            mask = null_mask(operand(cols, n, sel))
            if negated:
                return [not value for value in mask]
            return mask

        return is_null
    if isinstance(expr, Between):
        value_fn = _scalar(expr.operand, chain)
        low_fn = _scalar(expr.low, chain)
        high_fn = _scalar(expr.high, chain)
        ge = _compare_kernel(">=", value_fn, low_fn)
        le = _compare_kernel("<=", value_fn, high_fn)
        negated = expr.negated

        def between(cols, n, sel):
            # Both bounds compared eagerly, like the row engine.
            above = ge(cols, n, sel)
            below = le(cols, n, sel)
            out = []
            append = out.append
            for a, b in zip(above, below):
                if a is False or b is False:
                    inside: bool | None = False
                elif a is None or b is None:
                    inside = None
                else:
                    inside = True
                if inside is None:
                    append(None)
                else:
                    append((not inside) if negated else inside)
            return out

        return between
    if isinstance(expr, InList):
        value_fn = _scalar(expr.operand, chain)
        item_fns = [_scalar(item, chain) for item in expr.items]
        negated = expr.negated

        def membership(cols, n, sel):
            values = value_fn(cols, n, sel)
            items = [fn(cols, n, sel) for fn in item_fns]
            out = []
            append = out.append
            for position, value in enumerate(values):
                result: bool | None = False
                for item_column in items:
                    item = item_column[position]
                    if value is None or item is None:
                        matched: bool | None = None
                    elif _is_number(value) != _is_number(item):
                        raise ExecutionError(
                            f"cannot compare {value!r} with {item!r} "
                            "(type mismatch)"
                        )
                    else:
                        matched = value == item
                    if matched is True:
                        result = True
                        break
                    if matched is None:
                        result = None
                if result is None:
                    append(None)
                else:
                    append((not result) if negated else result)
            return out

        return membership
    # InSubquery, Exists, Quantified, bare scalars: row path.
    raise CannotCompile(f"cannot batch-compile predicate {type(expr).__name__}")


def _gated_connective(parts: list[BatchFn], short_circuit: bool) -> BatchFn:
    """AND (``short_circuit=False``) / OR (``True``) over mask kernels.

    Later operands are evaluated only at rows the earlier ones left
    undecided — the batch equivalent of the row engine's short-circuit,
    preserving exactly which cells get evaluated (and hence which
    data-dependent errors can occur).
    """
    first, rest = parts[0], parts[1:]
    # For AND a row is decided once False; for OR once True.
    decided = short_circuit  # True for OR, False for AND

    def connective(cols, n, sel):
        result = list(first(cols, n, sel))
        for part in rest:
            live = [i for i, value in enumerate(result) if value is not decided]
            if not live:
                break
            sub_sel = live if sel is None else [sel[i] for i in live]
            sub = part(cols, n, sub_sel)
            for offset, i in enumerate(live):
                value = sub[offset]
                if value is decided:
                    result[i] = decided
                elif value is None and result[i] is not None:
                    result[i] = None
        return result

    return connective


# -- reference analysis ------------------------------------------------------


def referenced_indexes(
    expr: Expr, schema: RowSchema
) -> frozenset[int] | None:
    """Schema positions a batch-compilable expression reads.

    Returns None when the expression contains anything outside the
    batch repertoire (subquery, unresolvable reference, unsupported
    node) — callers must then draw no sidedness conclusions.  Used by
    the vectorized hash join to push a one-sided residual to the side
    it reads (see :func:`repro.engine.vectorized.vectorized_hash_join`).
    """
    found: set[int] = set()

    def walk(node: Expr) -> bool:
        if isinstance(node, (Literal, Parameter)):
            return True
        if isinstance(node, ColumnRef):
            try:
                found.add(_resolve(node, schema))
            except CannotCompile:
                return False
            return True
        if isinstance(node, (UnaryMinus, Not, IsNull)):
            return walk(node.operand)
        if isinstance(node, (BinaryArith, Comparison)):
            return walk(node.left) and walk(node.right)
        if isinstance(node, (And, Or)):
            return all(walk(operand) for operand in node.operands)
        if isinstance(node, Between):
            return walk(node.operand) and walk(node.low) and walk(node.high)
        if isinstance(node, InList):
            return walk(node.operand) and all(
                walk(item) for item in node.items
            )
        return False

    return frozenset(found) if walk(expr) else None


# -- fallible front door -----------------------------------------------------


def try_compile_batch_scalar(
    expr: Expr, schemas: RowSchema | Sequence[RowSchema]
) -> BatchFn | None:
    """Batch scalar kernel, or None (fall back to the row path)."""
    if not compile_enabled():
        return None
    return _memoized("vs", _scalar, expr, schemas)


def try_compile_batch_predicate(
    expr: Expr, schemas: RowSchema | Sequence[RowSchema]
) -> BatchFn | None:
    """Batch predicate kernel, or None (fall back to the row path)."""
    if not compile_enabled():
        return None
    return _memoized("vp", _predicate, expr, schemas)
