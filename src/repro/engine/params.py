"""Runtime binding of SQL bind-parameters (``?`` / ``:name``).

A :class:`~repro.sql.ast.Parameter` carries no value at plan time; the
value arrives per execution.  Binding goes through a
:class:`contextvars.ContextVar` rather than through closure arguments so
that

* compiled closures keep their ``fn(row, outer)`` signature (the hot
  loops in :mod:`repro.optimizer.executor` never know about parameters),
* every thread (and every task within a thread) sees its own binding —
  N workers can execute the *same* cached plan concurrently with
  different parameter vectors without interfering.

Usage::

    with bound_params((42, 'ABC')):
        executor.execute(plan)

Reading a parameter slot outside a ``bound_params`` block, or past the
end of the bound vector, raises :class:`~repro.errors.BindError`.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from contextlib import contextmanager
from contextvars import ContextVar

from repro.errors import BindError

#: The active parameter vector for the current thread/context.
_ACTIVE_PARAMS: ContextVar[tuple[object, ...] | None] = ContextVar(
    "repro_active_params", default=None
)


@contextmanager
def bound_params(values: Sequence[object]) -> Iterator[None]:
    """Bind a parameter vector for the duration of the block."""
    token = _ACTIVE_PARAMS.set(tuple(values))
    try:
        yield
    finally:
        _ACTIVE_PARAMS.reset(token)


def current_params() -> tuple[object, ...] | None:
    """The bound vector, or None outside any ``bound_params`` block."""
    return _ACTIVE_PARAMS.get()


def param_value(index: int, name: str | None = None) -> object:
    """Look up one parameter slot in the active binding."""
    values = _ACTIVE_PARAMS.get()
    label = f":{name}" if name else f"parameter {index + 1}"
    if values is None:
        raise BindError(f"no parameters bound (needed {label})")
    if index >= len(values):
        raise BindError(
            f"statement needs at least {index + 1} parameter(s), "
            f"got {len(values)} (missing {label})"
        )
    return values[index]
