"""Relations: schema-tagged, re-iterable row collections.

A :class:`Relation` is either *heap-backed* (pages on the simulated
disk, read through the buffer pool — every temp table the transforms
build) or *in-memory* (small derived lists, e.g. a cached type-N inner
result before System R materializes it).  Physical operators consume
and produce Relations.

Batch access.  The vectorized engine consumes relations through
:meth:`Relation.iter_batches`, which yields **page-sized** row batches
for heap-backed relations: each batch is exactly one page's tuples and
costs exactly one page read through the buffer pool, so batch execution
charges the same page I/O as a row-at-a-time scan — the paper's cost
unit is preserved exactly, not approximated.  (Coalescing several
pages per batch would amortize kernel dispatch, but reading ahead
perturbs the LRU state under eviction pressure and the re-read counts
drift from the row engine's — tried and rejected; page-sized batches
keep the I/O schedule bit-identical.)  In-memory relations are chunked
into fixed-size batches (they cost no I/O either way).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.engine.schema import RowSchema
from repro.storage.buffer import BufferPool
from repro.storage.heap import HeapFile

__all__ = [
    "ROWID_COLUMN",
    "Relation",
    "RowidRelation",
    "temp_rows_per_page",
]

#: Nominal page size in bytes for temp relations (matches catalog sizing).
_TEMP_PAGE_BYTES = 1024
_TEMP_COLUMN_BYTES = 8

#: Batch size for in-memory relations (no page geometry to follow).
_MEMORY_BATCH_ROWS = 256


def temp_rows_per_page(num_columns: int) -> int:
    """Default tuples-per-page for a temp relation of given width.

    Matches the catalog's sizing rule (``page_bytes // row_width``).  A
    zero-column schema is legal — an EXISTS-style probe projects no
    columns — but its tuples still occupy a slot each, so it is sized
    explicitly like a one-column temp rather than falling through an
    implicit ``max``.
    """
    if num_columns < 0:
        raise ValueError(f"negative column count: {num_columns}")
    if num_columns == 0:
        # Degenerate width: a row of zero columns still occupies one
        # tuple slot; size it exactly like a one-column temp.
        num_columns = 1
    return max(1, _TEMP_PAGE_BYTES // (_TEMP_COLUMN_BYTES * num_columns))


class Relation:
    """A named, schema-tagged collection of tuples."""

    def __init__(
        self,
        schema: RowSchema,
        heap: HeapFile | None = None,
        rows: list[tuple] | None = None,
        name: str | None = None,
    ) -> None:
        if (heap is None) == (rows is None):
            raise ValueError("exactly one of heap/rows must be given")
        self.schema = schema
        self.heap = heap
        self._rows = rows
        self.name = name or (heap.name if heap is not None else None)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_rows(
        cls, schema: RowSchema, rows: Iterable[tuple], name: str | None = None
    ) -> "Relation":
        """An in-memory relation (no page I/O when scanned)."""
        return cls(schema, rows=list(rows), name=name)

    @classmethod
    def materialize(
        cls,
        schema: RowSchema,
        rows: Iterable[tuple],
        buffer: BufferPool,
        rows_per_page: int | None = None,
        name: str | None = None,
    ) -> "Relation":
        """Write rows into a fresh heap file (charges page writes).

        This is the paper's "create a temporary relation" step: building
        a P-page temp table costs P page writes once flushed.
        """
        capacity = rows_per_page or temp_rows_per_page(len(schema))
        heap = HeapFile(buffer, rows_per_page=capacity, name=name)
        heap.extend(rows)
        heap.flush()
        return cls(schema, heap=heap, name=name)

    @classmethod
    def materialize_batches(
        cls,
        schema: RowSchema,
        batches: Iterable[list[tuple]],
        buffer: BufferPool,
        rows_per_page: int | None = None,
        name: str | None = None,
    ) -> "Relation":
        """Materialize from row batches (the vectorized engine's path).

        Produces exactly the pages :meth:`materialize` would for the
        same row stream — same capacity, same page count, same flush
        writes — just with one buffer interaction per filled page
        instead of one per row.
        """
        capacity = rows_per_page or temp_rows_per_page(len(schema))
        heap = HeapFile(buffer, rows_per_page=capacity, name=name)
        for batch in batches:
            heap.append_rows(batch)
        heap.flush()
        return cls(schema, heap=heap, name=name)

    # -- access --------------------------------------------------------------

    def __iter__(self) -> Iterator[tuple]:
        if self.heap is not None:
            return self.heap.scan()
        return iter(self._rows)

    def iter_batches(self) -> Iterator[list[tuple]]:
        """Yield rows in batches; heap relations batch page by page.

        One batch per heap page means batch execution reads exactly the
        pages a row scan reads, in the same order — page-I/O accounting
        is identical (see the module docstring for why pages are not
        coalesced into larger batches).
        """
        if self.heap is not None:
            yield from self.heap.scan_pages()
            return
        rows = self._rows
        for start in range(0, len(rows), _MEMORY_BATCH_ROWS):
            yield rows[start : start + _MEMORY_BATCH_ROWS]

    def partition_count(self, partitions: int) -> int:
        """Clamp a requested partition count to something useful.

        At most one partition per heap page (or per memory batch): a
        partition can't be finer than the unit of I/O, and empty tail
        shards would only add dispatch overhead.  Always at least 1.
        """
        if self.heap is not None:
            units = self.heap.num_pages
        else:
            units = -(-len(self._rows) // _MEMORY_BATCH_ROWS)
        return max(1, min(partitions, max(units, 1)))

    def iter_partition_batches(
        self, index: int, partitions: int, scheme: str = "range"
    ) -> Iterator[list[tuple]]:
        """Yield the batches belonging to shard ``index`` of ``partitions``.

        The shards are disjoint and their union is exactly the batch
        stream :meth:`iter_batches` yields: for heap relations each
        shard reads its own pages through the buffer pool (so the page
        reads across all shards sum to the serial scan's reads), and
        under the default ``"range"`` scheme concatenating shards
        ``0..partitions-1`` reproduces the serial batch order — which
        is what lets a scatter-gather exchange preserve row order.
        Shards may be empty.
        """
        if self.heap is not None:
            shard = self.heap.partition_pages(partitions, scheme)[index]
            for _page_index, rows in self.heap.scan_pages_partition(shard):
                yield rows
            return
        rows = self._rows
        starts = list(range(0, len(rows), _MEMORY_BATCH_ROWS))
        if scheme == "range":
            base, extra = divmod(len(starts), partitions)
            lo = index * base + min(index, extra)
            hi = lo + base + (1 if index < extra else 0)
            mine = starts[lo:hi]
        elif scheme == "hash":
            mine = starts[index::partitions]
        else:
            raise ValueError(f"unknown partition scheme {scheme!r}")
        for start in mine:
            yield rows[start : start + _MEMORY_BATCH_ROWS]

    def to_list(self) -> list[tuple]:
        return list(self)

    @property
    def is_heap_backed(self) -> bool:
        return self.heap is not None

    @property
    def num_rows(self) -> int:
        if self.heap is not None:
            return self.heap.num_rows
        return len(self._rows)

    @property
    def num_pages(self) -> int:
        """Page count (``Pk``); in-memory relations occupy zero pages."""
        if self.heap is not None:
            return self.heap.num_pages
        return 0

    def drop(self) -> None:
        """Free the backing pages, if any."""
        if self.heap is not None:
            self.heap.truncate()

    def __repr__(self) -> str:
        backing = "heap" if self.is_heap_backed else "memory"
        return (
            f"Relation({self.name or '?'}, {backing}, rows={self.num_rows},"
            f" pages={self.num_pages})"
        )


#: Name of the implicit row-identifier column (see :class:`RowidRelation`).
ROWID_COLUMN = "#RID"


class RowidRelation(Relation):
    """A view of a relation with an appended row-identifier column.

    Scanning a heap is deterministic, so enumerating the scan gives
    every physical tuple a stable identity — even when two tuples are
    value-identical.  The pipeline's ``dedupe_outer`` fix-up (see
    DESIGN.md) uses this to restore nested-iteration multiplicities
    after a type-J NEST-N-J merge: DISTINCT over (rowid, output)
    collapses the join's fan-out back to one row per outer tuple.

    The view owns no storage: ``heap`` and the in-memory row list
    delegate to the base relation, so backing-state checks
    (``is_heap_backed``, ``heap is not None``, ``num_rows``,
    ``num_pages``, drop decisions) all agree with the base instead of
    splitting brains between "the view has no heap" and "the view is
    heap-backed".  Note the delegated heap stores the *base* tuples —
    the rowid column exists only on rows produced by iterating the
    view itself.
    """

    def __init__(self, base: Relation, binding: str) -> None:
        # Deliberately does not call Relation.__init__: this is a view
        # whose backing state is the base's (see the class docstring).
        self._base = base
        self.schema = base.schema + RowSchema([(binding, ROWID_COLUMN)])
        self.name = base.name

    @property
    def heap(self):  # type: ignore[override]
        return self._base.heap

    @property
    def _rows(self):  # type: ignore[override]
        return self._base._rows

    def __iter__(self):
        return (row + (rid,) for rid, row in enumerate(self._base))

    def iter_batches(self) -> Iterator[list[tuple]]:
        rid = 0
        for batch in self._base.iter_batches():
            out = []
            for row in batch:
                out.append(row + (rid,))
                rid += 1
            yield out

    def iter_partition_batches(
        self, index: int, partitions: int, scheme: str = "range"
    ) -> Iterator[list[tuple]]:
        """Shard the view while keeping rowids identical to a serial scan.

        Rowids are scan positions, so a shard must know each batch's
        global offset without scanning the shards before it.  For heap
        bases that offset is ``page_index * rows_per_page`` — exact
        because the append path fills every page but the last before
        allocating a new one (see :meth:`HeapFile.rows_before`).  For
        in-memory bases batches start at fixed multiples of the batch
        size.  Either way the rids a shard assigns are exactly the rids
        the serial :meth:`iter_batches` would assign those rows.
        """
        heap = self.heap
        if heap is not None:
            shard = heap.partition_pages(partitions, scheme)[index]
            for page_index, rows in heap.scan_pages_partition(shard):
                rid = heap.rows_before(page_index)
                yield [row + (rid + slot,) for slot, row in enumerate(rows)]
            return
        rows = self._rows
        starts = list(range(0, len(rows), _MEMORY_BATCH_ROWS))
        if scheme == "range":
            base, extra = divmod(len(starts), partitions)
            lo = index * base + min(index, extra)
            hi = lo + base + (1 if index < extra else 0)
            mine = starts[lo:hi]
        elif scheme == "hash":
            mine = starts[index::partitions]
        else:
            raise ValueError(f"unknown partition scheme {scheme!r}")
        for start in mine:
            batch = rows[start : start + _MEMORY_BATCH_ROWS]
            yield [row + (start + slot,) for slot, row in enumerate(batch)]

    def drop(self) -> None:
        self._base.drop()
