"""Relations: schema-tagged, re-iterable row collections.

A :class:`Relation` is either *heap-backed* (pages on the simulated
disk, read through the buffer pool — every temp table the transforms
build) or *in-memory* (small derived lists, e.g. a cached type-N inner
result before System R materializes it).  Physical operators consume
and produce Relations.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.engine.schema import RowSchema
from repro.storage.buffer import BufferPool
from repro.storage.heap import HeapFile

__all__ = [
    "ROWID_COLUMN",
    "Relation",
    "RowidRelation",
    "temp_rows_per_page",
]

#: Nominal page size in bytes for temp relations (matches catalog sizing).
_TEMP_PAGE_BYTES = 1024
_TEMP_COLUMN_BYTES = 8


def temp_rows_per_page(num_columns: int) -> int:
    """Default tuples-per-page for a temp relation of given width."""
    return max(1, _TEMP_PAGE_BYTES // (_TEMP_COLUMN_BYTES * max(1, num_columns)))


class Relation:
    """A named, schema-tagged collection of tuples."""

    def __init__(
        self,
        schema: RowSchema,
        heap: HeapFile | None = None,
        rows: list[tuple] | None = None,
        name: str | None = None,
    ) -> None:
        if (heap is None) == (rows is None):
            raise ValueError("exactly one of heap/rows must be given")
        self.schema = schema
        self.heap = heap
        self._rows = rows
        self.name = name or (heap.name if heap is not None else None)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_rows(
        cls, schema: RowSchema, rows: Iterable[tuple], name: str | None = None
    ) -> "Relation":
        """An in-memory relation (no page I/O when scanned)."""
        return cls(schema, rows=list(rows), name=name)

    @classmethod
    def materialize(
        cls,
        schema: RowSchema,
        rows: Iterable[tuple],
        buffer: BufferPool,
        rows_per_page: int | None = None,
        name: str | None = None,
    ) -> "Relation":
        """Write rows into a fresh heap file (charges page writes).

        This is the paper's "create a temporary relation" step: building
        a P-page temp table costs P page writes once flushed.
        """
        capacity = rows_per_page or temp_rows_per_page(len(schema))
        heap = HeapFile(buffer, rows_per_page=capacity, name=name)
        heap.extend(rows)
        heap.flush()
        return cls(schema, heap=heap, name=name)

    # -- access --------------------------------------------------------------

    def __iter__(self) -> Iterator[tuple]:
        if self.heap is not None:
            return self.heap.scan()
        return iter(self._rows)

    def to_list(self) -> list[tuple]:
        return list(self)

    @property
    def is_heap_backed(self) -> bool:
        return self.heap is not None

    @property
    def num_rows(self) -> int:
        if self.heap is not None:
            return self.heap.num_rows
        return len(self._rows)

    @property
    def num_pages(self) -> int:
        """Page count (``Pk``); in-memory relations occupy zero pages."""
        if self.heap is not None:
            return self.heap.num_pages
        return 0

    def drop(self) -> None:
        """Free the backing pages, if any."""
        if self.heap is not None:
            self.heap.truncate()

    def __repr__(self) -> str:
        backing = "heap" if self.is_heap_backed else "memory"
        return (
            f"Relation({self.name or '?'}, {backing}, rows={self.num_rows},"
            f" pages={self.num_pages})"
        )


#: Name of the implicit row-identifier column (see :class:`RowidRelation`).
ROWID_COLUMN = "#RID"


class RowidRelation(Relation):
    """A view of a relation with an appended row-identifier column.

    Scanning a heap is deterministic, so enumerating the scan gives
    every physical tuple a stable identity — even when two tuples are
    value-identical.  The pipeline's ``dedupe_outer`` fix-up (see
    DESIGN.md) uses this to restore nested-iteration multiplicities
    after a type-J NEST-N-J merge: DISTINCT over (rowid, output)
    collapses the join's fan-out back to one row per outer tuple.
    """

    def __init__(self, base: Relation, binding: str) -> None:
        # Deliberately does not call Relation.__init__: this is a view.
        self._base = base
        self.schema = base.schema + RowSchema([(binding, ROWID_COLUMN)])
        self.heap = None
        self._rows = None
        self.name = base.name

    def __iter__(self):
        return (row + (rid,) for rid, row in enumerate(self._base))

    @property
    def is_heap_backed(self) -> bool:
        return self._base.is_heap_backed

    @property
    def num_rows(self) -> int:
        return self._base.num_rows

    @property
    def num_pages(self) -> int:
        return self._base.num_pages

    def drop(self) -> None:
        self._base.drop()
