"""Multi-query-optimization benchmark: sharing + batched bindings.

Two legs, both timed end-to-end and both correctness-checked against
SQLite before any number is reported:

* **shared replay** — a seeded mixed workload (many outer query shapes
  over few inner temp chains, interleaved with committed inserts that
  flush every memo) replayed through two identically-built instances:
  cross-query sharing ON vs OFF.  With sharing off every cached plan
  rebuilds its own chain after each flush; with sharing on the first
  plan to need a chain builds it and the rest lease it.  The gate
  demands >= 1.3x throughput and >= 30% of temp installs served from
  the registry.

* **batched executemany** — one type-JA prepared statement executed
  over N distinct parameter vectors, per-vector loop vs the batched
  binding-relation plan (:mod:`repro.serve.batch`).  Distinct values
  defeat every memo, so the loop rebuilds the temp chain N times while
  the batched plan builds once; the gate demands >= 2x at N = 256.

Results land in ``BENCH_PR10.json``:

    PYTHONPATH=src python benchmarks/bench_mqo.py

``--smoke`` runs a reduced replay (the batch leg keeps N = 256 — the
gate is defined there), writes a ``.smoke.json`` sidecar, and exits
non-zero unless every gate holds; CI runs it as the ``mqo-smoke`` job.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from random import Random

from repro.core.pipeline import Engine
from repro.difftest.normalize import normalize_rows
from repro.difftest.oracle import SQLiteOracle
from repro.serve.cache import PlanCache
from repro.workloads.generators import PartsSupplySpec, build_parts_supply

REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_PR10.json"

#: Gates (CI `mqo-smoke`): shared replay speedup, batched speedup,
#: minimum fraction of temp installs served from the registry.
MIN_REPLAY_SPEEDUP = 1.3
MIN_BATCH_SPEEDUP = 2.0
MIN_SHARED_FRACTION = 0.30

#: Inner-chain cutoffs: 3 chains x 3 outer shapes = 9 plans that the
#: sharing-off instance must each rebuild after every memo flush.
CUTOFFS = ("1978-06-01", "1982-01-01", "1986-06-01")

REPLAY_SPEC = PartsSupplySpec(
    num_parts=100, num_supply=1200, rows_per_page=10, buffer_pages=64, seed=11
)
#: Writes are interleaved this often; each one flushes every memo and
#: every registry entry (data events purge eagerly).
WRITE_EVERY = 25

BATCH_SPEC = PartsSupplySpec(
    num_parts=50, num_supply=300, rows_per_page=10, buffer_pages=32, seed=23
)
BATCH_QUERY = (
    "SELECT PNUM FROM PARTS WHERE QOH = "
    "(SELECT COUNT(SHIPDATE) FROM SUPPLY "
    "WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < ?)"
)


def replay_pool() -> list[str]:
    """Nine type-JA shapes (3 outer blocks x 3 chains) plus a flat join."""
    pool: list[str] = []
    for cutoff in CUTOFFS:
        inner = (
            "(SELECT COUNT(SHIPDATE) FROM SUPPLY "
            f"WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < '{cutoff}')"
        )
        pool.extend(
            [
                f"SELECT PNUM FROM PARTS WHERE QOH = {inner}",
                f"SELECT PNUM, QOH FROM PARTS WHERE QOH >= {inner}",
                f"SELECT QOH FROM PARTS WHERE QOH < {inner}",
            ]
        )
    pool.append(
        "SELECT PARTS.PNUM FROM PARTS, SUPPLY "
        "WHERE PARTS.PNUM = SUPPLY.PNUM AND SUPPLY.QUAN > 2"
    )
    return pool


def _replay_events(queries: int, seed: int) -> list[tuple[str, object]]:
    """The deterministic event sequence both instances replay."""
    rng = Random(seed)
    pool = replay_pool()
    events: list[tuple[str, object]] = []
    for step in range(queries):
        if step % WRITE_EVERY == WRITE_EVERY - 1:
            # A dangling-PNUM shipment: flushes memos/registry without
            # perturbing any pool answer (no PARTS row matches).
            events.append(
                ("write", (9000 + step, rng.randrange(0, 6), "2050-01-01"))
            )
        else:
            events.append(("query", rng.choice(pool)))
    return events


def _replay_engine(sharing: bool):
    catalog = build_parts_supply(REPLAY_SPEC)
    cache = PlanCache(sharing=sharing)
    cache.attach(catalog)
    return catalog, Engine(catalog, plan_cache=cache)


def _run_replay(
    events: list[tuple[str, object]], sharing: bool
) -> tuple[float, dict, list]:
    """Replay the events; (elapsed seconds, temp-install tally, engine)."""
    catalog, engine = _replay_engine(sharing)
    tally = {"shared": 0, "built": 0}
    start = time.perf_counter()
    for kind, payload in events:
        if kind == "write":
            catalog.insert("SUPPLY", [payload])
            continue
        report = engine.run_cached(payload, method="transform")
        for step in report.steps:
            if step.startswith("shared "):
                tally["shared"] += 1
            elif step.startswith(("built ", "reused ")):
                tally["built"] += 1
    elapsed = time.perf_counter() - start
    return elapsed, tally, [catalog, engine]


def measure_replay(queries: int, seed: int = 0) -> tuple[dict, list[str]]:
    """The shared-replay leg: sharing ON vs OFF over one event sequence."""
    events = _replay_events(queries, seed)
    query_count = sum(1 for kind, _ in events if kind == "query")
    write_count = len(events) - query_count

    shared_s, shared_tally, (shared_catalog, shared_engine) = _run_replay(
        events, sharing=True
    )
    unshared_s, _, (plain_catalog, plain_engine) = _run_replay(
        events, sharing=False
    )

    failures: list[str] = []
    # End-state correctness: every pool shape, sharing vs no-sharing vs
    # SQLite over the final (post-write) contents.
    with SQLiteOracle(shared_catalog) as oracle:
        for sql in replay_pool():
            ours = normalize_rows(
                shared_engine.run_cached(sql, method="transform").result.rows
            )
            plain = normalize_rows(
                plain_engine.run_cached(sql, method="transform").result.rows
            )
            if ours != normalize_rows(oracle.run(sql)):
                failures.append(f"replay: sharing-on diverged from SQLite: {sql}")
            if ours != plain:
                failures.append(
                    f"replay: sharing-on diverged from sharing-off: {sql}"
                )

    installs = shared_tally["shared"] + shared_tally["built"]
    fraction = shared_tally["shared"] / installs if installs else 0.0
    stats = shared_engine.plan_cache.stats()
    record = {
        "workload": "mqo-shared-replay",
        "op": "replay",
        "queries": query_count,
        "writes": write_count,
        "shared_fraction": round(fraction, 3),
        "cross_query_hits": stats.shared_hits,
        "shared_materializations": stats.shared_materializations,
        "shared_purges": stats.shared_purges,
        "shared_qps": round(query_count / shared_s, 1),
        "unshared_qps": round(query_count / unshared_s, 1),
        "speedup": round(unshared_s / shared_s, 2),
    }
    return record, failures


def measure_batched(batch: int, seed: int = 0) -> tuple[dict, list[str]]:
    """The batched-bindings leg: executemany vs the per-vector loop."""
    catalog = build_parts_supply(BATCH_SPEC)
    cache = PlanCache()
    cache.attach(catalog)
    engine = Engine(catalog, plan_cache=cache)
    statement = engine.prepare(BATCH_QUERY)
    vectors = [
        (f"19{70 + i % 20}-{1 + (i // 20) % 12:02d}-{10 + i // 240:02d}",)
        for i in range(batch)
    ]
    assert len(set(vectors)) == batch  # distinct values defeat every memo

    failures: list[str] = []
    batch_report = statement.execute_batch(vectors)
    if batch_report.strategy != "batched":
        failures.append("batched leg fell back to the loop strategy")
    looped = [statement.execute(vector) for vector in vectors]
    for vector, one, many in zip(vectors, looped, batch_report.reports):
        if normalize_rows(one.result.rows) != normalize_rows(many.result.rows):
            failures.append(f"batched != looped for vector {vector}")
            break
    with SQLiteOracle(catalog) as oracle:
        probe = vectors[7]
        oracle_rows = oracle.run(BATCH_QUERY.replace("?", f"'{probe[0]}'"))
        if normalize_rows(batch_report.reports[7].result.rows) != (
            normalize_rows(oracle_rows)
        ):
            failures.append(f"batched diverged from SQLite for {probe}")

    start = time.perf_counter()
    statement.executemany(vectors)
    batched_s = time.perf_counter() - start

    start = time.perf_counter()
    for vector in vectors:
        statement.execute(vector)
    loop_s = time.perf_counter() - start

    record = {
        "workload": "mqo-batched-executemany",
        "op": "executemany",
        "batch": batch,
        "batched_qps": round(batch / batched_s, 1),
        "loop_qps": round(batch / loop_s, 1),
        "speedup": round(loop_s / batched_s, 2),
    }
    return record, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/bench_mqo.py",
        description="Multi-query optimization: shared replay throughput "
        "and batched executemany vs the per-vector loop.",
    )
    parser.add_argument(
        "--queries", type=int, default=1000,
        help="replay events for the sharing leg (default 1000)",
    )
    parser.add_argument(
        "--batch", type=int, default=256,
        help="parameter vectors for the batched leg (default 256)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="workload seed (default 0)"
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=DEFAULT_OUTPUT,
        help=f"result file (default {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced replay, .smoke.json sidecar; fail unless the "
        f"shared replay is >= {MIN_REPLAY_SPEEDUP}x sharing-off with "
        f">= {100 * MIN_SHARED_FRACTION:.0f}% shared installs and "
        f"batched executemany is >= {MIN_BATCH_SPEEDUP}x the loop",
    )
    args = parser.parse_args(argv)

    queries = 300 if args.smoke else args.queries
    replay_record, failures = measure_replay(queries, seed=args.seed)
    batch_record, batch_failures = measure_batched(args.batch, seed=args.seed)
    failures.extend(batch_failures)
    records = [replay_record, batch_record]

    if replay_record["speedup"] < MIN_REPLAY_SPEEDUP:
        failures.append(
            f"shared replay speedup {replay_record['speedup']}x "
            f"< {MIN_REPLAY_SPEEDUP}x"
        )
    if replay_record["shared_fraction"] < MIN_SHARED_FRACTION:
        failures.append(
            f"shared fraction {replay_record['shared_fraction']} "
            f"< {MIN_SHARED_FRACTION}"
        )
    if batch_record["speedup"] < MIN_BATCH_SPEEDUP:
        failures.append(
            f"batched executemany speedup {batch_record['speedup']}x "
            f"< {MIN_BATCH_SPEEDUP}x"
        )

    output = (
        args.output.with_suffix(".smoke.json") if args.smoke else args.output
    )
    output.write_text(json.dumps(records, indent=2) + "\n")
    for record in records:
        print(json.dumps(record))
    print(f"wrote {output}")
    for line in failures:
        print(f"FAIL {line}", file=sys.stderr)
    print("mqo " + ("FAILED" if failures else "passed"))
    return 1 if failures else 0
