"""Plain-text tables in the style of the paper's Figure 1."""

from __future__ import annotations


def format_table(headers: list[str], rows: list[list[object]], title: str = "") -> str:
    """Render an aligned plain-text table."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def savings_percent(baseline: float, improved: float) -> float:
    """Cost saving of ``improved`` relative to ``baseline``, in percent."""
    if baseline <= 0:
        return 0.0
    return 100.0 * (1.0 - improved / baseline)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:,.1f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)
