"""Benchmark harness: measured runs, paper-vs-measured reporting."""

from repro.bench.harness import MeasuredRun, compare_methods, measure
from repro.bench.reporting import format_table, savings_percent

__all__ = [
    "MeasuredRun",
    "compare_methods",
    "format_table",
    "measure",
    "savings_percent",
]
