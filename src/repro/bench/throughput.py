"""Serving-layer throughput benchmark: cold vs cached vs prepared.

Times the Figure-1 workloads through three execution paths:

* **cold** — the full pipeline per call (parse → qualify → rewrite →
  NEST-G → verify → lint → build temps → final query), what a naive
  server would do for every request;
* **cached** — ``Engine.run_cached``: normalize, hit the plan cache,
  replay the already-verified plan (materialized temps memoized per
  parameter sub-vector);
* **prepared** — ``PreparedStatement.execute``: no per-call parsing or
  normalization at all, the vector binds straight into the compiled
  plan.

Latency legs run single-threaded with zero simulated I/O delay and
report QPS plus p50/p99 per-call latency.  The thread-scaling legs run
the cached path from 1, 4, and 8 worker threads over a larger instance
with a per-page-read delay (the sleep happens outside all locks, so
concurrent faults overlap — an I/O-bound workload): QPS should rise
with the thread count because the lock-striped buffer pool and the
re-entrant catalog read lock let replays proceed concurrently.

Every path's rows are checked identical to the cold path's, and the
cold rows are checked against the SQLite oracle, so the benchmark can
never time a wrong answer.  Results land in ``BENCH_PR5.json``:

    PYTHONPATH=src python benchmarks/bench_throughput.py

``--smoke`` runs a reduced matrix and exits non-zero unless the cached
path is at least 1.5x faster than cold on every workload; CI runs it
as a perf-regression gate.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys
import threading
import time
from collections import Counter

from repro.core.pipeline import Engine
from repro.difftest.normalize import normalize_rows
from repro.difftest.oracle import SQLiteOracle
from repro.serve.cache import PlanCache
from repro.workloads.generators import (
    CUTOFF,
    GENERATED_J_QUERY,
    GENERATED_JA_QUERY,
    GENERATED_N_QUERY,
    PartsSupplySpec,
    build_parts_supply,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_PR5.json"

#: The Figure-1 workloads.  ``param_query``/``params`` is the prepared
#: variant: the predicate literal becomes an explicit bind marker.
WORKLOADS = [
    {
        "name": "figure1-type-n",
        "query": GENERATED_N_QUERY,
        "param_query": (
            "SELECT PNUM FROM PARTS WHERE PNUM IN "
            "(SELECT PNUM FROM SUPPLY WHERE SHIPDATE < ?)"
        ),
        "params": (CUTOFF,),
        "dedupe_inner": True,
    },
    {
        "name": "figure1-type-j",
        "query": GENERATED_J_QUERY,
        "param_query": GENERATED_J_QUERY,
        "params": (),
        "dedupe_inner": False,
        # NEST-N-J at the root of a type-J query can fan out outer
        # rows (the Lemma-1 caveat); the rowid fix-up restores
        # nested-iteration multiplicities, keeping every path's rows
        # comparable to the SQLite oracle.
        "dedupe_outer": True,
        # The transformed type-J plan is a flat join with no setup
        # temps, so a cache hit only skips planning/verification —
        # execution dominates and the speedup is modest.  The gate
        # just requires the cached path not to be slower.
        "min_speedup": 1.0,
    },
    {
        "name": "figure1-type-ja",
        "query": GENERATED_JA_QUERY,
        "param_query": (
            "SELECT PNUM FROM PARTS WHERE QOH = "
            "(SELECT COUNT(SHIPDATE) FROM SUPPLY "
            "WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < ?)"
        ),
        "params": (CUTOFF,),
        "dedupe_inner": False,
    },
]

#: Instance for the single-thread latency legs (no simulated I/O).
LATENCY_SPEC = PartsSupplySpec(
    num_parts=50, num_supply=200, rows_per_page=10, buffer_pages=16, seed=13
)

#: Larger, I/O-bound instance for the thread-scaling legs: the buffer
#: is far smaller than the working set, so every replay keeps faulting
#: pages whose simulated read delay overlaps across threads.
SCALING_SPEC = PartsSupplySpec(
    num_parts=150, num_supply=1200, rows_per_page=10, buffer_pages=24, seed=17
)
SCALING_IO_DELAY = 0.0003
THREAD_COUNTS = (1, 4, 8)

#: Output for the mixed read/write legs (``--mix R/W``); ``--smoke``
#: writes a ``.smoke.json`` sidecar instead so CI can upload both.
MIXED_OUTPUT = REPO_ROOT / "BENCH_PR8.json"


def _percentile(latencies: list[float], fraction: float) -> float:
    ordered = sorted(latencies)
    index = min(len(ordered) - 1, round(fraction * (len(ordered) - 1)))
    return ordered[index]


def _timed(call, iters: int) -> dict:
    """Run ``call`` ``iters`` times; QPS + p50/p99 latency in seconds."""
    latencies = []
    for _ in range(iters):
        start = time.perf_counter()
        call()
        latencies.append(time.perf_counter() - start)
    return {
        "iters": iters,
        "qps": round(iters / sum(latencies), 1),
        "p50_ms": round(_percentile(latencies, 0.50) * 1000, 3),
        "p99_ms": round(_percentile(latencies, 0.99) * 1000, 3),
        "mean_ms": round(statistics.mean(latencies) * 1000, 3),
    }


def _check_rows(name: str, leg: str, rows, reference) -> None:
    if Counter(rows) != Counter(reference):
        raise AssertionError(
            f"{name}: {leg} produced different rows than the cold path"
        )


def measure_latency(workload: dict, iters: int) -> list[dict]:
    """Single-thread QPS/latency for cold, cached, and prepared."""
    catalog = build_parts_supply(LATENCY_SPEC)
    cache = PlanCache()
    cache.attach(catalog)
    engine = Engine(
        catalog,
        plan_cache=cache,
        dedupe_inner=workload["dedupe_inner"],
        dedupe_outer=workload.get("dedupe_outer", False),
    )
    name = workload["name"]

    cold_report = engine.run(workload["query"], method="transform")
    reference = cold_report.result.rows
    with SQLiteOracle(catalog) as oracle:
        oracle_rows = oracle.run(workload["query"])
    if normalize_rows(reference) != normalize_rows(oracle_rows):
        raise AssertionError(f"{name}: cold path disagrees with SQLite")

    records = []

    cold = _timed(
        lambda: engine.run(workload["query"], method="transform"), iters
    )
    records.append({"workload": name, "op": "cold", "threads": 1, **cold})

    cached_rows = engine.run_cached(
        workload["query"], method="transform"
    ).result.rows
    _check_rows(name, "cached", cached_rows, reference)
    cached = _timed(
        lambda: engine.run_cached(workload["query"], method="transform"),
        iters,
    )
    records.append({"workload": name, "op": "cached", "threads": 1, **cached})

    statement = engine.prepare(workload["param_query"], method="transform")
    prepared_rows = statement.execute(workload["params"]).result.rows
    _check_rows(name, "prepared", prepared_rows, reference)
    prepared = _timed(lambda: statement.execute(workload["params"]), iters)
    records.append(
        {"workload": name, "op": "prepared", "threads": 1, **prepared}
    )
    return records


def measure_scaling(workload: dict, calls_per_thread: int) -> list[dict]:
    """Cached-path QPS from 1/4/8 worker threads on an I/O-bound instance."""
    catalog = build_parts_supply(SCALING_SPEC)
    catalog.buffer.disk.io_delay = SCALING_IO_DELAY
    cache = PlanCache()
    cache.attach(catalog)
    engine = Engine(
        catalog,
        plan_cache=cache,
        dedupe_inner=workload["dedupe_inner"],
        dedupe_outer=workload.get("dedupe_outer", False),
    )
    name = workload["name"]
    reference = engine.run_cached(
        workload["query"], method="transform"
    ).result.rows

    records = []
    for threads in THREAD_COUNTS:
        failures: list[BaseException] = []

        def worker() -> None:
            try:
                for _ in range(calls_per_thread):
                    report = engine.run_cached(
                        workload["query"], method="transform"
                    )
                    _check_rows(name, "threaded", report.result.rows, reference)
            except BaseException as error:  # surface in the main thread
                failures.append(error)

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        start = time.perf_counter()
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        elapsed = time.perf_counter() - start
        if failures:
            raise failures[0]
        total = threads * calls_per_thread
        records.append(
            {
                "workload": name,
                "op": "cached",
                "threads": threads,
                "iters": total,
                "qps": round(total / elapsed, 1),
                "io_delay": SCALING_IO_DELAY,
            }
        )
    return records


def _build_mixed_database(spec):
    """A live Database loaded with the generator's PARTS/SUPPLY rows.

    The generator builds a bare catalog; the mixed legs need the full
    transactional stack (WAL, MVCC snapshots, autocommit), so the rows
    are re-inserted through :class:`~repro.api.Database`.  The I/O
    delay is switched on only after loading.
    """
    from repro.api import Database

    source = build_parts_supply(spec)
    db = Database(buffer_pages=spec.buffer_pages, dedupe_inner=False)
    db.create_table("PARTS", ["PNUM", "QOH"], primary_key=["PNUM"])
    db.create_table("SUPPLY", ["PNUM", "QUAN", ("SHIPDATE", "date")])
    db.insert("PARTS", list(source.heap_of("PARTS").scan()))
    db.insert("SUPPLY", list(source.heap_of("SUPPLY").scan()))
    db.disk.io_delay = SCALING_IO_DELAY
    return db


def measure_mixed(
    mix: tuple[int, int],
    calls_per_thread: int,
    thread_counts: tuple[int, ...] = THREAD_COUNTS,
) -> list[dict]:
    """Mixed read/write throughput of the type-JA cached path.

    Each worker interleaves cached reads with autocommitted SUPPLY
    inserts in the requested ratio (``--mix 90/10``: 9 reads per
    write).  The writes are *neutral*: the inserted PNUMs do not occur
    in PARTS, so the type-JA answer never changes and every read is
    asserted equal to the pre-write reference — the benchmark measures
    the snapshot/plan-cache machinery under write pressure without
    ever timing a wrong answer.  Commits publish new snapshots and
    flush memoized temps, so reads pay the real invalidation costs.
    """
    import math

    read_share, write_share = mix
    gcd = math.gcd(read_share, write_share)
    period = (read_share + write_share) // gcd
    writes_per_period = write_share // gcd
    name = f"mixed-{read_share}/{write_share}"
    query = WORKLOADS[2]["query"]  # type-JA: temps + memo, I/O-heavy

    records = []
    for threads in thread_counts:
        db = _build_mixed_database(SCALING_SPEC)
        reference = db.execute_cached(query, method="transform").result.rows
        failures: list[BaseException] = []
        writes_done = [0] * threads

        def worker(worker_id: int) -> None:
            try:
                base = 100_000 + worker_id * 10_000
                for call in range(calls_per_thread):
                    if call % period < writes_per_period:
                        dangling = base + call
                        db.insert(
                            "SUPPLY", [(dangling, 1, "1985-01-15")]
                        )
                        writes_done[worker_id] += 1
                    else:
                        report = db.execute_cached(
                            query, method="transform"
                        )
                        _check_rows(
                            name, "mixed", report.result.rows, reference
                        )
            except BaseException as error:  # surface in the main thread
                failures.append(error)

        pool = [
            threading.Thread(target=worker, args=(i,))
            for i in range(threads)
        ]
        start = time.perf_counter()
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        elapsed = time.perf_counter() - start
        if failures:
            raise failures[0]
        total = threads * calls_per_thread
        writes = sum(writes_done)
        records.append(
            {
                "workload": name,
                "op": "mixed",
                "threads": threads,
                "iters": total,
                "reads": total - writes,
                "writes": writes,
                "commits": db.txn.commits,
                "qps": round(total / elapsed, 1),
                "io_delay": SCALING_IO_DELAY,
            }
        )
    return records


def _qps(records: list[dict], workload: str, op: str, threads: int) -> float:
    for record in records:
        if (
            record["workload"] == workload
            and record["op"] == op
            and record["threads"] == threads
        ):
            return record["qps"]
    raise KeyError((workload, op, threads))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/bench_throughput.py",
        description="Serving-layer throughput: cold vs cached vs prepared, "
        "plus cached-path thread scaling.",
    )
    parser.add_argument(
        "--iters", type=int, default=60,
        help="calls per single-thread leg (default 60)",
    )
    parser.add_argument(
        "--calls-per-thread", type=int, default=8,
        help="calls each worker makes in the scaling legs (default 8)",
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=DEFAULT_OUTPUT,
        help=f"result file (default {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced iteration counts, no result file; fail unless the "
        "cached path is >= 1.5x cold on every workload",
    )
    parser.add_argument(
        "--witness", action="store_true",
        help="run every leg with the runtime lock witness enabled: "
        "locks created by the benchmark are wrapped, the acquisition-"
        "order graph is checked after the run, and any cycle fails the "
        "benchmark; QPS numbers then include the witness overhead",
    )
    parser.add_argument(
        "--mix", default=None, metavar="R/W",
        help="run the mixed read/write legs instead (e.g. 90/10): "
        "cached type-JA reads interleaved with autocommitted inserts "
        f"at 1/4/8 threads, written to {MIXED_OUTPUT.name}; with "
        "--smoke runs 1/4 threads and writes a .smoke.json sidecar; "
        "fails unless 4 threads beat 1",
    )
    args = parser.parse_args(argv)

    if args.witness:
        # Enable before any catalog/Database is built so the locks those
        # constructors create come out wrapped (wrapping happens at
        # creation time; import-time module locks stay plain).
        from repro.analysis.concurrency import witness

        witness.reset()
        witness.enable()

    try:
        exit_code = _main_mixed(args) if args.mix is not None else _run(args)
    finally:
        if args.witness:
            from repro.analysis.concurrency import witness

            witness.check()  # raises on any recorded order violation
            print(
                f"witness: {witness.edge_count()} lock-order edge(s) "
                "observed, 0 violations"
            )
            witness.reset()
            witness.disable()
    return exit_code


def _run(args) -> int:

    iters = 15 if args.smoke else args.iters
    calls = 3 if args.smoke else args.calls_per_thread

    records: list[dict] = []
    for workload in WORKLOADS:
        latency = measure_latency(workload, iters)
        records.extend(latency)
        by_op = {r["op"]: r for r in latency}
        print(
            f"{workload['name']}: cold {by_op['cold']['qps']} qps, "
            f"cached {by_op['cached']['qps']} qps "
            f"({by_op['cached']['qps'] / by_op['cold']['qps']:.1f}x), "
            f"prepared {by_op['prepared']['qps']} qps "
            f"({by_op['prepared']['qps'] / by_op['cold']['qps']:.1f}x)"
        )

    scaling_workload = WORKLOADS[2]  # type-JA: temps make it I/O-heavy
    scaling = measure_scaling(scaling_workload, calls)
    records.extend(scaling)
    for record in scaling:
        print(
            f"{record['workload']} [cached, io_delay={SCALING_IO_DELAY}]: "
            f"{record['threads']} thread(s) -> {record['qps']} qps"
        )

    failures = []
    if not args.witness:
        # The perf gates assume unobstructed locks; witness bookkeeping
        # shifts the cold/cached ratio, so a --witness run gates only on
        # lock-order violations (checked in main's finally block).
        for workload in WORKLOADS:
            cold = _qps(records, workload["name"], "cold", 1)
            cached = _qps(records, workload["name"], "cached", 1)
            floor = workload.get("min_speedup", 1.5)
            if cached < floor * cold:
                failures.append(
                    f"{workload['name']}: cached only {cached / cold:.2f}x "
                    f"cold (floor {floor}x)"
                )
        one = next(
            r["qps"] for r in scaling if r["threads"] == 1
        )
        eight = next(r["qps"] for r in scaling if r["threads"] == 8)
        if eight <= one:
            failures.append(
                f"thread scaling: 8 threads ({eight} qps) not faster than "
                f"1 thread ({one} qps)"
            )

    if args.smoke:
        for line in failures:
            print(f"FAIL {line}", file=sys.stderr)
        print("throughput smoke " + ("FAILED" if failures else "passed"))
        return 1 if failures else 0

    args.output.write_text(json.dumps(records, indent=2) + "\n")
    print(f"[{len(records)} records written to {args.output}]")
    if failures:
        for line in failures:
            print(f"WARN {line}", file=sys.stderr)
    return 0


def _main_mixed(args) -> int:
    """The ``--mix R/W`` entry point: mixed legs + scaling gate."""
    try:
        read_share, write_share = (
            int(part) for part in args.mix.split("/")
        )
    except ValueError:
        print(f"--mix must look like 90/10, got {args.mix!r}", file=sys.stderr)
        return 2
    if read_share <= 0 or write_share <= 0:
        print("--mix shares must both be positive", file=sys.stderr)
        return 2

    thread_counts = (1, 4) if args.smoke else THREAD_COUNTS
    calls = 20 if args.smoke else max(args.calls_per_thread, 40)
    records = measure_mixed(
        (read_share, write_share), calls, thread_counts
    )
    for record in records:
        print(
            f"{record['workload']} [cached JA reads + autocommit writes, "
            f"io_delay={SCALING_IO_DELAY}]: {record['threads']} thread(s) "
            f"-> {record['qps']} qps "
            f"({record['reads']} reads / {record['writes']} writes)"
        )

    one = next(r["qps"] for r in records if r["threads"] == 1)
    four = next(r["qps"] for r in records if r["threads"] == 4)
    failures = []
    if four <= one:
        failures.append(
            f"mixed scaling: 4 threads ({four} qps) not faster than "
            f"1 thread ({one} qps)"
        )

    output = (
        MIXED_OUTPUT.with_suffix(".smoke.json") if args.smoke
        else MIXED_OUTPUT
    )
    payload = records
    if output.exists():
        # bench_txn.py merges its recovery records into the same file;
        # keep them, replace only the mixed records.
        try:
            existing = json.loads(output.read_text())
            payload = [
                r for r in existing if r.get("op") != "mixed"
            ] + records
        except (ValueError, OSError):
            pass
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[{len(records)} mixed records written to {output}]")

    for line in failures:
        print(f"FAIL {line}", file=sys.stderr)
    print("mixed throughput " + ("FAILED" if failures else "passed"))
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
