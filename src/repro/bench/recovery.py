"""Crash-recovery benchmark: WAL replay time vs committed history size.

For each history size the benchmark drives a live database through a
transactional write workload (multi-table batches, a fraction aborted),
then measures two recovery scenarios:

* **clean** — replay the full log, as after an orderly shutdown;
* **torn**  — truncate the log mid-way through its final commit record
  (the worst crash point: a whole transaction's inserts are durable
  but its commit mark is not) and replay the committed prefix.

Every recovered state is verified row-for-row against the expected
committed rows before its timing is reported, so the benchmark cannot
time an incorrect replay.  Results merge into ``BENCH_PR8.json``
alongside the mixed-throughput records
(``bench_throughput.py --mix 90/10``):

    PYTHONPATH=src python benchmarks/bench_txn.py
    PYTHONPATH=src python benchmarks/bench_txn.py --smoke
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile
import time

from repro.api import Database
from repro.txn import recover
from repro.txn.wal import decode_records

REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_PR8.json"

#: Committed-row sweep sizes (rows across both tables).
SIZES = (200, 1000, 4000)
SMOKE_SIZES = (100, 400)
BATCH = 20
ABORT_EVERY = 5  # every 5th transaction rolls back

_DATES = ["1979-12-30", "1985-01-15"]


def build_history(path: pathlib.Path, target_rows: int) -> dict[str, int]:
    """Write ``target_rows`` committed rows through transactions.

    Returns the expected committed row count per table (aborted
    batches excluded).
    """
    db = Database(buffer_pages=32, wal_path=path)
    db.create_table("PARTS", ["PNUM", "QOH"])
    db.create_table("SUPPLY", ["PNUM", "QUAN", ("SHIPDATE", "text")])
    committed = {"PARTS": 0, "SUPPLY": 0}
    pnum = 1
    txn_index = 0
    while committed["PARTS"] + committed["SUPPLY"] < target_rows:
        txn_index += 1
        parts = [(pnum + i, (pnum + i) % 7) for i in range(BATCH // 2)]
        supply = [
            (pnum + i, 1 + i % 4, _DATES[i % 2]) for i in range(BATCH // 2)
        ]
        pnum += BATCH // 2
        txn = db.begin()
        txn.insert("PARTS", parts)
        txn.insert("SUPPLY", supply)
        if txn_index % ABORT_EVERY == 0:
            txn.rollback()
        else:
            txn.commit()
            committed["PARTS"] += len(parts)
            committed["SUPPLY"] += len(supply)
    return committed


def _verify(db: Database, expected: dict[str, int]) -> int:
    verified = 0
    for table, count in expected.items():
        got = db.catalog.heap_of(table).num_rows
        if got != count:
            raise AssertionError(
                f"recovery verification failed: {table} has {got} rows, "
                f"expected {count}"
            )
        verified += count
    return verified


def measure(sizes: tuple[int, ...]) -> list[dict]:
    records = []
    with tempfile.TemporaryDirectory() as tmp:
        for size in sizes:
            path = pathlib.Path(tmp) / f"history_{size}.wal"
            expected = build_history(path, size)
            data = path.read_bytes()
            wal_records, valid = decode_records(data)
            assert valid == len(data)

            start = time.perf_counter()
            recovered = recover(path, buffer_pages=32)
            clean_ms = (time.perf_counter() - start) * 1000
            verified = _verify(recovered, expected)

            # Torn tail: cut into the final commit record, so its
            # transaction must vanish on replay.
            last_commit = max(
                r.lsn for r in wal_records if r.type == "commit"
            )
            torn_path = pathlib.Path(tmp) / f"torn_{size}.wal"
            torn_path.write_bytes(data[: last_commit + 4])
            prefix, _ = decode_records(data[: last_commit + 4])
            still_committed = {
                r.txid for r in prefix if r.type == "commit"
            }
            torn_expected = {"PARTS": 0, "SUPPLY": 0}
            for record in prefix:
                if record.type == "insert" and record.txid in still_committed:
                    torn_expected[record.payload["table"]] += len(
                        record.payload["rows"]
                    )
            start = time.perf_counter()
            torn_db = recover(torn_path, buffer_pages=32)
            torn_ms = (time.perf_counter() - start) * 1000
            torn_verified = _verify(torn_db, torn_expected)

            record = {
                "workload": "crash-recovery",
                "op": "recovery",
                "rows": verified,
                "wal_bytes": len(data),
                "wal_records": len(wal_records),
                "recover_ms": round(clean_ms, 2),
                "replay_rows_per_s": round(verified / (clean_ms / 1000), 1),
                "torn_recover_ms": round(torn_ms, 2),
                "torn_rows": torn_verified,
            }
            records.append(record)
            print(
                f"recovery[{verified} rows, {len(data)} wal bytes]: "
                f"clean {record['recover_ms']} ms "
                f"({record['replay_rows_per_s']} rows/s), "
                f"torn-tail {record['torn_recover_ms']} ms "
                f"({torn_verified} rows survive)"
            )
    return records


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/bench_txn.py",
        description="WAL crash-recovery timing sweep (verified replays).",
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=DEFAULT_OUTPUT,
        help=f"result file to merge into (default {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced sizes; merge into the .smoke.json sidecar",
    )
    args = parser.parse_args(argv)

    sizes = SMOKE_SIZES if args.smoke else SIZES
    try:
        records = measure(sizes)
    except AssertionError as error:
        print(f"FAIL {error}", file=sys.stderr)
        return 1

    output = (
        args.output.with_suffix(".smoke.json") if args.smoke
        else args.output
    )
    payload = records
    if output.exists():
        # The mixed-throughput leg writes the same file; keep its
        # records, replace only previous recovery sweeps.
        try:
            existing = json.loads(output.read_text())
            payload = [
                r for r in existing if r.get("op") != "recovery"
            ] + records
        except (ValueError, OSError):
            pass
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[{len(records)} recovery records merged into {output}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
