"""Measured benchmark runs over the simulated storage engine.

Every measurement follows the same protocol: flush and empty the buffer
pool (cold cache), zero the I/O counters, run the query, snapshot the
counters.  That makes the measured page I/O directly comparable to the
paper's analytical figures, which also assume cold sequential scans.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass

from repro.catalog.catalog import Catalog
from repro.core.pipeline import Engine
from repro.storage.stats import IOStats


@dataclass
class MeasuredRun:
    """One measured query execution."""

    method: str
    io: IOStats
    rows: list[tuple]
    seconds: float

    @property
    def page_ios(self) -> int:
        return self.io.page_ios


def measure(
    catalog: Catalog,
    sql: str,
    method: str,
    join_method: str = "merge",
    ja_algorithm: str = "ja2",
    dedupe_inner: bool = False,
    dedupe_outer: bool = False,
    engine: str = "row",
    parallelism: int = 1,
    parallel_threshold: int | None = None,
) -> MeasuredRun:
    """Run one query cold and return rows + page I/O + wall time."""
    engine = Engine(
        catalog,
        join_method=join_method,
        ja_algorithm=ja_algorithm,
        dedupe_inner=dedupe_inner,
        dedupe_outer=dedupe_outer,
        engine=engine,
        parallelism=parallelism,
        parallel_threshold=parallel_threshold,
    )
    catalog.buffer.evict_all()
    catalog.buffer.reset_stats()
    start = time.perf_counter()
    report = engine.run(sql, method=method)
    elapsed = time.perf_counter() - start
    return MeasuredRun(
        method=method, io=report.io, rows=report.result.rows, seconds=elapsed
    )


def compare_methods(
    catalog: Catalog,
    sql: str,
    join_method: str = "merge",
    ja_algorithm: str = "ja2",
    dedupe_inner: bool = False,
    check: str | None = "bag",
) -> tuple[MeasuredRun, MeasuredRun]:
    """Measure nested iteration and transformation on the same query.

    ``check`` verifies the transformed result against the baseline:
    ``"bag"`` (multiset equality, the default), ``"set"`` (for
    paper-literal type-J plans, whose multiplicities may legitimately
    differ — see DESIGN.md), or None (for deliberately buggy algorithms
    such as ``ja_algorithm="kim"``).  A benchmark must never silently
    time a wrong answer.
    """
    baseline = measure(catalog, sql, "nested_iteration")
    transformed = measure(
        catalog,
        sql,
        "transform",
        join_method=join_method,
        ja_algorithm=ja_algorithm,
        dedupe_inner=dedupe_inner,
    )
    if ja_algorithm == "kim":
        check = None
    if check == "bag" and Counter(baseline.rows) != Counter(transformed.rows):
        raise AssertionError(
            "methods disagree (bag): "
            f"nested_iteration={sorted(baseline.rows, key=str)} "
            f"transform={sorted(transformed.rows, key=str)}"
        )
    if check == "set" and set(baseline.rows) != set(transformed.rows):
        raise AssertionError(
            "methods disagree (set): "
            f"nested_iteration={sorted(set(baseline.rows), key=str)} "
            f"transform={sorted(set(transformed.rows), key=str)}"
        )
    return baseline, transformed
