"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  The hierarchy mirrors the major
subsystems: the SQL frontend, the catalog, the storage engine, the
execution engine, and the query transformations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SqlError(ReproError):
    """Base class for SQL frontend errors."""


class LexError(SqlError):
    """Raised when the tokenizer encounters an invalid character sequence.

    Attributes:
        position: character offset into the source text where the error
            occurred.
    """

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at position {position})")
        self.position = position


class ParseError(SqlError):
    """Raised when the parser encounters an unexpected token."""

    def __init__(self, message: str, position: int = -1) -> None:
        if position >= 0:
            super().__init__(f"{message} (at position {position})")
        else:
            super().__init__(message)
        self.position = position


class CatalogError(ReproError):
    """Raised for schema problems: unknown tables, duplicate columns, etc."""


class StorageError(ReproError):
    """Raised for storage-engine faults: bad page ids, full pages, etc."""


class ExecutionError(ReproError):
    """Raised when a query cannot be evaluated."""


class CardinalityError(ExecutionError):
    """Raised when a scalar subquery yields more than one row."""


class BindError(ExecutionError):
    """Raised when a column reference cannot be resolved to a table."""


class TransformError(ReproError):
    """Raised when a nested-query transformation cannot be applied."""


class ParameterizedPlanError(TransformError):
    """Raised when a plan's shape depends on bind-parameter *values*.

    Type-A subquery blocks are evaluated during transformation and baked
    into the plan as constants; a bind parameter inside such a block
    makes the plan value-dependent, so a single parameterized plan would
    be wrong.  The serving layer catches this and plans per parameter
    vector instead (the "custom plan" fallback).
    """


class PlanError(ReproError):
    """Raised when the planner cannot produce a plan for a query."""


class VerificationError(PlanError):
    """Raised when the static plan verifier rejects a plan.

    Subclasses :class:`PlanError` because a plan that fails static
    verification is a plan the executors must not run; callers that
    already handle planning failures keep working.

    Attributes:
        diagnostics: the :class:`repro.analysis.Diagnostic` findings
            that caused the rejection (empty for ad-hoc raises).
    """

    def __init__(self, message: str, diagnostics: tuple = ()) -> None:
        super().__init__(message)
        self.diagnostics = tuple(diagnostics)


class ColumnVerificationError(VerificationError, BindError):
    """Static-verifier rejection for an unresolvable or ambiguous column.

    Also a :class:`BindError`: the verifier reports statically what the
    executors would otherwise raise as a bind failure at runtime, so
    code catching either class behaves the same.
    """
