"""repro — a reproduction of Ganski & Wong, *Optimization of Nested SQL
Queries Revisited* (SIGMOD 1987).

The package implements, from scratch:

* a SQL frontend for the paper's dialect (:mod:`repro.sql`);
* a page-based storage engine whose unit of cost — the disk page I/O —
  is measured, not estimated (:mod:`repro.storage`);
* System R-style nested iteration, the paper's baseline and semantic
  oracle (:mod:`repro.engine`);
* Kim's classification and transformation algorithms, the paper's bug
  demonstrations, the corrected **NEST-JA2**, the section-8 predicate
  extensions, and the recursive **NEST-G** (:mod:`repro.core`);
* the section-7 analytical cost model and a single-level plan executor
  (:mod:`repro.optimizer`);
* the paper's exact example instances plus synthetic workload
  generators (:mod:`repro.workloads`).

Quickstart::

    from repro import Database

    db = Database(buffer_pages=8)
    db.create_table("PARTS", ["PNUM", "QOH"])
    db.insert("PARTS", [(3, 6), (10, 1), (8, 0)])
    print(db.query("SELECT PNUM FROM PARTS WHERE QOH > 0").rows)
"""

from repro.api import Database
from repro.core.classify import NestingType
from repro.core.pipeline import Engine, RunReport
from repro.engine.nested_iteration import QueryResult
from repro.errors import ReproError
from repro.optimizer.cost import CostParameters, ja2_costs, nested_iteration_cost
from repro.sql.parser import parse
from repro.sql.printer import to_sql
from repro.storage.stats import IOStats

__version__ = "1.0.0"

__all__ = [
    "CostParameters",
    "Database",
    "Engine",
    "IOStats",
    "NestingType",
    "QueryResult",
    "ReproError",
    "RunReport",
    "__version__",
    "ja2_costs",
    "nested_iteration_cost",
    "parse",
    "to_sql",
]
