"""Public API: the :class:`Database` facade.

A :class:`Database` bundles a simulated disk, a buffer pool of ``B``
pages, a catalog, and a query engine.  It is the entry point the
examples and benchmarks use::

    from repro import Database

    db = Database(buffer_pages=8)
    db.create_table("PARTS", ["PNUM", "QOH"], primary_key=["PNUM"])
    db.insert("PARTS", [(3, 6), (10, 1), (8, 0)])

    result = db.query("SELECT PNUM FROM PARTS WHERE QOH > 0")
    report = db.run("SELECT ...", method="transform")   # rows + page I/O
    print(db.explain("SELECT ..."))                      # NEST-G plan
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Column, ColumnType, TableSchema
from repro.core.pipeline import Engine, RunReport
from repro.engine.nested_iteration import QueryResult
from repro.errors import CatalogError, ReproError
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager
from repro.storage.stats import IOStats

#: Accepted column-type spellings for :meth:`Database.create_table`.
_TYPE_NAMES = {
    "int": ColumnType.INT,
    "integer": ColumnType.INT,
    "float": ColumnType.FLOAT,
    "real": ColumnType.FLOAT,
    "text": ColumnType.TEXT,
    "string": ColumnType.TEXT,
    "date": ColumnType.DATE,
    "any": ColumnType.ANY,
}


class Database:
    """An in-memory, page-accounted database with nested-query optimization.

    Args:
        buffer_pages: the buffer pool size ``B`` (the paper's
            main-memory buffer space; default 32).
        join_method: ``"merge"`` (sort-merge, the paper's choice) or
            ``"nested"`` for transformed plans.
        ja_algorithm: ``"ja2"`` (the paper's corrected NEST-JA2) or
            ``"kim"`` to reproduce the original buggy NEST-JA.
        dedupe_inner: apply the inner-side duplicate-elimination fix-up
            to uncorrelated IN subqueries (see DESIGN.md).
        dedupe_outer: apply the rowid-based semijoin fix-up that
            restores nested-iteration multiplicities after a type-J
            merge (the modern answer to Kim's Lemma-1 caveat).
        plan_cache_size: capacity of the serving-layer plan cache used
            by :meth:`execute_cached` / :meth:`prepare` (default 128).
        io_delay: simulated per-page-read latency in seconds (sleeps
            outside all locks, so concurrent reads overlap — used by
            the throughput benchmark to model I/O-bound workloads).
        engine: ``"row"`` (tuple-at-a-time operators) or
            ``"vectorized"`` (columnar batch execution; same plans,
            same page I/O, far less interpreter overhead).
        parallelism: number of worker shards for partitioned scans,
            hash joins, and partial aggregation (default 1 = serial).
            Parallel plans read and write exactly the same pages as
            serial ones — only wall-clock changes.
        parallel_threshold: minimum input row count before an operator
            goes parallel (default 2048); smaller inputs run serial
            even when ``parallelism > 1``.
        wal_path: file path for the write-ahead log.  Default None
            keeps the log in memory (same format, no files); pass a
            path to make commits durable and recoverable via
            :func:`repro.txn.recover`.
    """

    def __init__(
        self,
        buffer_pages: int = 32,
        join_method: str = "merge",
        ja_algorithm: str = "ja2",
        dedupe_inner: bool = False,
        dedupe_outer: bool = False,
        plan_cache_size: int = 128,
        io_delay: float = 0.0,
        engine: str = "row",
        parallelism: int = 1,
        parallel_threshold: int | None = None,
        wal_path: str | None = None,
    ) -> None:
        from repro.serve.cache import PlanCache
        from repro.txn import TransactionManager, WriteAheadLog

        self.disk = DiskManager(io_delay=io_delay)
        self.buffer = BufferPool(self.disk, capacity=buffer_pages)
        self.catalog = Catalog(self.buffer)
        self.wal = WriteAheadLog(wal_path)
        self.txn = TransactionManager(self.catalog, self.wal)
        self.plan_cache = PlanCache(capacity=plan_cache_size)
        self.plan_cache.attach(self.catalog)
        self.engine = Engine(
            self.catalog,
            join_method=join_method,
            ja_algorithm=ja_algorithm,
            dedupe_inner=dedupe_inner,
            dedupe_outer=dedupe_outer,
            plan_cache=self.plan_cache,
            engine=engine,
            parallelism=parallelism,
            parallel_threshold=parallel_threshold,
        )

    # -- DDL / DML -------------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: Sequence[str | tuple[str, str]],
        primary_key: Sequence[str] = (),
        rows_per_page: int | None = None,
    ) -> None:
        """Create a table.

        Columns are names (INT by default) or ``(name, type)`` pairs
        with type one of int/float/text/date.  ``rows_per_page``
        controls page geometry — fix it when an experiment needs a
        relation to occupy a specific number of pages.
        """
        built: list[Column] = []
        for spec in columns:
            if isinstance(spec, str):
                built.append(Column(spec.upper()))
            else:
                column_name, type_name = spec
                ctype = _TYPE_NAMES.get(type_name.lower())
                if ctype is None:
                    raise CatalogError(f"unknown column type {type_name!r}")
                built.append(Column(column_name.upper(), ctype))
        table_schema = TableSchema(
            name.upper(),
            tuple(built),
            tuple(key.upper() for key in primary_key),
        )
        with self.catalog.write_lock():
            self.catalog.create_table(table_schema, rows_per_page=rows_per_page)
        self.txn.log_schema(
            "create_table",
            table=table_schema.name,
            columns=[[c.name, c.ctype.name.lower()] for c in built],
            primary_key=[key.upper() for key in primary_key],
            rows_per_page=rows_per_page,
        )

    def drop_table(self, name: str) -> None:
        with self.catalog.write_lock():
            self.catalog.drop_table(name.upper())
        self.txn.log_schema("drop_table", table=name.upper())

    def insert(self, table: str, rows: Iterable[tuple]) -> int:
        """Insert rows atomically; returns the number inserted.

        Runs as an autocommit transaction: the rows are WAL-logged,
        become visible to readers in one atomic snapshot publication at
        commit, and a failure part-way (validation or crash) leaves the
        table untouched.  Concurrent reads are never blocked — they
        keep scanning their pinned snapshots.
        """
        txn = self.txn.begin(self)
        try:
            count = txn.insert(table, rows)
        except Exception:
            txn.rollback()
            raise
        txn.commit()
        return count

    def begin(self):
        """Start an explicit transaction (see :class:`repro.txn.Transaction`).

        Usable as a context manager::

            with db.begin() as txn:
                txn.insert("PARTS", [(99, 5)])
                txn.query("SELECT ...")   # sees own writes, isolated
        """
        return self.txn.begin(self)

    def tables(self) -> list[str]:
        return self.catalog.table_names()

    def create_index(self, table: str, column: str) -> None:
        """Build an ISAM index on ``table.column``.

        Nested iteration probes registered indexes automatically (the
        System R access-path accelerator), and the cost-based planner
        takes them into account.  Indexes are rebuilt after inserts.
        """
        with self.catalog.write_lock():
            self.catalog.create_index(table.upper(), column.upper())
        self.txn.log_schema(
            "create_index", table=table.upper(), column=column.upper()
        )

    def analyze(self, table: str | None = None) -> None:
        """Collect optimizer statistics (ANALYZE), one table or all.

        Statistics sharpen the cost-based planner's selectivity and
        temp-size estimates; the collecting scans are charged page I/O
        like any other scan.
        """
        from repro.catalog.statistics import analyze_all, analyze_table

        with self.catalog.write_lock(), self.catalog.snapshots.pinned():
            if table is None:
                analyze_all(self.catalog, parallelism=self.engine.parallelism)
            else:
                analyze_table(
                    self.catalog,
                    table.upper(),
                    parallelism=self.engine.parallelism,
                )

    # -- statements ----------------------------------------------------------

    def execute(self, sql: str, method: str = "auto") -> QueryResult | str:
        """Execute any statement: SELECT, CREATE TABLE, INSERT, DROP.

        SELECT returns a :class:`QueryResult`; DDL/DML statements return
        a short status message.
        """
        from repro.sql.ast import Select
        from repro.sql.statements import (
            CreateTable,
            DropTable,
            InsertValues,
            parse_statement,
        )

        statement = parse_statement(sql)
        if isinstance(statement, Select):
            return self.engine.run(statement, method=method).result
        if isinstance(statement, CreateTable):
            self.create_table(
                statement.name,
                [(name, ctype) for name, ctype in statement.columns],
                primary_key=statement.primary_key,
            )
            return f"created table {statement.name.upper()}"
        if isinstance(statement, InsertValues):
            count = self.insert(statement.table, statement.rows)
            return f"inserted {count} row(s) into {statement.table.upper()}"
        if isinstance(statement, DropTable):
            self.drop_table(statement.name)
            return f"dropped table {statement.name.upper()}"
        raise ReproError(f"unsupported statement: {statement!r}")

    # -- queries -----------------------------------------------------------

    def query(self, sql: str, method: str = "auto") -> QueryResult:
        """Run a query, returning just the result rows."""
        return self.engine.run(sql, method=method).result

    def run(self, sql: str, method: str = "transform") -> RunReport:
        """Run a query, returning the full report (rows, I/O, trace)."""
        return self.engine.run(sql, method=method)

    def explain(self, sql: str) -> str:
        """The transformation plan NEST-G produces for a query."""
        return self.engine.explain(sql)

    # -- serving -----------------------------------------------------------

    def prepare(self, sql: str, method: str = "auto"):
        """Plan a parameterized statement once; bind + execute many times.

        Returns a :class:`repro.serve.PreparedStatement`.  Bind values
        positionally (``?`` markers) or by name (``:name`` markers)::

            stmt = db.prepare("SELECT PNUM FROM PARTS WHERE QOH >= ?")
            stmt.execute((10,))
            stmt = db.prepare("... WHERE QOH BETWEEN :lo AND :hi")
            stmt.execute({"lo": 0, "hi": 5})
        """
        return self.engine.prepare(sql, method=method)

    def execute_cached(
        self, sql: str, params: tuple = (), method: str = "auto"
    ) -> RunReport:
        """Run a query through the plan cache (see ``plan_cache_size``).

        The SQL is normalized — predicate literals are parameterized and
        the text canonicalized — so textual/literal variants of one
        query shape share a cached, already-verified plan.
        """
        return self.engine.run_cached(sql, params=params, method=method)

    def cache_stats(self):
        """Hit/miss/invalidation/eviction counters of the plan cache."""
        return self.plan_cache.stats()

    def txn_stats(self) -> str:
        """One-paragraph transaction/WAL status (commits, versions, log)."""
        return self.txn.describe()

    # -- statistics ----------------------------------------------------------

    def io_stats(self) -> IOStats:
        """Cumulative page I/O since construction (or the last reset)."""
        return self.buffer.stats()

    def reset_io_stats(self) -> None:
        self.buffer.reset_stats()

    def cold_cache(self) -> None:
        """Flush and empty the buffer pool (for repeatable measurements)."""
        self.buffer.evict_all()
