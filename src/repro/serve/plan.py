"""Building and replaying cached plans.

A :class:`CachedPlan` captures everything the pipeline produces up to —
but not including — data access: the qualified/rewritten tree, the
NEST-G transformation (temp-table definitions + canonical single-level
query), the dedupe-outer fix-up rewrite, the verifier's clean bill of
health, and the statically-derived parameter contracts.  Replay skips
parse → qualify → rewrite → transform → verify → lint entirely; it
rebuilds the (data-dependent) temp tables in a private
:class:`~repro.serve.session.SessionCatalog` and runs the canonical
query with ``verify=False`` — verification happened at plan time, which
is precisely the point of caching it.

Two plan kinds exist: ``transform`` (the paper's unnested pipeline) and
``nested_iteration`` (for queries outside the algorithms' reach under
``method="auto"``).  Both are safe to execute from many threads at
once: all mutable state lives in the session overlay or flows through
the parameter context variable.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.catalog.catalog import Catalog
from repro.core.nest_g import GeneralTransform, nest_g
from repro.core.pipeline import Engine, RunReport
from repro.engine.nested_iteration import NestedIterationExecutor, QueryResult
from repro.errors import ParameterizedPlanError, ReproError, TransformError
from repro.optimizer.executor import SingleLevelExecutor
from repro.serve.binding import ParamSpec, check_binding, derive_param_specs
from repro.serve.session import SessionCatalog
from repro.sql.ast import Parameter, Select, walk
from repro.sql.printer import to_sql

#: Max distinct parameter vectors whose materialized temps one plan
#: memoizes; further vectors rebuild their temps per call.
_TEMP_MEMO_CAP = 8


class NonCacheablePlan(ReproError):
    """The query cannot be served from a cached plan.

    Raised at plan-build time for shapes whose *rewrite* performs data
    access (the aggregated ``dedupe_outer`` fix-up materializes a
    staging temp mid-rewrite) and for ``method="cost"`` (the planner's
    choice is re-costed per call).  Callers fall back to the full
    pipeline per execution — correct, just not cached.
    """


#: Engine-configuration component of every cache key.  Two engines with
#: different settings must never share a plan.
def engine_config(engine: Engine, method: str) -> tuple:
    return (
        method,
        engine.join_method,
        engine.engine,
        engine.parallelism,
        engine.parallel_threshold,
        engine.ja_algorithm,
        engine.dedupe_inner,
        engine.dedupe_outer,
        engine.exists_count_mode,
        engine.quantifier_mode,
    )


@dataclass
class CachedPlan:
    """A transformed, verified, replayable plan."""

    fingerprint: str
    config: tuple
    #: catalog.schema_version when the plan was built; the cache treats
    #: any other schema version as a miss (DDL or stats changed).  Data
    #: changes (inserts) do NOT invalidate: replays re-read the base
    #: tables under a pinned snapshot, so the plan stays valid.
    catalog_version: int
    kind: str  # "transform" | "nested_iteration"
    rewritten: Select
    param_specs: list[ParamSpec]
    join_method: str
    #: Evaluation style ("row" | "vectorized") baked in at plan time;
    #: part of the cache key via :func:`engine_config`.
    engine: str = "row"
    #: Worker-shard count (and its activation threshold) baked in at
    #: plan time; also part of the cache key.
    parallelism: int = 1
    parallel_threshold: int | None = None
    #: catalog.data_version at build time.  Purely diagnostic — the
    #: cache counts a hit at any other data version as a
    #: "snapshot-pin hit" (the plan outlived an insert).
    data_version: int = 0
    transform: GeneralTransform | None = None
    final_query: Select | None = None
    strip: int = 0
    verify_trace: list[str] = field(default_factory=list)
    #: Parameter slots the setup temp definitions read (transitively):
    #: temp contents are a pure function of (base data @ version, these
    #: values), so materialized temps are memoized per value sub-vector.
    setup_param_indices: tuple[int, ...] = ()
    #: Per-definition structural fingerprints + parameter slots (see
    #: :mod:`repro.serve.sharing`); empty for nested-iteration plans.
    share_specs: tuple = ()
    #: The plan cache's SharedSubplanRegistry, or None when the engine
    #: serves without a plan cache.  When set, materialized setup temps
    #: are published to / leased from the registry (shared across
    #: plans) instead of the private ``_temp_memo``.
    registry: object | None = field(default=None, repr=False, compare=False)
    _temp_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )
    #: (snapshot data version, sub-vector)
    #:     -> [(temp name, heap, column names), ...]
    _temp_memo: dict = field(default_factory=dict, repr=False, compare=False)
    _active: int = 0
    _released: bool = False
    #: A data event arrived while replays were in flight; the last one
    #: out flushes the memo (same deferral discipline as release()).
    _memo_stale: bool = False

    @property
    def param_count(self) -> int:
        return len(self.param_specs)

    # -- memoized temp lifecycle ------------------------------------------

    def _acquire(self) -> None:
        with self._temp_lock:
            self._active += 1

    def _release_slot(self) -> None:
        with self._temp_lock:
            self._active -= 1
            if self._active == 0 and (self._released or self._memo_stale):
                self._truncate_memo_locked()

    def release(self) -> None:
        """Free memoized temp heaps (cache eviction / invalidation).

        Deferred while executions are in flight: the last replay's
        cleanup performs the truncation, so a reader never loses pages
        under its feet.  Shared-registry handles this plan holds are
        dropped too (idempotently — double release is safe): entries no
        other plan holds are freed by the registry.
        """
        with self._temp_lock:
            self._released = True
            if self._active == 0:
                self._truncate_memo_locked()
        if self.registry is not None:
            self.registry.drop_holder(self)

    def data_changed(self) -> bool:
        """Flush memoized temps after a committed insert.

        The plan itself stays valid — replays re-read the base tables —
        but memoized temp materializations describe the pre-insert
        data.  (Memo keys carry the snapshot data version, so stale
        entries could never be *reused*; flushing reclaims their pages
        eagerly.)  Deferred while replays are in flight, like
        :meth:`release`.  Returns True when there was anything to flush.
        """
        with self._temp_lock:
            if not self._temp_memo:
                return False
            if self._active == 0:
                self._truncate_memo_locked()
            else:
                self._memo_stale = True
            return True

    def _truncate_memo_locked(self) -> None:
        for temps in self._temp_memo.values():
            for _name, heap, _columns in temps:
                heap.truncate()
        self._temp_memo.clear()
        self._memo_stale = False

    def describe(self) -> str:
        lines = [
            f"kind: {self.kind}",
            f"schema version: {self.catalog_version}",
            f"data version: {self.data_version}",
        ]
        if self.transform is not None:
            for definition in self.transform.setup:
                lines.append(f"setup: {definition.describe()}")
            lines.append(f"canonical: {to_sql(self.transform.query)}")
        lines.extend(self.verify_trace)
        return "\n".join(lines)

    # -- execution ---------------------------------------------------------

    def replay(
        self, catalog: Catalog, values: tuple[object, ...] = ()
    ) -> RunReport:
        """Execute the plan with ``values`` bound, result + I/O report.

        Safe to call from multiple threads concurrently: temps go to a
        per-call session overlay, parameters bind through a context
        variable, and the whole call holds the catalog read lock.  The
        execution pins an MVCC snapshot (reusing one already pinned by
        an enclosing transaction), so every scan in the plan sees one
        committed state even while writers commit concurrently.
        """
        from repro.engine.params import bound_params

        check_binding(self.param_specs, values)
        session = SessionCatalog(catalog)
        before = session.buffer.stats()
        leases: list = []
        self._acquire()
        try:
            with (
                catalog.read_lock(),
                catalog.snapshots.pinned() as snapshot,
                bound_params(values),
            ):
                if self.kind == "nested_iteration":
                    result = NestedIterationExecutor(
                        session,
                        parallelism=self.parallelism,
                        parallel_threshold=self.parallel_threshold,
                    ).execute(self.rewritten)
                    io = session.buffer.stats() - before
                    return RunReport(
                        result=result, io=io, method="cached-nested_iteration"
                    )
                assert self.transform is not None
                assert self.final_query is not None
                try:
                    steps = self._install_temps(
                        session, values, snapshot, leases
                    )
                    final = SingleLevelExecutor(
                        session, self.join_method, verify=False,
                        engine=self.engine,
                        parallelism=self.parallelism,
                        parallel_threshold=self.parallel_threshold,
                    )
                    relation = final.execute(self.final_query)
                    steps.append("final")
                    rows = relation.to_list()
                    if self.strip:
                        rows = [row[self.strip:] for row in rows]
                    result = QueryResult(
                        columns=final.output_names(self.transform.query),
                        rows=rows,
                    )
                    io = session.buffer.stats() - before
                    return RunReport(
                        result=result,
                        io=io,
                        method="cached-transform",
                        join_method=self.join_method,
                        canonical_sql=to_sql(self.transform.query),
                        steps=steps,
                    )
                finally:
                    session.drop_temp_tables()
        finally:
            # Leases pin shared heaps for the whole execution (the
            # final query reads them); returned only after cleanup.
            for lease in leases:
                self.registry.release_lease(lease)
            self._release_slot()

    def _install_temps(
        self,
        session: SessionCatalog,
        values: tuple[object, ...],
        snapshot: object = None,
        leases: list | None = None,
    ) -> list[str]:
        """Make the plan's temp tables visible in ``session``.

        Temp contents depend only on the committed base data (pinned by
        the active snapshot) and the parameter slots their definitions
        read, so materialized heaps can be reused across calls — and,
        through the plan cache's :class:`SharedSubplanRegistry`, across
        *plans*: per definition, a structurally identical temp already
        materialized by any cached plan under the same snapshot, engine
        config, and bound values is leased instead of rebuilt.  Without
        a registry (no plan cache attached) the whole chain is memoized
        privately per (snapshot data version, value sub-vector).
        Executions under a transaction's read-your-writes overlay
        bypass both paths entirely — their temps may contain
        uncommitted rows no other reader must ever see.
        """
        from repro.txn.mvcc import TransactionSnapshot

        assert self.transform is not None
        if not self.transform.setup:
            return []
        private = isinstance(snapshot, TransactionSnapshot)
        if (
            not private
            and leases is not None
            and self.registry is not None
            and len(self.share_specs) == len(self.transform.setup)
        ):
            return self._install_temps_shared(session, values, snapshot, leases)
        memo_key = (
            getattr(snapshot, "data_version", -1),
            tuple(values[i] for i in self.setup_param_indices),
        )
        shared = None
        if not private:
            with self._temp_lock:
                shared = self._temp_memo.get(memo_key)
                if shared is not None:
                    for name, heap, columns in shared:
                        session.register_shared_temp(name, heap, columns)
        if shared is not None:
            return [f"reused {name}" for name, _heap, _columns in shared]
        steps = []
        built: list[tuple] = []
        for definition in self.transform.setup:
            executor = SingleLevelExecutor(
                session, self.join_method, verify=False, engine=self.engine,
                parallelism=self.parallelism,
                parallel_threshold=self.parallel_threshold,
            )
            relation = executor.execute(definition.query)
            columns = executor.output_names(definition.query)
            session.register_temp(definition.name, relation.heap, columns)
            built.append((definition.name, relation.heap, columns))
            steps.append(f"built {definition.name}")
        with self._temp_lock:
            if (
                not private
                and not self._released
                and memo_key not in self._temp_memo
                and len(self._temp_memo) < _TEMP_MEMO_CAP
            ):
                self._temp_memo[memo_key] = built
                for name, _heap, _columns in built:
                    session.mark_shared(name)
        return steps

    def _install_temps_shared(
        self,
        session: SessionCatalog,
        values: tuple[object, ...],
        snapshot: object,
        leases: list,
    ) -> list[str]:
        """Install temps through the cross-plan sharing registry.

        Definitions are keyed individually (cumulative fingerprints),
        so two plans sharing only a prefix of their chains still share
        that prefix.  A miss builds the definition — reading upstream
        temps already registered in the session, leased or built — and
        publishes the heap; publication transfers ownership to the
        registry (``mark_shared``), so the session's cleanup
        unregisters the name without truncating the pages.
        """
        assert self.transform is not None
        registry = self.registry
        share_config = self.config[1:]  # drop the method component
        data_version = getattr(snapshot, "data_version", -1)
        steps: list[str] = []
        for definition, spec in zip(self.transform.setup, self.share_specs):
            key = (
                spec.fingerprint,
                share_config,
                self.catalog_version,
                data_version,
                tuple(values[i] for i in spec.param_slots),
            )
            entry = registry.acquire(key, self)
            if entry is not None:
                leases.append(entry)
                session.register_shared_temp(
                    definition.name, entry.heap, entry.columns
                )
                steps.append(f"shared {definition.name}")
                continue
            executor = SingleLevelExecutor(
                session, self.join_method, verify=False, engine=self.engine,
                parallelism=self.parallelism,
                parallel_threshold=self.parallel_threshold,
            )
            relation = executor.execute(definition.query)
            columns = executor.output_names(definition.query)
            session.register_temp(definition.name, relation.heap, columns)
            entry = registry.publish(
                key, relation.heap, columns, self, session.data_version
            )
            if entry is not None:
                session.mark_shared(definition.name)
                leases.append(entry)
            steps.append(f"built {definition.name}")
        return steps


def build_plan(
    engine: Engine, select: Select, method: str, fingerprint: str
) -> CachedPlan:
    """Run the full pipeline up to (not including) data access.

    Raises :class:`~repro.errors.ParameterizedPlanError` when the plan
    shape depends on parameter values (callers switch to per-vector
    "custom" plans) and :class:`NonCacheablePlan` for shapes that
    cannot be cached at all.
    """
    if method not in ("transform", "auto", "nested_iteration"):
        raise NonCacheablePlan(
            f"method {method!r} is re-planned per call and cannot be cached"
        )
    catalog = engine.catalog
    version = catalog.schema_version
    data_version = catalog.data_version
    session = SessionCatalog(catalog)
    # A throwaway engine bound to the session overlay: temps that
    # NEST-G builds to evaluate type-A blocks stay private to this
    # plan construction.
    planner = Engine(
        session,
        join_method=engine.join_method,
        ja_algorithm=engine.ja_algorithm,
        dedupe_inner=engine.dedupe_inner,
        dedupe_outer=engine.dedupe_outer,
        exists_count_mode=engine.exists_count_mode,
        quantifier_mode=engine.quantifier_mode,
        verify=engine.verify,
        engine=engine.engine,
        parallelism=engine.parallelism,
        parallel_threshold=engine.parallel_threshold,
    )
    config = engine_config(engine, method)
    with catalog.read_lock():
        try:
            rewritten = planner._prepare(select)
            if method == "nested_iteration":
                specs = derive_param_specs(
                    rewritten, session, _slot_count(rewritten)
                )
                return CachedPlan(
                    fingerprint=fingerprint,
                    config=config,
                    catalog_version=version,
                    data_version=data_version,
                    kind="nested_iteration",
                    rewritten=rewritten,
                    param_specs=specs,
                    join_method=engine.join_method,
                    engine=engine.engine,
                    parallelism=engine.parallelism,
                    parallel_threshold=engine.parallel_threshold,
                )
            try:
                transform = nest_g(
                    rewritten,
                    session,
                    ja_algorithm=engine.ja_algorithm,
                    dedupe_inner=engine.dedupe_inner,
                    join_method=engine.join_method,
                    engine=engine.engine,
                    parallelism=engine.parallelism,
                    parallel_threshold=engine.parallel_threshold,
                )
                verify_trace = (
                    planner._verify_transform(rewritten, transform)
                    if engine.verify
                    else []
                )
                engine.last_findings = planner.last_findings
                if (
                    engine.dedupe_outer
                    and transform.root_fanout_merge
                    and (
                        transform.query.group_by
                        or transform.query.has_aggregate_select()
                        or transform.query.distinct
                    )
                ):
                    # The aggregated fix-up materializes a staging temp
                    # *during* the rewrite — data access at plan time.
                    raise NonCacheablePlan(
                        "aggregated dedupe_outer rewrite stages data at "
                        "plan time"
                    )
                final_query, strip = planner._maybe_dedupe_outer(transform)
                specs = derive_param_specs(
                    rewritten, session, _slot_count(rewritten)
                )
                setup_params = tuple(
                    sorted(
                        {
                            node.index
                            for definition in transform.setup
                            for node in walk(definition.query)
                            if isinstance(node, Parameter)
                        }
                    )
                )
                from repro.serve.sharing import compute_share_specs

                plan = CachedPlan(
                    fingerprint=fingerprint,
                    config=config,
                    catalog_version=version,
                    data_version=data_version,
                    kind="transform",
                    rewritten=rewritten,
                    param_specs=specs,
                    join_method=engine.join_method,
                    engine=engine.engine,
                    parallelism=engine.parallelism,
                    parallel_threshold=engine.parallel_threshold,
                    transform=transform,
                    final_query=final_query,
                    strip=strip,
                    verify_trace=verify_trace,
                    setup_param_indices=setup_params,
                    share_specs=compute_share_specs(transform),
                )
                cache = getattr(engine, "plan_cache", None)
                if cache is not None:
                    # None when sharing is disabled; an (empty) registry
                    # defines __len__, so test identity, not truth.
                    plan.registry = getattr(cache, "sharing", None)
                return plan
            except ParameterizedPlanError:
                # Must reach the caller: the plan shape depends on
                # parameter values, so the serving layer plans per
                # distinct vector instead ("custom plans").
                raise
            except TransformError:
                # Outside the algorithms' reach: under method="auto"
                # cache a nested-iteration plan instead.
                if method != "auto":
                    raise
                specs = derive_param_specs(
                    rewritten, session, _slot_count(rewritten)
                )
                return CachedPlan(
                    fingerprint=fingerprint,
                    config=config,
                    catalog_version=version,
                    data_version=data_version,
                    kind="nested_iteration",
                    rewritten=rewritten,
                    param_specs=specs,
                    join_method=engine.join_method,
                    engine=engine.engine,
                    parallelism=engine.parallelism,
                    parallel_threshold=engine.parallel_threshold,
                )
        finally:
            session.drop_temp_tables()


def _slot_count(select: Select) -> int:
    from repro.serve.normalize import user_param_count

    return user_param_count(select)
