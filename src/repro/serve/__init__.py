"""Query serving layer: plan cache, prepared statements, concurrency.

The paper's transformations (NEST-N-J, NEST-JA2, NEST-G) are static
rewrites: they depend only on the SQL text and on the catalog's schema
and statistics.  This package memoizes exactly that work.  A query
served from the cache skips parse → qualify → rewrite → transform →
verify → lint and goes straight to temp-table builds plus the final
canonical execution, with per-row expressions reusing memoized compiled
closures (:mod:`repro.engine.compile`).

Layers:

* :mod:`repro.serve.session` — a per-execution catalog overlay so N
  threads can replay the same plan (with its fixed temp-table names)
  concurrently;
* :mod:`repro.serve.normalize` — literal parameterization and the
  normalized-SQL fingerprint that keys the cache;
* :mod:`repro.serve.plan` — building and replaying cached plans;
* :mod:`repro.serve.binding` — verifier-derived type/nullability
  checks applied to parameter vectors at bind time;
* :mod:`repro.serve.cache` — the LRU plan cache with hit/miss/
  invalidation counters, wired to :class:`~repro.catalog.catalog.
  Catalog` change hooks;
* :mod:`repro.serve.prepared` — prepared statements.
"""

from repro.serve.cache import CacheStats, PlanCache
from repro.serve.plan import CachedPlan, NonCacheablePlan, build_plan
from repro.serve.prepared import PreparedStatement
from repro.serve.session import SessionCatalog

__all__ = [
    "CacheStats",
    "CachedPlan",
    "NonCacheablePlan",
    "PlanCache",
    "PreparedStatement",
    "SessionCatalog",
    "build_plan",
]
