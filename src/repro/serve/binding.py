"""Verifier-derived bind-time checks for parameter vectors.

At plan time, :func:`derive_param_specs` walks the *qualified* query
tree and pairs each parameter occurrence with the catalog column it is
compared against (directly, in BETWEEN/IN, or through arithmetic).
The result is a static per-slot contract; :func:`check_binding`
enforces it per execution in microseconds, so a bad vector fails before
any page is touched.

Rules:

* a parameter compared with an INT column must bind an int, FLOAT an
  int or float, TEXT/DATE a str; ANY-typed columns accept anything;
* a parameter under arithmetic (``? + 1``) must bind a number;
* binding NULL is rejected unless every occurrence of the slot is
  null-safe (``<=>``).  In plain comparisons a NULL parameter makes the
  predicate unknown for *every* row — the paper's three-valued logic —
  which silently returns the empty set; we treat it as a binding error
  instead (use ``IS NULL`` to test for NULL).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.catalog import Catalog
from repro.catalog.schema import ColumnType
from repro.errors import BindError
from repro.sql.ast import (
    Between,
    BinaryArith,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    Node,
    Parameter,
    Select,
    TableRef,
    UnaryMinus,
    walk,
)

#: Column type → python types a bound value must satisfy (None = any).
_ALLOWED = {
    ColumnType.INT: (int,),
    ColumnType.FLOAT: (int, float),
    ColumnType.TEXT: (str,),
    ColumnType.DATE: (str,),
    ColumnType.ANY: None,
}

#: The synthetic constraint for parameters used in arithmetic.
_NUMERIC = (int, float)


@dataclass
class ParamSpec:
    """The statically-derived contract for one parameter slot."""

    index: int
    name: str | None = None
    #: python types every occurrence accepts, or None when unconstrained.
    allowed_types: tuple[type, ...] | None = None
    #: False once any occurrence sits in a non-null-safe context.
    allow_null: bool = True
    #: human-readable provenance, e.g. "PARTS.QOH (int)".
    contexts: list[str] = field(default_factory=list)

    def label(self) -> str:
        return f":{self.name}" if self.name else f"parameter {self.index + 1}"

    def constrain(
        self, types: tuple[type, ...] | None, nullable: bool, context: str
    ) -> None:
        if types is not None:
            if self.allowed_types is None:
                self.allowed_types = types
            else:
                merged = tuple(
                    t for t in self.allowed_types if t in types
                )
                # Conflicting constraints (int vs str) leave the
                # narrower empty tuple; check() reports it clearly.
                self.allowed_types = merged
        if not nullable:
            self.allow_null = False
        self.contexts.append(context)

    def check(self, value: object) -> None:
        if value is None:
            if not self.allow_null:
                raise BindError(
                    f"cannot bind NULL to {self.label()} — it is used in "
                    f"a non-null-safe comparison ({'; '.join(self.contexts)}); "
                    "use IS NULL instead"
                )
            return
        if self.allowed_types is not None:
            ok = isinstance(value, self.allowed_types) and not isinstance(
                value, bool
            )
            if not ok:
                wanted = (
                    " or ".join(t.__name__ for t in self.allowed_types)
                    or "no possible type (conflicting constraints)"
                )
                raise BindError(
                    f"{self.label()} expects {wanted} "
                    f"({'; '.join(self.contexts)}), got {value!r}"
                )


def _binding_tables(select: Select) -> dict[str, str]:
    """binding (alias or name) → table name, across all blocks."""
    out: dict[str, str] = {}
    for node in walk(select):
        if isinstance(node, TableRef):
            out[node.binding] = node.name
    return out


def _column_type(
    ref: ColumnRef, bindings: dict[str, str], catalog: Catalog
) -> ColumnType | None:
    table = bindings.get(ref.table or "", ref.table)
    if table is None or not catalog.has_table(table):
        return None
    schema = catalog.schema_of(table)
    if not schema.has_column(ref.column):
        return None
    return schema.column_type(ref.column)


def _params_in(expr: Expr) -> list[Parameter]:
    return [n for n in walk(expr) if isinstance(n, Parameter)]


def derive_param_specs(
    select: Select, catalog: Catalog, count: int
) -> list[ParamSpec]:
    """Walk a qualified tree and derive the contract for each slot."""
    specs = [ParamSpec(i) for i in range(count)]

    def spec_for(param: Parameter) -> ParamSpec:
        spec = specs[param.index]
        if param.name and not spec.name:
            spec.name = param.name
        return spec

    bindings = _binding_tables(select)

    def constrain_pair(param: Parameter, other: Expr, nullable: bool) -> None:
        spec = spec_for(param)
        if isinstance(other, ColumnRef):
            ctype = _column_type(other, bindings, catalog)
            if ctype is not None:
                spec.constrain(
                    _ALLOWED[ctype],
                    nullable,
                    f"{other.qualified()} ({ctype.value})",
                )
                return
        spec.constrain(None, nullable, "comparison")

    for node in walk(select):
        if isinstance(node, Comparison):
            nullable = node.null_safe
            if isinstance(node.left, Parameter):
                constrain_pair(node.left, node.right, nullable)
            if isinstance(node.right, Parameter):
                constrain_pair(node.right, node.left, nullable)
        elif isinstance(node, Between):
            for bound in (node.low, node.high):
                if isinstance(bound, Parameter):
                    constrain_pair(bound, node.operand, False)
            if isinstance(node.operand, Parameter):
                spec_for(node.operand).constrain(None, False, "BETWEEN operand")
        elif isinstance(node, InList):
            for item in node.items:
                if isinstance(item, Parameter):
                    constrain_pair(item, node.operand, False)
            if isinstance(node.operand, Parameter):
                spec_for(node.operand).constrain(None, False, "IN operand")
        elif isinstance(node, (BinaryArith, UnaryMinus)):
            for param in _params_in(node):
                spec_for(param).constrain(_NUMERIC, False, "arithmetic")
    return specs


def check_binding(
    specs: list[ParamSpec], values: tuple[object, ...]
) -> None:
    """Validate a parameter vector against the derived contracts."""
    if len(values) != len(specs):
        raise BindError(
            f"statement takes {len(specs)} parameter(s), got {len(values)}"
        )
    for spec, value in zip(specs, values):
        spec.check(value)
