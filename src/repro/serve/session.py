"""Per-execution catalog overlay for concurrent plan replay.

A cached plan's temp-table names are fixed at plan time (``TEMP_1``,
``HTEMP_2``, ...).  If two threads replayed the same plan against the
shared catalog they would collide registering those names.  A
:class:`SessionCatalog` gives each execution a private table namespace
layered over the shared base catalog: temp tables land in the overlay,
while base tables, statistics, indexes, the schema/stats version, and
the reader-writer lock all delegate to the base.

The overlay holds *only* temps; creating a permanent table through a
session is a programming error and raises.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.catalog.catalog import Catalog, TableEntry
from repro.errors import CatalogError


class SessionCatalog(Catalog):
    """A catalog overlay: private temp tables over a shared base."""

    def __init__(self, base: Catalog) -> None:
        # Deliberately no super().__init__: shared state lives in the
        # base; only the temp namespace is local.
        self.base = base
        self.buffer = base.buffer
        self._tables: dict[str, TableEntry] = {}
        #: Temp names whose heaps this session does NOT own (they are
        #: memoized inside a CachedPlan and shared across executions);
        #: dropping them unregisters the name but never truncates.
        self._shared: set[str] = set()

    # -- delegated shared state ------------------------------------------

    @property
    def statistics(self):  # type: ignore[override]
        return self.base.statistics

    @property
    def indexes(self):  # type: ignore[override]
        return self.base.indexes

    @property
    def version(self):  # type: ignore[override]
        return self.base.version

    @property
    def schema_version(self):  # type: ignore[override]
        return self.base.schema_version

    @property
    def data_version(self):  # type: ignore[override]
        return self.base.data_version

    @property
    def snapshots(self):  # type: ignore[override]
        return self.base.snapshots

    @property
    def rwlock(self):  # type: ignore[override]
        return self.base.rwlock

    def bump_version(self, event: str, table: str) -> None:
        self.base.bump_version(event, table)

    def add_change_hook(self, hook) -> None:
        self.base.add_change_hook(hook)

    def create_temp_name(self, prefix: str = "TEMP") -> str:
        # The base counter is shared (and locked) so session temps can
        # never shadow names a concurrent plan build hands out.
        while True:
            name = self.base.create_temp_name(prefix)
            if name not in self._tables:
                return name

    # -- table namespace --------------------------------------------------

    def create_table(self, table_schema, rows_per_page=None, is_temp=False):
        if not is_temp:
            raise CatalogError(
                "session catalogs hold only temp tables; create "
                f"{table_schema.name} through the base catalog"
            )
        if self.base.has_table(table_schema.name):
            raise CatalogError(f"table {table_schema.name} already exists")
        return super().create_table(
            table_schema, rows_per_page=rows_per_page, is_temp=True
        )

    def register_temp(self, name, heap, column_names):
        if self.base.has_table(name):
            raise CatalogError(f"table {name} already exists")
        return super().register_temp(name, heap, column_names)

    def register_shared_temp(self, name, heap, column_names) -> None:
        """Register a temp whose heap outlives this session (memoized)."""
        self.register_temp(name, heap, column_names)
        self._shared.add(name)

    def mark_shared(self, name: str) -> None:
        """Transfer heap ownership out of this session (to a memo)."""
        if name not in self._tables:
            raise CatalogError(f"no session temp named {name}")
        self._shared.add(name)

    def drop_table(self, name: str) -> None:
        if name in self._shared:
            # Shared heap: unregister the name, leave the pages alone.
            del self._tables[name]
            self._shared.discard(name)
            return
        if name in self._tables:
            # Overlay temps have no entries in the shared index map, so
            # the inherited implementation's index sweep is a no-op scan.
            super().drop_table(name)
            return
        raise CatalogError(
            f"cannot drop {name} through a session catalog"
        )

    def insert(self, name: str, rows: Iterable[tuple]) -> int:
        if name in self._tables:
            return super().insert(name, rows)
        raise CatalogError(
            f"cannot insert into {name} through a session catalog"
        )

    # -- lookup ------------------------------------------------------------

    def _require(self, name: str) -> TableEntry:
        entry = self._tables.get(name)
        if entry is not None:
            return entry
        return self.base._require(name)

    def has_table(self, name: str) -> bool:
        return name in self._tables or self.base.has_table(name)

    def table_names(self) -> list[str]:
        return sorted(set(self.base.table_names()) | set(self._tables))

    def drop_temp_tables(self) -> None:
        """Drop this session's temps only; the base is untouched.

        Goes through :meth:`drop_table` so heaps shared with a plan's
        temp memo are unregistered without being truncated.
        """
        for name in list(self._tables):
            self.drop_table(name)
