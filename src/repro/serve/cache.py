"""The LRU plan cache and its invalidation wiring.

Keys are ``(fingerprint, engine_config)`` — the normalized SQL text of
the literal-parameterized tree plus every engine knob that affects plan
shape.  The catalog's schema/stats version is *not* part of the key;
instead each entry records the version it was built under and a lookup
under any other version is treated as an invalidation (the entry is
dropped and rebuilt).  On top of that, catalog change hooks purge
eagerly, so DDL frees the memory immediately rather than leaving stale
entries to age out of the LRU.

All operations are lock-protected; worker threads share one cache.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.catalog.catalog import Catalog
from repro.serve.plan import CachedPlan

#: Default maximum number of cached plans.
DEFAULT_CAPACITY = 128


@dataclass(frozen=True)
class CacheStats:
    """Counters since construction (or the last ``reset``)."""

    hits: int
    misses: int
    invalidations: int
    evictions: int
    size: int
    capacity: int

    def format(self) -> str:
        total = self.hits + self.misses
        rate = (100.0 * self.hits / total) if total else 0.0
        return (
            f"plan cache: {self.size}/{self.capacity} entries, "
            f"{self.hits} hit(s), {self.misses} miss(es) "
            f"({rate:.1f}% hit rate), "
            f"{self.invalidations} invalidation(s), "
            f"{self.evictions} eviction(s)"
        )


class PlanCache:
    """Bounded LRU of :class:`~repro.serve.plan.CachedPlan` objects."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"plan cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[tuple, CachedPlan] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0

    # -- wiring ------------------------------------------------------------

    def attach(self, catalog: Catalog) -> None:
        """Purge this cache on every plan-relevant catalog change."""
        catalog.add_change_hook(self._on_catalog_change)

    def _on_catalog_change(self, event: str, table: str) -> None:
        with self._lock:
            if self._entries:
                self.invalidations += len(self._entries)
                for plan in self._entries.values():
                    plan.release()
                self._entries.clear()

    # -- access ------------------------------------------------------------

    def lookup(self, key: tuple, version: int) -> CachedPlan | None:
        """The cached plan for ``key`` valid at ``version``, or None.

        A version mismatch counts as an invalidation *and* a miss: the
        stale entry is dropped and the caller rebuilds.
        """
        with self._lock:
            plan = self._entries.get(key)
            if plan is None:
                self.misses += 1
                return None
            if plan.catalog_version != version:
                del self._entries[key]
                plan.release()
                self.invalidations += 1
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return plan

    def store(self, key: tuple, plan: CachedPlan) -> None:
        with self._lock:
            replaced = self._entries.pop(key, None)
            if replaced is not None and replaced is not plan:
                replaced.release()
            while len(self._entries) >= self.capacity:
                _key, evicted = self._entries.popitem(last=False)
                evicted.release()
                self.evictions += 1
            self._entries[key] = plan

    def clear(self) -> None:
        with self._lock:
            for plan in self._entries.values():
                plan.release()
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self.hits,
                misses=self.misses,
                invalidations=self.invalidations,
                evictions=self.evictions,
                size=len(self._entries),
                capacity=self.capacity,
            )

    def reset_stats(self) -> None:
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.invalidations = 0
            self.evictions = 0
