"""The LRU plan cache and its invalidation wiring.

Keys are ``(fingerprint, engine_config)`` — the normalized SQL text of
the literal-parameterized tree plus every engine knob that affects plan
shape.  Versions are *not* part of the key; each entry records the
schema version it was built under and a lookup under any other schema
version is treated as an invalidation (the entry is dropped and
rebuilt).

Invalidation is event-class aware (see
:func:`repro.catalog.catalog.event_class`):

* **schema** events (DDL, ANALYZE) change what plans are *valid* —
  the cache purges eagerly, freeing memoized temps immediately rather
  than leaving stale entries to age out of the LRU;
* **data** events (inserts) change only which rows exist — cached
  plans re-read base tables on every replay, so the entries survive;
  only their memoized temp materializations are flushed (they were
  built from the pre-insert data).  A hit on a plan that outlived a
  data change is counted as a *snapshot-pin hit*: the replay pins the
  current MVCC snapshot instead of re-planning.

All operations are lock-protected; worker threads share one cache.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.catalog.catalog import Catalog, event_class
from repro.storage.locks import make_lock
from repro.serve.plan import CachedPlan

#: Default maximum number of cached plans.
DEFAULT_CAPACITY = 128


@dataclass(frozen=True)
class CacheStats:
    """Counters since construction (or the last ``reset``)."""

    hits: int
    misses: int
    invalidations: int
    evictions: int
    size: int
    capacity: int
    #: Hits on entries built before the latest data change — served by
    #: pinning the current snapshot rather than re-planning.
    snapshot_pin_hits: int = 0
    #: Memoized temp materializations flushed by data events (private
    #: memo flushes plus shared entries purged by data events).
    memo_flushes: int = 0
    #: Temp materializations published to the cross-plan sharing
    #: registry (each built exactly once for all consuming plans).
    shared_materializations: int = 0
    #: Registry hits by a plan other than the publisher — work one
    #: cached query materialized that another query then reused.
    shared_hits: int = 0
    #: Shared materializations dropped by eager invalidation (schema
    #: and data events both purge: every registry key embeds the
    #: version pair, so stale entries are purely reclaimable pages).
    shared_purges: int = 0

    def format(self) -> str:
        total = self.hits + self.misses
        rate = (100.0 * self.hits / total) if total else 0.0
        return (
            f"plan cache: {self.size}/{self.capacity} entries, "
            f"{self.hits} hit(s), {self.misses} miss(es) "
            f"({rate:.1f}% hit rate), "
            f"{self.invalidations} invalidation(s), "
            f"{self.evictions} eviction(s), "
            f"{self.snapshot_pin_hits} snapshot-pin hit(s), "
            f"{self.memo_flushes} memo flush(es), "
            f"{self.shared_materializations} shared materialization(s), "
            f"{self.shared_hits} cross-query hit(s), "
            f"{self.shared_purges} shared purge(s)"
        )


class PlanCache:
    """Bounded LRU of :class:`~repro.serve.plan.CachedPlan` objects."""

    def __init__(
        self, capacity: int = DEFAULT_CAPACITY, sharing: bool = True
    ) -> None:
        from repro.serve.sharing import SharedSubplanRegistry

        if capacity < 1:
            raise ValueError(f"plan cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[tuple, CachedPlan] = OrderedDict()
        self._lock = make_lock("serve.plan_cache")
        #: Cross-plan shared materializations (see repro.serve.sharing);
        #: None disables sharing (plans fall back to private memos).
        self.sharing = SharedSubplanRegistry() if sharing else None
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0
        self.snapshot_pin_hits = 0
        self.memo_flushes = 0

    # -- wiring ------------------------------------------------------------

    def attach(self, catalog: Catalog) -> None:
        """Invalidate on schema changes; flush temp memos on data changes."""
        catalog.add_change_hook(self._on_catalog_change)

    def _on_catalog_change(self, event: str, table: str) -> None:
        if event_class(event) == "data":
            with self._lock:
                for plan in self._entries.values():
                    if plan.data_changed():
                        self.memo_flushes += 1
            if self.sharing is not None:
                # Every registry key embeds the data version, so the
                # entries can never be hit again; reclaim their pages.
                self.sharing.purge_all("data")
            return
        with self._lock:
            if self._entries:
                self.invalidations += len(self._entries)
                for plan in self._entries.values():
                    plan.release()
                self._entries.clear()
        if self.sharing is not None:
            # Plans built outside this cache (prepared statements) may
            # hold registry entries too; purge those as well.
            self.sharing.purge_all("schema")

    # -- access ------------------------------------------------------------

    def lookup(
        self, key: tuple, schema_version: int, data_version: int = -1
    ) -> CachedPlan | None:
        """The cached plan for ``key`` valid at ``schema_version``, or None.

        A schema-version mismatch counts as an invalidation *and* a
        miss: the stale entry is dropped and the caller rebuilds.  A
        *data*-version difference is a hit — the plan survives inserts
        by construction — recorded in ``snapshot_pin_hits``.
        """
        with self._lock:
            plan = self._entries.get(key)
            if plan is None:
                self.misses += 1
                return None
            if plan.catalog_version != schema_version:
                del self._entries[key]
                plan.release()
                self.invalidations += 1
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            if data_version >= 0 and plan.data_version != data_version:
                self.snapshot_pin_hits += 1
            return plan

    def store(self, key: tuple, plan: CachedPlan) -> None:
        with self._lock:
            replaced = self._entries.pop(key, None)
            if replaced is not None and replaced is not plan:
                replaced.release()
            while len(self._entries) >= self.capacity:
                _key, evicted = self._entries.popitem(last=False)
                evicted.release()
                self.evictions += 1
            self._entries[key] = plan

    def clear(self) -> None:
        with self._lock:
            for plan in self._entries.values():
                plan.release()
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> CacheStats:
        registry = self.sharing
        with self._lock:
            return CacheStats(
                hits=self.hits,
                misses=self.misses,
                invalidations=self.invalidations,
                evictions=self.evictions,
                size=len(self._entries),
                capacity=self.capacity,
                snapshot_pin_hits=self.snapshot_pin_hits,
                memo_flushes=self.memo_flushes
                + (registry.data_purges if registry is not None else 0),
                shared_materializations=(
                    registry.materializations if registry is not None else 0
                ),
                shared_hits=registry.cross_hits if registry is not None else 0,
                shared_purges=registry.purges if registry is not None else 0,
            )

    def reset_stats(self) -> None:
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.invalidations = 0
            self.evictions = 0
            self.snapshot_pin_hits = 0
            self.memo_flushes = 0
        if self.sharing is not None:
            self.sharing.reset_stats()
