"""SQL normalization for plan-cache keying.

Two queries that differ only in predicate literal values —
``QOH = 100`` vs ``QOH = 200`` — share one transformed plan shape, so
they should share one cache entry.  :func:`parameterize` rewrites every
non-NULL literal under WHERE/HAVING (at any nesting depth) into a
:class:`~repro.sql.ast.Parameter` and returns the extracted values; the
plan is built once against the parameterized tree and executed with the
literals bound per call.

NULL literals are deliberately *not* parameterized: ``c = NULL`` and
``c IS NULL`` shapes drive three-valued-logic analysis, nullability
inference, and the Kim-bug lint, all of which must see the NULL at plan
time.  Literals outside predicates (SELECT items, GROUP BY, ORDER BY)
are also left alone — they name output columns and ordering, and
varying them legitimately changes the plan's output shape.

:func:`fingerprint` renders the parameterized tree back to SQL text via
the printer, which canonicalizes whitespace, keyword case, identifier
case, and operator spellings — so textual variants of the same query
normalize to the same key.
"""

from __future__ import annotations

import itertools
from dataclasses import replace

from repro.sql.ast import (
    And,
    Between,
    BinaryArith,
    ColumnRef,
    Comparison,
    Exists,
    Expr,
    FuncCall,
    InList,
    InSubquery,
    IsNull,
    Literal,
    Node,
    Not,
    Or,
    OrderItem,
    Parameter,
    Quantified,
    ScalarSubquery,
    Select,
    SelectItem,
    Star,
    UnaryMinus,
    walk,
)
from repro.sql.printer import to_sql


def rewrite_leaves(node: Node, leaf) -> Node:
    """Rebuild a tree bottom-up, applying ``leaf`` to every leaf expression.

    ``leaf`` receives each :class:`Literal`/:class:`Parameter`/
    :class:`ColumnRef`/:class:`Star` and returns a replacement (or the
    node unchanged).  Composite nodes are rebuilt only when a child
    actually changed, so untouched subtrees keep identity.
    """
    if isinstance(node, (Literal, Parameter, ColumnRef, Star)):
        return leaf(node)
    if isinstance(node, FuncCall):
        arg = rewrite_leaves(node.arg, leaf)
        return node if arg is node.arg else replace(node, arg=arg)
    if isinstance(node, UnaryMinus):
        operand = rewrite_leaves(node.operand, leaf)
        return node if operand is node.operand else replace(node, operand=operand)
    if isinstance(node, BinaryArith):
        left = rewrite_leaves(node.left, leaf)
        right = rewrite_leaves(node.right, leaf)
        if left is node.left and right is node.right:
            return node
        return replace(node, left=left, right=right)
    if isinstance(node, ScalarSubquery):
        query = rewrite_leaves(node.query, leaf)
        return node if query is node.query else replace(node, query=query)
    if isinstance(node, Comparison):
        left = rewrite_leaves(node.left, leaf)
        right = rewrite_leaves(node.right, leaf)
        if left is node.left and right is node.right:
            return node
        return replace(node, left=left, right=right)
    if isinstance(node, IsNull):
        operand = rewrite_leaves(node.operand, leaf)
        return node if operand is node.operand else replace(node, operand=operand)
    if isinstance(node, InList):
        operand = rewrite_leaves(node.operand, leaf)
        items = tuple(rewrite_leaves(item, leaf) for item in node.items)
        if operand is node.operand and all(
            a is b for a, b in zip(items, node.items)
        ):
            return node
        return replace(node, operand=operand, items=items)
    if isinstance(node, InSubquery):
        operand = rewrite_leaves(node.operand, leaf)
        query = rewrite_leaves(node.query, leaf)
        if operand is node.operand and query is node.query:
            return node
        return replace(node, operand=operand, query=query)
    if isinstance(node, Exists):
        query = rewrite_leaves(node.query, leaf)
        return node if query is node.query else replace(node, query=query)
    if isinstance(node, Quantified):
        operand = rewrite_leaves(node.operand, leaf)
        query = rewrite_leaves(node.query, leaf)
        if operand is node.operand and query is node.query:
            return node
        return replace(node, operand=operand, query=query)
    if isinstance(node, Between):
        operand = rewrite_leaves(node.operand, leaf)
        low = rewrite_leaves(node.low, leaf)
        high = rewrite_leaves(node.high, leaf)
        if operand is node.operand and low is node.low and high is node.high:
            return node
        return replace(node, operand=operand, low=low, high=high)
    if isinstance(node, (And, Or)):
        operands = tuple(rewrite_leaves(op, leaf) for op in node.operands)
        if all(a is b for a, b in zip(operands, node.operands)):
            return node
        return replace(node, operands=operands)
    if isinstance(node, Not):
        operand = rewrite_leaves(node.operand, leaf)
        return node if operand is node.operand else replace(node, operand=operand)
    if isinstance(node, SelectItem):
        expr = rewrite_leaves(node.expr, leaf)
        return node if expr is node.expr else replace(node, expr=expr)
    if isinstance(node, OrderItem):
        expr = rewrite_leaves(node.expr, leaf)
        return node if expr is node.expr else replace(node, expr=expr)
    if isinstance(node, Select):
        items = tuple(rewrite_leaves(item, leaf) for item in node.items)
        where = (
            rewrite_leaves(node.where, leaf) if node.where is not None else None
        )
        group_by = tuple(rewrite_leaves(e, leaf) for e in node.group_by)
        having = (
            rewrite_leaves(node.having, leaf)
            if node.having is not None
            else None
        )
        order_by = tuple(rewrite_leaves(i, leaf) for i in node.order_by)
        return replace(
            node,
            items=items,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
        )
    raise TypeError(f"cannot rewrite {type(node).__name__}")


def user_param_count(select: Select) -> int:
    """Number of parameter slots the user's SQL declares (0 if none)."""
    highest = -1
    for node in walk(select):
        if isinstance(node, Parameter):
            highest = max(highest, node.index)
    return highest + 1


def parameterize(select: Select) -> tuple[Select, tuple[object, ...]]:
    """Extract predicate literals into parameters.

    Returns ``(normalized_select, extracted_values)``.  Extracted
    literal slots are numbered after any user-declared parameters, so a
    caller binds ``user_values + extracted_values``.
    """
    counter = itertools.count(user_param_count(select))
    extracted: list[object] = []

    def leaf(expr: Expr) -> Expr:
        if isinstance(expr, Literal) and expr.value is not None:
            extracted.append(expr.value)
            return Parameter(next(counter))
        return expr

    where = (
        rewrite_leaves(select.where, leaf) if select.where is not None else None
    )
    having = (
        rewrite_leaves(select.having, leaf)
        if select.having is not None
        else None
    )
    return replace(select, where=where, having=having), tuple(extracted)


def substitute_params(node: Node, values: tuple[object, ...]) -> Node:
    """Replace every parameter with the corresponding literal value.

    Used for "custom plans": when a plan's shape depends on parameter
    values (a type-A block under a parameter), the serving layer plans
    the fully-literal query per distinct vector.
    """

    def leaf(expr: Expr) -> Expr:
        if isinstance(expr, Parameter):
            return Literal(values[expr.index])
        return expr

    return rewrite_leaves(node, leaf)


def fingerprint(select: Select) -> str:
    """The cache key's SQL component for an already-normalized tree."""
    return to_sql(select)
