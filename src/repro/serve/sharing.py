"""Cross-query shared subplans: fingerprints + materialization registry.

The decorrelation transforms produce highly shareable temp tables by
construction: two different cached queries over the same base tables
routinely need the *same* distinct-key temp, the same restricted inner
projection, or the same grouped-aggregate temp (the NEST-JA2 chain).
Until now each :class:`~repro.serve.plan.CachedPlan` materialized its
own copies and memoized them privately.  This module generalizes that
memo across plans, the multi-query-optimization step the plan cache's
design has been building toward (Roy et al., "Efficient and Extensible
Algorithms for Multi Query Optimization"; see PAPERS.md).

Two pieces:

* :func:`compute_share_specs` — structural fingerprints for a
  transform's temp-table definitions.  A definition's fingerprint is a
  hash of its canonical SQL with plan-local temp names replaced by the
  fingerprints of the definitions they refer to, so it is *cumulative*:
  equal fingerprints imply structurally identical upstream chains.
  Positional parameters print as bare ``?`` and are therefore
  index-canonical; the parameter *slots* a definition reads
  (transitively) are extracted separately, in deterministic AST order,
  so equal-fingerprint definitions from different plans agree on which
  bound values select a materialization.

* :class:`SharedSubplanRegistry` — one per plan cache.  Keys are
  ``(fingerprint, engine share-config, schema_version, data_version,
  bound parameter values)``; a registered entry is a materialized heap
  plus its column names.  Consuming plans hold refcounted handles
  (``holders``), in-flight replays pin entries (``active``), and the
  same deferred-truncation discipline as the private temp memo applies:
  eager invalidation marks an entry purged, the last replay out frees
  the pages.  Data and schema events purge everything — every key
  embeds the version pair, so a stale entry could never be *hit*;
  purging reclaims its pages eagerly.

MVCC correctness falls out of the keying: an entry is only ever served
to a replay pinned to the exact snapshot ``data_version`` the entry was
built under, and replays running under a transaction's read-your-writes
overlay bypass the registry entirely (their temps may contain
uncommitted rows no other reader must see).
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass

from repro.storage.locks import make_lock
from repro.sql.ast import Comparison, Parameter, walk
from repro.sql.printer import to_sql

#: Soft bound on registered materializations.  Publication past the cap
#: evicts the least-recently-used idle entry; entries pinned by
#: in-flight replays are never evicted (the cap is soft).
DEFAULT_SHARED_CAP = 128


@dataclass(frozen=True)
class ShareSpec:
    """Sharing identity of one temp-table definition.

    Attributes:
        fingerprint: cumulative structural hash (hex digest).
        param_slots: parameter-vector indices the definition reads,
            directly or through upstream temps, in deterministic order.
    """

    fingerprint: str
    param_slots: tuple[int, ...]


def _canonical_text(query, token_by_name: dict[str, str]) -> str:
    """Render ``query`` with plan-local temp names replaced by tokens.

    Temp names are generated per plan build (``TEMP_17`` ...), so the
    raw SQL of structurally identical definitions differs; substituting
    each upstream name with that definition's fingerprint token makes
    the text — and hence the hash — plan-independent.  Names come from
    ``Catalog.create_temp_name``, which never hands out a name an
    existing table holds, so a word-boundary replacement cannot touch
    user tables.  The printer renders every outer-join comparison as
    ``op+`` regardless of which side is preserved, so the preserved-side
    markers are appended explicitly.
    """
    text = to_sql(query)
    for name in sorted(token_by_name, key=len, reverse=True):
        text = re.sub(rf"\b{re.escape(name)}\b", token_by_name[name], text)
    markers = [
        node.outer
        for node in walk(query)
        if isinstance(node, Comparison) and node.outer is not None
    ]
    if markers:
        text += " /*outer:" + ",".join(markers) + "*/"
    return text


def _own_slots(query) -> tuple[int, ...]:
    """Parameter slots ``query`` reads directly, in first-seen AST order."""
    seen: list[int] = []
    for node in walk(query):
        if isinstance(node, Parameter) and node.index not in seen:
            seen.append(node.index)
    return tuple(seen)


def compute_share_specs(transform) -> tuple[ShareSpec, ...]:
    """Fingerprint every setup definition of a transform, in build order."""
    specs: list[ShareSpec] = []
    token_by_name: dict[str, str] = {}
    slots_by_name: dict[str, tuple[int, ...]] = {}
    for definition in transform.setup:
        raw = to_sql(definition.query)
        slots: list[int] = []
        for name in token_by_name:  # insertion order == chain order
            if re.search(rf"\b{re.escape(name)}\b", raw):
                for slot in slots_by_name[name]:
                    if slot not in slots:
                        slots.append(slot)
        for slot in _own_slots(definition.query):
            if slot not in slots:
                slots.append(slot)
        digest = hashlib.sha256(
            _canonical_text(definition.query, token_by_name).encode()
        ).hexdigest()
        specs.append(ShareSpec(fingerprint=digest, param_slots=tuple(slots)))
        token_by_name[definition.name] = f"§{digest[:16]}"
        slots_by_name[definition.name] = tuple(slots)
    return tuple(specs)


class SharedEntry:
    """One shared materialization: a heap, its columns, and its pins."""

    __slots__ = (
        "key", "heap", "columns", "publisher", "holders", "active", "purged"
    )

    def __init__(self, key, heap, columns, publisher_fp, holder_id) -> None:
        self.key = key
        self.heap = heap
        self.columns = columns
        #: Query fingerprint of the publishing plan — a hit from a plan
        #: with a different fingerprint is a *cross-query* hit.
        self.publisher = publisher_fp
        #: ids of consuming CachedPlans; emptied by plan.release().
        self.holders: set[int] = {holder_id}
        #: In-flight replays reading the heap right now.
        self.active = 1
        #: Entry was invalidated/evicted; last lease out truncates.
        self.purged = False


class SharedSubplanRegistry:
    """Shared-materialization registry, one per :class:`PlanCache`."""

    def __init__(self, capacity: int = DEFAULT_SHARED_CAP) -> None:
        if capacity < 1:
            raise ValueError(
                f"shared-subplan capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self._lock = make_lock("serve.shared_subplans")
        self._entries: dict[tuple, SharedEntry] = {}
        #: plan id -> keys of entries the plan holds (refcount handles).
        self._held: dict[int, set[tuple]] = {}
        self.materializations = 0
        #: Hits by a plan other than the publisher.
        self.cross_hits = 0
        self.data_purges = 0
        self.schema_purges = 0

    # -- leases ------------------------------------------------------------

    def acquire(self, key: tuple, plan) -> SharedEntry | None:
        """Lease the entry for ``key``, or None on a miss.

        A lease pins the heap against truncation until
        :meth:`release_lease`; the consuming plan is also recorded as a
        holder so the entry outlives LRU churn while the plan is cached.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            # Re-insertion refreshes recency (dicts preserve order).
            del self._entries[key]
            self._entries[key] = entry
            entry.active += 1
            holder = id(plan)
            if holder not in entry.holders:
                entry.holders.add(holder)
                self._held.setdefault(holder, set()).add(key)
            if entry.publisher != plan.fingerprint:
                self.cross_hits += 1
            return entry

    def publish(
        self, key: tuple, heap, columns, plan, current_data_version: int
    ) -> SharedEntry | None:
        """Register a freshly built materialization; returns its lease.

        Returns None — and the caller keeps the heap private — when a
        concurrent replay already published the key, or when a commit
        landed after this replay pinned its snapshot (the key's data
        version is no longer current, so the entry would be stillborn:
        purgeable on arrival and only hittable by already-pinned
        readers).
        """
        data_version = key[3]
        with self._lock:
            if key in self._entries or data_version != current_data_version:
                return None
            holder = id(plan)
            entry = SharedEntry(key, heap, columns, plan.fingerprint, holder)
            self._entries[key] = entry
            self._held.setdefault(holder, set()).add(key)
            self.materializations += 1
            self._evict_over_capacity_locked()
            return entry

    def release_lease(self, entry: SharedEntry) -> None:
        """Return a lease; the last one out of a purged entry frees it."""
        with self._lock:
            entry.active -= 1
            if entry.purged and entry.active == 0:
                entry.heap.truncate()

    # -- refcounted holders ------------------------------------------------

    def drop_holder(self, plan) -> None:
        """Release every entry ``plan`` holds (plan eviction/release).

        Entries with no remaining holders are freed — no cached plan
        can reach them any more.  Safe to call twice (double release):
        the holder set is popped on the first call.
        """
        keys = None
        with self._lock:
            keys = self._held.pop(id(plan), None)
            if not keys:
                return
            for key in keys:
                entry = self._entries.get(key)
                if entry is None:
                    continue
                entry.holders.discard(id(plan))
                if not entry.holders:
                    del self._entries[key]
                    entry.purged = True
                    if entry.active == 0:
                        entry.heap.truncate()

    # -- invalidation ------------------------------------------------------

    def purge_all(self, reason: str = "data") -> int:
        """Eagerly drop every entry (catalog change); returns the count.

        Keys embed the schema/data version pair, so post-change lookups
        could never hit these entries anyway — purging reclaims pages.
        Truncation defers to the last in-flight lease, exactly like the
        private temp memo.
        """
        with self._lock:
            purged = len(self._entries)
            for entry in self._entries.values():
                entry.purged = True
                if entry.active == 0:
                    entry.heap.truncate()
            self._entries.clear()
            self._held.clear()
            if reason == "schema":
                self.schema_purges += purged
            else:
                self.data_purges += purged
            return purged

    def _evict_over_capacity_locked(self) -> None:
        """Drop least-recently-used idle entries past the soft cap."""
        if len(self._entries) <= self.capacity:
            return
        for key in list(self._entries):
            if len(self._entries) <= self.capacity:
                return
            entry = self._entries[key]
            if entry.active:
                continue  # pinned by an in-flight replay: skip
            del self._entries[key]
            entry.purged = True
            entry.heap.truncate()
            for held in self._held.values():
                held.discard(key)

    # -- diagnostics -------------------------------------------------------

    @property
    def purges(self) -> int:
        return self.data_purges + self.schema_purges

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def reset_stats(self) -> None:
        with self._lock:
            self.materializations = 0
            self.cross_hits = 0
            self.data_purges = 0
            self.schema_purges = 0
