"""Batched bindings: run N parameter vectors as ONE set-oriented plan.

``PreparedStatement.executemany`` historically looped — N full replays,
N temp-chain builds, N scans of every base table.  Following
Guravannavar's batched-bindings rewrite (PAPERS.md), this module
derives, from a cached *generic* transform plan, a single plan that
executes the whole batch set-at-a-time:

* the parameter vectors become an in-memory **binding relation**
  ``B(SEQ, P0..Pk-1)`` — one row per vector, ``SEQ`` the vector's
  position in the batch;
* every temp-table definition that reads a parameter (directly or
  through an upstream temp) is rewritten to *join* ``B``: parameter
  markers become ``B.Pi`` column references and a ``BSEQ`` column is
  appended so downstream consumers can tell the sub-results apart;
* the paper's outer-join COUNT discipline survives batching: when the
  padded side of an outer comparison is batched, the preserved side is
  force-batched too and ``preserved.BSEQ =+ padded.BSEQ`` joins the
  seq columns *inside* the outer join, so zero-count groups are padded
  per vector exactly as they would be per execution;
* the final query gains a leading ``BSEQ`` output column; one pass of
  the result rows demultiplexes them back into per-vector results.

The rewrite is purely structural — no data access — so it is derived
once per (plan, schema version) and cached on the statement.  Shapes
the rewrite cannot prove correct (grouped/aggregated final queries,
ORDER BY, full outer joins, dedupe-outer row-id plans, custom/fallback
statements) raise :class:`BatchIneligible` and the statement falls back
to the per-vector loop — under one pinned MVCC snapshot either way, so
a batch can never straddle a concurrent commit.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace

from repro.catalog.schema import Column, ColumnType, TableSchema
from repro.core.pipeline import RunReport
from repro.engine.nested_iteration import QueryResult
from repro.errors import ReproError
from repro.optimizer.executor import SingleLevelExecutor
from repro.serve.normalize import rewrite_leaves
from repro.serve.session import SessionCatalog
from repro.sql.ast import (
    ColumnRef,
    Comparison,
    Parameter,
    Select,
    SelectItem,
    TableRef,
    make_and,
    walk,
)
from repro.sql.printer import to_sql
from repro.storage.stats import IOStats

#: The batch-sequence column appended to every batched relation.
SEQ_COLUMN = "BSEQ"


class BatchIneligible(ReproError):
    """The plan's shape cannot be batched; callers loop per vector."""


@dataclass
class BatchPlan:
    """A derived set-oriented plan for one cached generic plan.

    Attributes:
        binding_name: catalog-unique name of the binding relation.
        binding_columns: ``("SEQ", "P0", ..)`` — vector layout.
        setup: ``(temp name, query)`` per definition, in build order;
            batched definitions carry the rewritten query.
        final_query: the set-oriented final query; its first output
            column is the batch sequence used to demultiplex.
        schema_version: catalog schema version the rewrite was derived
            under (it embeds catalog-unique temp names).
    """

    binding_name: str
    binding_columns: tuple[str, ...]
    setup: tuple[tuple[str, Select], ...]
    final_query: Select
    schema_version: int


@dataclass
class BatchReport:
    """Outcome of one ``execute_batch`` call.

    ``reports`` holds one :class:`RunReport` per input vector, in input
    order, regardless of strategy.  Under the batched strategy the
    whole batch's I/O and steps are carried by the first report (the
    work is genuinely shared; attributing it per vector would be
    fiction) and ``io`` repeats the total.
    """

    reports: list[RunReport]
    strategy: str  # "batched" | "loop"
    batch_size: int
    io: IOStats

    def summary(self) -> str:
        return (
            f"{self.strategy} batch of {self.batch_size}: "
            f"{self.io.page_reads} page read(s), "
            f"{self.io.page_writes} page write(s)"
        )


def _uses_parameter(query: Select) -> bool:
    return any(isinstance(node, Parameter) for node in walk(query))


def _require_batchable_block(query: Select, label: str) -> None:
    """Per-block guards shared by definitions and the final query."""
    if query.order_by:
        raise BatchIneligible(f"{label} has ORDER BY")
    if re.search(rf"\b{SEQ_COLUMN}\b", to_sql(query)):
        raise BatchIneligible(f"{label} already names {SEQ_COLUMN}")


def _outer_comparisons(query: Select) -> list[Comparison]:
    return [
        node
        for node in walk(query)
        if isinstance(node, Comparison) and node.outer is not None
    ]


def _rewrite_parameters(query: Select, binding_name: str) -> Select:
    def leaf(expr):
        if isinstance(expr, Parameter):
            return ColumnRef(binding_name, f"P{expr.index}")
        return expr

    return rewrite_leaves(query, leaf)


def _rewrite_definition(
    query: Select, batched_names: set[str], binding_name: str
) -> Select:
    """Thread the binding relation through one temp-table definition.

    Returns the definition's query extended with a trailing ``BSEQ``
    output column (original column positions are untouched) and with
    seq-equality predicates tying every batched input — and the binding
    relation itself, when the definition reads parameters — to one
    batch sequence per output row.
    """
    _require_batchable_block(query, "temp definition")
    if query.has_aggregate_select() and not query.group_by:
        raise BatchIneligible(
            "scalar aggregate without GROUP BY collapses across the batch"
        )
    name_of = {ref.binding: ref.name for ref in query.from_tables}
    batched_bindings = [
        ref.binding
        for ref in query.from_tables
        if ref.name in batched_names
    ]
    add_binding = _uses_parameter(query) or not batched_bindings
    rewritten = _rewrite_parameters(query, binding_name)

    # Outer comparisons: when the padded side is batched, its seq column
    # is NULL on padded rows, so the seq join must ride *inside* the
    # outer join (preserved.BSEQ =+ padded.BSEQ) — this is what keeps
    # the COUNT bug fix of section 5.2 correct per vector.
    covered: set[str] = set()
    seq_predicates: list[Comparison] = []
    for comparison in _outer_comparisons(rewritten):
        if comparison.outer != "left":
            raise BatchIneligible(
                f"unsupported outer-join orientation {comparison.outer!r}"
            )
        left, right = comparison.left, comparison.right
        if not (
            isinstance(left, ColumnRef)
            and isinstance(right, ColumnRef)
            and left.table
            and right.table
        ):
            raise BatchIneligible("outer comparison over non-column operands")
        preserved, padded = left.table, right.table
        if name_of.get(padded) not in batched_names:
            continue  # padded side is batch-invariant: nothing to tie
        if name_of.get(preserved) not in batched_names:
            # classify_definitions force-batches preserved sides; a
            # miss here means the preserved side is not a chain temp.
            raise BatchIneligible(
                "outer join pads a batched input against an unbatched one"
            )
        if padded not in covered:
            covered.add(padded)
            seq_predicates.append(
                Comparison(
                    ColumnRef(preserved, SEQ_COLUMN),
                    "=",
                    ColumnRef(padded, SEQ_COLUMN),
                    outer="left",
                )
            )

    sources: list[ColumnRef] = []
    if add_binding:
        sources.append(ColumnRef(binding_name, "SEQ"))
    for binding in batched_bindings:
        if binding not in covered:
            sources.append(ColumnRef(binding, SEQ_COLUMN))
    seq_predicates.extend(
        Comparison(sources[0], "=", source) for source in sources[1:]
    )

    from_tables = rewritten.from_tables
    if add_binding:
        from_tables = from_tables + (TableRef(binding_name),)
    group_by = rewritten.group_by
    if group_by:
        group_by = group_by + (sources[0],)
    return replace(
        rewritten,
        items=rewritten.items + (SelectItem(sources[0], alias=SEQ_COLUMN),),
        from_tables=from_tables,
        where=make_and([rewritten.where, *seq_predicates]),
        group_by=group_by,
    )


def _rewrite_final(
    query: Select, batched_names: set[str], binding_name: str
) -> Select:
    """Prepend the demux ``BSEQ`` column to the final query."""
    _require_batchable_block(query, "final query")
    if query.group_by or query.has_aggregate_select():
        raise BatchIneligible("final query aggregates across the batch")
    if _outer_comparisons(query):
        raise BatchIneligible("final query contains an outer join")
    batched_bindings = [
        ref.binding
        for ref in query.from_tables
        if ref.name in batched_names
    ]
    add_binding = _uses_parameter(query)
    if not batched_bindings and not add_binding:
        raise BatchIneligible("final query is batch-invariant")
    rewritten = _rewrite_parameters(query, binding_name)
    sources: list[ColumnRef] = []
    if add_binding:
        sources.append(ColumnRef(binding_name, "SEQ"))
    sources.extend(
        ColumnRef(binding, SEQ_COLUMN) for binding in batched_bindings
    )
    seq_predicates = [
        Comparison(sources[0], "=", source) for source in sources[1:]
    ]
    from_tables = rewritten.from_tables
    if add_binding:
        from_tables = from_tables + (TableRef(binding_name),)
    return replace(
        rewritten,
        items=(SelectItem(sources[0], alias=SEQ_COLUMN),) + rewritten.items,
        from_tables=from_tables,
        where=make_and([rewritten.where, *seq_predicates]),
    )


def classify_definitions(transform) -> set[str]:
    """Names of temp definitions that must be batched, to a fixpoint.

    A definition is batched when it reads a parameter or a batched
    upstream temp; the *preserved* side of an outer join whose padded
    side is batched is force-batched too (every preserved row needs a
    per-vector copy for the padding to be per-vector).
    """
    definitions = list(transform.setup)
    temp_names = {definition.name for definition in definitions}
    batched = {
        definition.name
        for definition in definitions
        if _uses_parameter(definition.query)
    }
    changed = True
    while changed:
        changed = False
        for definition in definitions:
            if definition.name in batched:
                continue
            if any(
                ref.name in batched for ref in definition.query.from_tables
            ):
                batched.add(definition.name)
                changed = True
        for definition in definitions:
            if definition.name not in batched:
                continue
            name_of = {
                ref.binding: ref.name
                for ref in definition.query.from_tables
            }
            for comparison in _outer_comparisons(definition.query):
                left, right = comparison.left, comparison.right
                if not (
                    isinstance(left, ColumnRef) and isinstance(right, ColumnRef)
                ):
                    continue
                preserved, padded = left.table, right.table
                if comparison.outer == "right":
                    preserved, padded = padded, preserved
                if name_of.get(padded) not in batched:
                    continue
                preserved_name = name_of.get(preserved)
                if preserved_name in batched:
                    continue
                if preserved_name not in temp_names:
                    raise BatchIneligible(
                        "outer join preserves a base table against a "
                        "batched padded side"
                    )
                batched.add(preserved_name)
                changed = True
    return batched


def build_batch_plan(plan, catalog) -> BatchPlan:
    """Derive the set-oriented batch plan for a cached generic plan.

    Purely structural — reads no data.  Raises :class:`BatchIneligible`
    for shapes the rewrite cannot prove equivalent to the loop.
    """
    if plan.kind != "transform" or plan.transform is None:
        raise BatchIneligible("only transform plans batch")
    if plan.strip or plan.final_query is None:
        raise BatchIneligible("dedupe-outer row-id plans do not batch")
    if plan.param_count < 1:
        raise BatchIneligible("statement has no parameters")
    batched = classify_definitions(plan.transform)
    binding_name = catalog.create_temp_name("BIND")
    setup: list[tuple[str, Select]] = []
    for definition in plan.transform.setup:
        if definition.name in batched:
            setup.append(
                (
                    definition.name,
                    _rewrite_definition(
                        definition.query, batched, binding_name
                    ),
                )
            )
        else:
            setup.append((definition.name, definition.query))
    final_query = _rewrite_final(plan.final_query, batched, binding_name)
    columns = ("SEQ",) + tuple(f"P{i}" for i in range(plan.param_count))
    return BatchPlan(
        binding_name=binding_name,
        binding_columns=columns,
        setup=tuple(setup),
        final_query=final_query,
        schema_version=plan.catalog_version,
    )


def execute_batch_plan(
    plan, batch_plan: BatchPlan, catalog, vectors: list[tuple]
) -> list[RunReport]:
    """Run the whole batch as one plan; per-vector reports, input order.

    The catalog read lock and one MVCC snapshot cover the entire batch:
    every vector's result reflects the same committed state.  Temps
    (including the binding relation) live in a private session overlay
    and are dropped on the way out; unbatched definitions are built
    once and serve every vector.
    """
    from repro.engine.params import bound_params

    session = SessionCatalog(catalog)
    before = session.buffer.stats()
    steps = [f"bind {len(vectors)} vector(s)"]
    with (
        catalog.read_lock(),
        catalog.snapshots.pinned(),
        bound_params(()),
    ):
        schema = TableSchema(
            batch_plan.binding_name,
            tuple(
                Column(name, ColumnType.ANY)
                for name in batch_plan.binding_columns
            ),
        )
        session.create_table(schema, is_temp=True)
        session.insert(
            batch_plan.binding_name,
            [(seq, *vector) for seq, vector in enumerate(vectors)],
        )
        # The rewritten definitions join everything against the binding
        # relation, so intermediates are up to N times larger than their
        # per-vector counterparts; sort-based physical operators (merge
        # joins, sorted DISTINCT/GROUP BY) would spend the batching win
        # sorting them, and tuple-at-a-time evaluation pays per-row
        # interpretation over the inflated inputs.  The derived plan
        # therefore always runs with hash physical operators over the
        # vectorized engine — build/probe joins, hash dedup, hash
        # aggregation, columnar batches — regardless of how the
        # statement itself is configured.  Results are engine-invariant
        # (the difftest legs cross engines), so this is a pure physical
        # choice.
        try:
            for name, query in batch_plan.setup:
                executor = SingleLevelExecutor(
                    session, "hash", verify=False,
                    engine="vectorized",
                    parallelism=plan.parallelism,
                    parallel_threshold=plan.parallel_threshold,
                )
                relation = executor.execute(query)
                session.register_temp(
                    name, relation.heap, executor.output_names(query)
                )
                steps.append(f"built {name}")
            final = SingleLevelExecutor(
                session, "hash", verify=False,
                engine="vectorized",
                parallelism=plan.parallelism,
                parallel_threshold=plan.parallel_threshold,
            )
            relation = final.execute(batch_plan.final_query)
            steps.append("final (batched)")
            rows = relation.to_list()
        finally:
            session.drop_temp_tables()
    columns = final.output_names(plan.transform.query)
    io = session.buffer.stats() - before
    by_seq: dict[int, list[tuple]] = {}
    for row in rows:
        by_seq.setdefault(row[0], []).append(tuple(row[1:]))
    canonical = to_sql(plan.transform.query)
    reports = []
    for seq in range(len(vectors)):
        reports.append(
            RunReport(
                result=QueryResult(
                    columns=columns, rows=by_seq.get(seq, [])
                ),
                io=io if seq == 0 else IOStats(),
                method="batched-transform",
                join_method="hash",
                canonical_sql=canonical,
                steps=steps if seq == 0 else [],
            )
        )
    return reports


def total_io(reports: list[RunReport]) -> IOStats:
    """Sum the I/O of per-vector reports (loop-strategy aggregation)."""
    return IOStats(
        page_reads=sum(r.io.page_reads for r in reports),
        page_writes=sum(r.io.page_writes for r in reports),
        buffer_hits=sum(r.io.buffer_hits for r in reports),
    )
