"""Prepared statements: plan once, bind and execute many times.

``Engine.prepare(sql)`` parses and plans a statement with ``?`` or
``:name`` markers once; each ``execute(values)`` binds the vector
straight into the already-compiled plan (closures read parameters
through a context variable, so nothing is recompiled) and replays it.

Three modes, chosen automatically at prepare time:

* **generic** — one parameterized plan serves every vector (the common
  case; what real systems call a generic plan);
* **custom** — the plan's shape depends on parameter values (a bind
  parameter inside a type-A block whose result is folded into the plan
  as a constant); a small per-vector plan cache is kept instead,
  mirroring the generic-vs-custom plan split in production databases;
* **fallback** — the query cannot be served from a cached plan at all
  (see :class:`~repro.serve.plan.NonCacheablePlan`); each execute runs
  the full pipeline in a private session.

Every mode re-checks the catalog's *schema* version per execute and
re-plans (re-running verification and lint) when it moved — DDL between
executions can never leave a stale plan running.  Plain inserts bump
only the data version: the plan survives and its replay pins the
current MVCC snapshot, so fresh rows appear without re-planning.

Statements are safe to execute from multiple threads concurrently.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Mapping, Sequence

from repro.core.pipeline import Engine, RunReport, prepare_query
from repro.errors import BindError, ParameterizedPlanError, ReproError
from repro.serve.batch import (
    BatchIneligible,
    BatchPlan,
    BatchReport,
    build_batch_plan,
    execute_batch_plan,
    total_io,
)
from repro.serve.binding import check_binding, derive_param_specs
from repro.serve.normalize import fingerprint, substitute_params, user_param_count
from repro.serve.plan import CachedPlan, NonCacheablePlan, build_plan
from repro.serve.session import SessionCatalog
from repro.sql.ast import Parameter, Select, walk
from repro.sql.parser import parse
from repro.storage.locks import make_lock

#: Custom-plan (per-vector) cache bound per statement.
_CUSTOM_PLAN_CAP = 16


class PreparedStatement:
    """A parsed, planned, bind-ready statement handle."""

    def __init__(self, engine: Engine, sql: str, method: str = "auto") -> None:
        self.engine = engine
        self.sql = sql
        self.method = method
        self.select: Select = parse(sql)
        self.param_count = user_param_count(self.select)
        self.named_params: dict[str, int] = {}
        for node in walk(self.select):
            if isinstance(node, Parameter) and node.name:
                self.named_params[node.name] = node.index
        self.fingerprint = fingerprint(self.select)
        self._lock = make_lock("serve.prepared")
        self._plan: CachedPlan | None = None
        self._custom: OrderedDict[tuple, CachedPlan] = OrderedDict()
        #: (generic plan, derived batch plan or None) — see executemany.
        self._batch: tuple[CachedPlan, BatchPlan | None] | None = None
        self._specs_version: int | None = None
        self.param_specs = self._derive_specs()
        self.mode = self._plan_initial()

    # -- planning ----------------------------------------------------------

    def _derive_specs(self):
        catalog = self.engine.catalog
        with catalog.read_lock():
            rewritten = prepare_query(
                self.select,
                catalog,
                self.engine.exists_count_mode,
                self.engine.quantifier_mode,
            )
            self._specs_version = catalog.schema_version
            return derive_param_specs(rewritten, catalog, self.param_count)

    def _plan_initial(self) -> str:
        try:
            self._plan = build_plan(
                self.engine, self.select, self.method, self.fingerprint
            )
            return "generic"
        except ParameterizedPlanError:
            return "custom"
        except NonCacheablePlan:
            return "fallback"

    def describe(self) -> str:
        lines = [f"mode: {self.mode}", f"parameters: {self.param_count}"]
        for spec in self.param_specs:
            wanted = (
                " or ".join(t.__name__ for t in spec.allowed_types)
                if spec.allowed_types
                else "any"
            )
            null = "nullable" if spec.allow_null else "not null"
            lines.append(f"  {spec.label()}: {wanted}, {null}")
        if self._plan is not None:
            lines.append(self._plan.describe())
        return "\n".join(lines)

    # -- binding -----------------------------------------------------------

    def _vector(
        self, values: Sequence[object] | Mapping[str, object]
    ) -> tuple[object, ...]:
        if isinstance(values, Mapping):
            vector: list[object] = [_MISSING] * self.param_count
            for name, value in values.items():
                index = self.named_params.get(name.upper())
                if index is None:
                    raise BindError(f"statement has no parameter :{name}")
                vector[index] = value
            missing = [i for i, v in enumerate(vector) if v is _MISSING]
            if missing:
                raise BindError(
                    "missing value(s) for parameter(s) "
                    + ", ".join(str(i + 1) for i in missing)
                )
            return tuple(vector)
        return tuple(values)

    # -- execution ---------------------------------------------------------

    def execute(
        self, values: Sequence[object] | Mapping[str, object] = ()
    ) -> RunReport:
        """Bind ``values`` and run; returns the full run report."""
        vector = self._vector(values)
        catalog = self.engine.catalog
        version = catalog.schema_version
        if self._specs_version != version:
            # Schema/stats moved: re-derive the bind contracts too (a
            # column's type may have changed across drop/recreate).
            self.param_specs = self._derive_specs()
        check_binding(self.param_specs, vector)

        if self.mode == "fallback":
            return self._run_fallback(vector)
        if self.mode == "custom":
            return self._run_custom(vector, version)
        return self._run_generic(vector, version)

    def executemany(
        self, vectors: Sequence[Sequence[object] | Mapping[str, object]]
    ) -> list[RunReport]:
        """Bind and run every vector; one report per vector, in order.

        Generic transform plans run the whole batch as ONE set-oriented
        plan: the vectors become an in-memory binding relation joined
        through the temp chain and final query (see
        :mod:`repro.serve.batch`).  Shapes the batching rewrite cannot
        prove correct fall back to a per-vector loop.  Either way a
        single MVCC snapshot is pinned for the whole batch, so every
        vector's result reflects the same committed state even while
        writers commit concurrently.
        """
        return self.execute_batch(vectors).reports

    def execute_batch(
        self, vectors: Sequence[Sequence[object] | Mapping[str, object]]
    ) -> BatchReport:
        """Like :meth:`executemany`, returning the full batch report."""
        bound = [self._vector(vector) for vector in vectors]
        catalog = self.engine.catalog
        if len(bound) < 2 or self.mode != "generic" or self.param_count == 0:
            return self._loop_batch(bound)
        version = catalog.schema_version
        if self._specs_version != version:
            self.param_specs = self._derive_specs()
        for vector in bound:
            check_binding(self.param_specs, vector)
        with self._lock:
            plan = self._plan
            if plan is None or plan.catalog_version != version:
                if plan is not None:
                    plan.release()
                self._plan = plan = build_plan(
                    self.engine, self.select, self.method, self.fingerprint
                )
            batch_plan = self._batch_plan_for(plan)
        if batch_plan is None:
            return self._loop_batch(bound)
        try:
            reports = execute_batch_plan(plan, batch_plan, catalog, bound)
        except ReproError:
            # A shape the structural guards missed surfaced at run
            # time; remember the plan does not batch and fall back.
            with self._lock:
                self._batch = (plan, None)
            return self._loop_batch(bound)
        return BatchReport(
            reports=reports,
            strategy="batched",
            batch_size=len(bound),
            io=reports[0].io if reports else total_io(reports),
        )

    def _batch_plan_for(self, plan: CachedPlan) -> BatchPlan | None:
        """The derived batch plan for ``plan`` (cached; None = no batch)."""
        cached = self._batch
        if cached is not None and cached[0] is plan:
            return cached[1]
        try:
            batch_plan = build_batch_plan(plan, self.engine.catalog)
        except BatchIneligible:
            batch_plan = None
        self._batch = (plan, batch_plan)
        return batch_plan

    def _loop_batch(self, vectors: list[tuple[object, ...]]) -> BatchReport:
        catalog = self.engine.catalog
        # One snapshot for the whole batch: without this, each execute
        # re-pins and a concurrent commit could split the batch across
        # two data versions.  Reentrant — executes reuse the pin.
        with catalog.snapshots.pinned():
            reports = [self.execute(vector) for vector in vectors]
        return BatchReport(
            reports=reports,
            strategy="loop",
            batch_size=len(vectors),
            io=total_io(reports),
        )

    def _run_generic(
        self, vector: tuple[object, ...], version: int
    ) -> RunReport:
        with self._lock:
            plan = self._plan
            if plan is None or plan.catalog_version != version:
                if plan is not None:
                    plan.release()
                # Re-plan *and* re-verify: build_plan runs the static
                # verifier + lint again against the new catalog state.
                self._plan = plan = build_plan(
                    self.engine, self.select, self.method, self.fingerprint
                )
        return plan.replay(self.engine.catalog, vector)

    def _run_custom(
        self, vector: tuple[object, ...], version: int
    ) -> RunReport:
        with self._lock:
            plan = self._custom.get(vector)
            if plan is not None and plan.catalog_version != version:
                del self._custom[vector]
                plan.release()
                plan = None
            if plan is None:
                literal = substitute_params(self.select, vector)
                plan = build_plan(
                    self.engine, literal, self.method, self.fingerprint
                )
                while len(self._custom) >= _CUSTOM_PLAN_CAP:
                    _vec, evicted = self._custom.popitem(last=False)
                    evicted.release()
                self._custom[vector] = plan
            else:
                self._custom.move_to_end(vector)
        # The vector's values are baked into the custom plan as
        # literals; nothing is left to bind.
        return plan.replay(self.engine.catalog, ())

    def _run_fallback(self, vector: tuple[object, ...]) -> RunReport:
        from repro.engine.params import bound_params

        catalog = self.engine.catalog
        session_engine = Engine(
            SessionCatalog(catalog),
            join_method=self.engine.join_method,
            ja_algorithm=self.engine.ja_algorithm,
            dedupe_inner=self.engine.dedupe_inner,
            dedupe_outer=self.engine.dedupe_outer,
            exists_count_mode=self.engine.exists_count_mode,
            quantifier_mode=self.engine.quantifier_mode,
            verify=self.engine.verify,
            engine=self.engine.engine,
            parallelism=self.engine.parallelism,
            parallel_threshold=self.engine.parallel_threshold,
        )
        with catalog.read_lock(), bound_params(vector):
            return session_engine.run(self.select, method=self.method)


class _Missing:
    def __repr__(self) -> str:  # pragma: no cover
        return "<missing>"


_MISSING = _Missing()
