"""Seeded random generator for differential-test cases.

A :class:`Case` is a (schema, data, query) triple.  The generator is
driven by ``random.Random`` (not wall-clock entropy) so a seed fully
determines the run — ``python -m repro difftest --seed 0`` is
reproducible, and a failing case prints its seed and index.

The grammar deliberately concentrates on the paper's hard spots:

* NULLs appear in every column (the COUNT-bug and three-valued-logic
  territory);
* duplicate-heavy outer relations (Kim's Lemma 1 multiplicity caveat);
* correlated aggregates over every aggregate function, COUNT(*) and
  DISTINCT variants, with *non-equality* correlation operators
  (section 5.3's operator bug);
* EXISTS / NOT EXISTS / ANY / ALL with every comparison operator
  (section 8), including over empty inner sets;
* uncorrelated NOT IN (NEST-A territory) and plain type-N/J nesting.

Data is integer-only over a tiny domain: small domains force
duplicates and join collisions, and they sidestep SQLite type-affinity
noise, so every divergence is a real semantics difference.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.catalog.catalog import Catalog
from repro.catalog.schema import schema
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager

#: column layout of every generated case.
TABLES = {"T": ("A", "B"), "U": ("A", "C")}

_OPS = ("=", "<>", "<", "<=", ">", ">=")
_AGGS = (
    "COUNT({col})",
    "COUNT(*)",
    "COUNT(DISTINCT {col})",
    "SUM({col})",
    "SUM(DISTINCT {col})",
    "MIN({col})",
    "MAX({col})",
    "AVG({col})",
    "AVG(DISTINCT {col})",
)


@dataclass
class Case:
    """One differential-test input: rows per table plus a query."""

    rows: dict[str, list[tuple]]
    sql: str
    seed: int | None = None
    index: int | None = None

    def build_catalog(self, buffer_pages: int = 8) -> Catalog:
        catalog = Catalog(BufferPool(DiskManager(), capacity=buffer_pages))
        for name, columns in TABLES.items():
            catalog.create_table(schema(name, *columns))
            catalog.insert(name, self.rows.get(name, []))
        return catalog

    def describe(self) -> str:
        lines = []
        for name, columns in TABLES.items():
            rows = self.rows.get(name, [])
            lines.append(f"{name}({', '.join(columns)}) = {rows!r}")
        lines.append(f"SQL: {self.sql}")
        return "\n".join(lines)


class CaseGenerator:
    """Draws random cases from the grammar, deterministically by seed."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rng = random.Random(seed)

    # -- data ------------------------------------------------------------

    def value(self, null_weight: float = 0.2) -> int | None:
        if self.rng.random() < null_weight:
            return None
        return self.rng.randint(0, 3)

    def rows_for(self, width: int) -> list[tuple]:
        count = self.rng.randint(0, 6)
        rows = [
            tuple(self.value() for _ in range(width)) for _ in range(count)
        ]
        # Duplicate-heavy: sometimes replay entire rows verbatim.
        if rows and self.rng.random() < 0.4:
            for _ in range(self.rng.randint(1, 3)):
                rows.append(self.rng.choice(rows))
        return rows

    # -- query fragments -------------------------------------------------

    def op(self) -> str:
        return self.rng.choice(_OPS)

    def simple_predicate(self, binding: str, columns: tuple[str, ...]) -> str:
        column = f"{binding}.{self.rng.choice(columns)}"
        roll = self.rng.random()
        if roll < 0.2:
            negated = " NOT" if self.rng.random() < 0.5 else ""
            return f"{column} IS{negated} NULL"
        return f"{column} {self.op()} {self.rng.randint(0, 3)}"

    def maybe_and_simple(self, binding: str, columns: tuple[str, ...]) -> str:
        if self.rng.random() < 0.4:
            return f" AND {self.simple_predicate(binding, columns)}"
        return ""

    # -- nested predicates (inner block always over U) -------------------

    def nested_predicate(self) -> str:
        produce = self.rng.choice(
            (
                self._type_n,
                self._not_in,
                self._type_j,
                self._exists,
                self._quantified,
                self._type_a,
                self._type_ja,
            )
        )
        return produce()

    def _inner_where(self, correlated: bool) -> str:
        conjuncts = []
        if correlated:
            conjuncts.append(f"U.A {self.op()} T.A")
        if self.rng.random() < 0.4:
            conjuncts.append(self.simple_predicate("U", TABLES["U"]))
        return " WHERE " + " AND ".join(conjuncts) if conjuncts else ""

    def _type_n(self) -> str:
        return f"T.A IN (SELECT U.A FROM U{self._inner_where(False)})"

    def _not_in(self) -> str:
        # Uncorrelated only: correlated NOT IN is documented untransformable.
        return f"T.A NOT IN (SELECT U.A FROM U{self._inner_where(False)})"

    def _type_j(self) -> str:
        where = f" WHERE U.C {self.op()} T.B"
        where += self.maybe_and_simple("U", TABLES["U"])
        return f"T.A IN (SELECT U.A FROM U{where})"

    def _exists(self) -> str:
        keyword = "EXISTS" if self.rng.random() < 0.5 else "NOT EXISTS"
        where = self._inner_where(self.rng.random() < 0.8)
        return f"{keyword} (SELECT U.C FROM U{where})"

    def _quantified(self) -> str:
        quantifier = self.rng.choice(("ANY", "ALL"))
        where = self._inner_where(self.rng.random() < 0.5)
        return (
            f"T.B {self.op()} {quantifier} (SELECT U.C FROM U{where})"
        )

    def _type_a(self) -> str:
        agg = self.rng.choice(_AGGS).format(col="U.C")
        return (
            f"T.B {self.op()} (SELECT {agg} FROM U{self._inner_where(False)})"
        )

    def _type_ja(self) -> str:
        agg = self.rng.choice(_AGGS).format(col="U.C")
        where = f" WHERE U.A {self.op()} T.A"
        where += self.maybe_and_simple("U", TABLES["U"])
        return f"T.B {self.op()} (SELECT {agg} FROM U{where})"

    # -- whole queries ---------------------------------------------------

    def query(self) -> str:
        roll = self.rng.random()
        if roll < 0.15:
            return self._flat_query()
        conjuncts = [self.nested_predicate()]
        if self.rng.random() < 0.4:
            conjuncts.append(self.simple_predicate("T", TABLES["T"]))
        self.rng.shuffle(conjuncts)
        return "SELECT T.A, T.B FROM T WHERE " + " AND ".join(conjuncts)

    def _flat_query(self) -> str:
        roll = self.rng.random()
        where = ""
        if self.rng.random() < 0.5:
            where = f" WHERE {self.simple_predicate('T', TABLES['T'])}"
        if roll < 0.4:
            agg = self.rng.choice(_AGGS).format(col="T.B")
            return f"SELECT T.A, {agg} FROM T{where} GROUP BY T.A"
        if roll < 0.7:
            agg = self.rng.choice(_AGGS).format(col="T.B")
            return f"SELECT {agg} FROM T{where}"
        distinct = "DISTINCT " if self.rng.random() < 0.5 else ""
        return f"SELECT {distinct}T.A, T.B FROM T{where}"

    def case(self, index: int | None = None) -> Case:
        rows = {
            name: self.rows_for(len(columns))
            for name, columns in TABLES.items()
        }
        return Case(rows=rows, sql=self.query(), seed=self.seed, index=index)
