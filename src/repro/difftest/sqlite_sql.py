"""Translate the repro AST to SQLite's SQL dialect.

The repro dialect is close enough to SQLite's that most nodes print
verbatim; the differences this module bridges:

* **ANY / ALL** — SQLite does not parse quantified comparisons, so they
  are translated to their exact existential forms::

      x op ANY (SELECT i FROM f WHERE w)
          →  EXISTS (SELECT 1 FROM f WHERE w AND (x op i))
      x op ALL (SELECT i FROM f WHERE w)
          →  NOT EXISTS (SELECT 1 FROM f WHERE w
                         AND ((x op i) IS NOT TRUE))

  Both preserve SQL's three-valued semantics exactly: the ALL form
  fails a row whenever some inner row makes ``x op i`` false *or
  unknown*, which is precisely when three-valued ALL does not hold.

* **null-safe equality** — our ``<=>`` becomes SQLite's ``IS``.

* **identifiers** are double-quoted, so engine-generated names never
  collide with SQLite keywords.

Outer-join comparison markers (``=+``) have no SQLite spelling and
raise :class:`SqliteUnsupported`; they only occur in transformed
queries, which the differential tester never sends to SQLite.
"""

from __future__ import annotations

from repro.sql.ast import (
    And,
    Between,
    BinaryArith,
    ColumnRef,
    Comparison,
    Exists,
    Expr,
    FuncCall,
    InList,
    InSubquery,
    IsNull,
    Literal,
    Not,
    Or,
    Quantified,
    ScalarSubquery,
    Select,
    Star,
    UnaryMinus,
)


class SqliteUnsupported(Exception):
    """The AST has no faithful SQLite spelling."""


def to_sqlite_sql(select: Select) -> str:
    """Render a query block as SQLite SQL."""
    return _select(select)


def _ident(name: str) -> str:
    return '"' + name.replace('"', '""') + '"'


def _select(select: Select) -> str:
    parts = ["SELECT"]
    if select.distinct:
        parts.append("DISTINCT")
    items = []
    for item in select.items:
        rendered = _expr(item.expr)
        if item.alias:
            rendered += f" AS {_ident(item.alias)}"
        items.append(rendered)
    parts.append(", ".join(items))
    if select.from_tables:
        tables = []
        for ref in select.from_tables:
            rendered = _ident(ref.name)
            if ref.alias:
                rendered += f" AS {_ident(ref.alias)}"
            tables.append(rendered)
        parts.append("FROM " + ", ".join(tables))
    if select.where is not None:
        parts.append("WHERE " + _expr(select.where))
    if select.group_by:
        parts.append("GROUP BY " + ", ".join(_expr(e) for e in select.group_by))
    if select.having is not None:
        parts.append("HAVING " + _expr(select.having))
    if select.order_by:
        rendered = []
        for item in select.order_by:
            direction = "DESC" if item.descending else "ASC"
            # The engine orders NULLs first ascending (and therefore
            # last descending); make SQLite match explicitly.
            nulls = "NULLS LAST" if item.descending else "NULLS FIRST"
            rendered.append(f"{_expr(item.expr)} {direction} {nulls}")
        parts.append("ORDER BY " + ", ".join(rendered))
    return " ".join(parts)


def _literal(value: object) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        raise SqliteUnsupported("the repro dialect has no boolean literals")
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    raise SqliteUnsupported(f"cannot render literal {value!r}")


def _expr(expr: Expr) -> str:
    if isinstance(expr, Literal):
        return _literal(expr.value)
    if isinstance(expr, ColumnRef):
        if expr.table:
            return f"{_ident(expr.table)}.{_ident(expr.column)}"
        return _ident(expr.column)
    if isinstance(expr, Star):
        return f"{_ident(expr.table)}.*" if expr.table else "*"
    if isinstance(expr, UnaryMinus):
        return f"(-{_expr(expr.operand)})"
    if isinstance(expr, BinaryArith):
        return f"({_expr(expr.left)} {expr.op} {_expr(expr.right)})"
    if isinstance(expr, FuncCall):
        arg = _expr(expr.arg)
        if expr.distinct:
            arg = f"DISTINCT {arg}"
        return f"{expr.name}({arg})"
    if isinstance(expr, ScalarSubquery):
        return f"({_select(expr.query)})"
    if isinstance(expr, Comparison):
        if expr.outer is not None:
            raise SqliteUnsupported(
                "outer-join comparison markers have no SQLite spelling"
            )
        if expr.null_safe:
            return f"({_expr(expr.left)} IS {_expr(expr.right)})"
        return f"({_expr(expr.left)} {expr.op} {_expr(expr.right)})"
    if isinstance(expr, IsNull):
        op = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"({_expr(expr.operand)} {op})"
    if isinstance(expr, Between):
        keyword = "NOT BETWEEN" if expr.negated else "BETWEEN"
        return (
            f"({_expr(expr.operand)} {keyword} "
            f"{_expr(expr.low)} AND {_expr(expr.high)})"
        )
    if isinstance(expr, InList):
        if not expr.items:
            raise SqliteUnsupported("empty IN list")
        keyword = "NOT IN" if expr.negated else "IN"
        rendered = ", ".join(_expr(item) for item in expr.items)
        return f"({_expr(expr.operand)} {keyword} ({rendered}))"
    if isinstance(expr, InSubquery):
        keyword = "NOT IN" if expr.negated else "IN"
        return f"({_expr(expr.operand)} {keyword} ({_select(expr.query)}))"
    if isinstance(expr, Exists):
        keyword = "NOT EXISTS" if expr.negated else "EXISTS"
        return f"({keyword} ({_select(expr.query)}))"
    if isinstance(expr, Quantified):
        return _quantified(expr)
    if isinstance(expr, And):
        return "(" + " AND ".join(_expr(op) for op in expr.operands) + ")"
    if isinstance(expr, Or):
        return "(" + " OR ".join(_expr(op) for op in expr.operands) + ")"
    if isinstance(expr, Not):
        return f"(NOT {_expr(expr.operand)})"
    raise SqliteUnsupported(f"cannot render {type(expr).__name__}")


def _quantified(expr: Quantified) -> str:
    inner = expr.query
    if inner.group_by or inner.having is not None:
        raise SqliteUnsupported(
            "quantified subqueries with GROUP BY/HAVING are not translated"
        )
    if len(inner.items) != 1 or isinstance(inner.items[0].expr, Star):
        raise SqliteUnsupported("quantified subquery must select one item")
    item = _expr(inner.items[0].expr)
    operand = _expr(expr.operand)
    tables = []
    for ref in inner.from_tables:
        rendered = _ident(ref.name)
        if ref.alias:
            rendered += f" AS {_ident(ref.alias)}"
        tables.append(rendered)
    base = f"SELECT 1 FROM {', '.join(tables)} WHERE "
    guard = f"{_expr(inner.where)} AND " if inner.where is not None else ""
    if expr.quantifier == "ANY":
        body = f"{guard}({operand} {expr.op} {item})"
        return f"(EXISTS ({base}{body}))"
    body = f"{guard}(({operand} {expr.op} {item}) IS NOT TRUE)"
    return f"(NOT EXISTS ({base}{body}))"
