"""Differential testing against SQLite (the reference oracle).

This package cross-checks the repro engine's two evaluation strategies
(``nested_iteration`` and ``transform``) against SQLite on randomly
generated (query, data) pairs:

* :mod:`repro.difftest.sqlite_sql` — translates our AST to SQLite's
  dialect (including exact EXISTS-based forms for ANY/ALL, which
  SQLite does not parse);
* :mod:`repro.difftest.oracle` — exports a catalog into an in-memory
  ``sqlite3`` database and runs queries there;
* :mod:`repro.difftest.normalize` — normalizes result bags so the
  engines can be compared as multisets;
* :mod:`repro.difftest.grammar` — a seeded random generator for
  schemas, NULL-bearing data, and nested queries across the paper's
  type-A/N/J/JA taxonomy plus the section 8 extended predicates;
* :mod:`repro.difftest.runner` — the three-way comparison loop and the
  ``python -m repro difftest`` CLI;
* :mod:`repro.difftest.minimize` — shrinks a failing case to a
  minimal reproducer.

Run it with::

    python -m repro difftest --examples 500 --seed 0
"""

from repro.difftest.grammar import Case, CaseGenerator
from repro.difftest.minimize import minimize_case
from repro.difftest.normalize import normalize_rows
from repro.difftest.oracle import SQLiteOracle
from repro.difftest.runner import CaseOutcome, run_case, run_difftest
from repro.difftest.sqlite_sql import SqliteUnsupported, to_sqlite_sql

__all__ = [
    "Case",
    "CaseGenerator",
    "CaseOutcome",
    "SQLiteOracle",
    "SqliteUnsupported",
    "minimize_case",
    "normalize_rows",
    "run_case",
    "run_difftest",
    "to_sqlite_sql",
]
