"""Normalize result sets so different engines compare as multisets.

SQL results are bags; the engines may emit rows in any order, SQLite
may return ``2.0`` where the repro engine returns ``2`` (or vice versa
— AVG and division produce floats in both), and NULL needs an
unambiguous marker that cannot collide with data.  Each value becomes
a tagged tuple:

* ``("NULL",)`` for NULL,
* ``("NUM", rounded)`` for any number (int/float coerced; rounded to
  9 decimal places to absorb float representation noise),
* ``("STR", s)`` for text.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

NULL_MARKER = ("NULL",)


def normalize_value(value: object) -> tuple:
    if value is None:
        return NULL_MARKER
    if isinstance(value, bool):
        return ("NUM", round(float(int(value)), 9))
    if isinstance(value, (int, float)):
        return ("NUM", round(float(value), 9))
    if isinstance(value, str):
        return ("STR", value)
    raise TypeError(f"unexpected value in a result row: {value!r}")


def normalize_rows(rows: Iterable[tuple]) -> Counter:
    """The multiset of normalized rows."""
    return Counter(tuple(normalize_value(v) for v in row) for row in rows)


def format_rows(rows: Iterable[tuple], limit: int = 20) -> str:
    """Human-readable normalized bag (for divergence reports)."""
    counted = normalize_rows(rows)
    lines = []
    for row, count in sorted(counted.items(), key=repr)[:limit]:
        values = ", ".join(
            "NULL" if v == NULL_MARKER else repr(v[1]) for v in row
        )
        suffix = f" x{count}" if count > 1 else ""
        lines.append(f"  ({values}){suffix}")
    if len(counted) > limit:
        lines.append(f"  ... {len(counted) - limit} more distinct rows")
    return "\n".join(lines) if lines else "  (empty)"
