"""Run queries against SQLite as the reference implementation.

A :class:`SQLiteOracle` snapshots a catalog's base tables into an
in-memory ``sqlite3`` database.  Columns are created without type
affinity so values round-trip exactly as stored (SQLite's dynamic
typing then matches the engine's Python-value semantics for the
integer-only data the fuzzer generates).
"""

from __future__ import annotations

import sqlite3

from repro.catalog.catalog import Catalog
from repro.difftest.sqlite_sql import to_sqlite_sql
from repro.sql.ast import Select


class SQLiteOracle:
    """An in-memory SQLite mirror of a catalog's base tables."""

    def __init__(self, catalog: Catalog) -> None:
        self.connection = sqlite3.connect(":memory:")
        for name in catalog.table_names():
            entry = catalog.get(name)
            if entry.is_temp:
                continue
            columns = list(entry.schema.column_names)
            quoted = ", ".join(f'"{c}"' for c in columns)
            self.connection.execute(f'CREATE TABLE "{name}" ({quoted})')
            placeholders = ", ".join("?" for _ in columns)
            self.connection.executemany(
                f'INSERT INTO "{name}" VALUES ({placeholders})',
                entry.heap.scan(),
            )
        self.connection.commit()

    def run(self, query: Select | str) -> list[tuple]:
        """Execute a query (AST or raw SQLite SQL) and fetch all rows."""
        sql = to_sqlite_sql(query) if isinstance(query, Select) else query
        cursor = self.connection.execute(sql)
        return [tuple(row) for row in cursor.fetchall()]

    def close(self) -> None:
        self.connection.close()

    def __enter__(self) -> "SQLiteOracle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
