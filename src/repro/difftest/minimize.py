"""Greedy shrinker for failing differential-test cases.

Given a failing (rows, query) pair and a predicate "does this still
fail?", the minimizer repeatedly tries smaller variants and keeps any
that still fail:

1. drop whole rows, one at a time, from each table;
2. simplify surviving values (NULL stays NULL — it is usually the
   point — but every non-zero integer is tried as 0).

Queries are not shrunk structurally (they are one generated template
deep already); the payoff is in the data, where a 10-row case
routinely shrinks to 1–2 rows that pin the exact semantics bug.
The process is a fixpoint loop and deterministic, so a minimized
reproducer can be pasted directly into a regression test.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from repro.difftest.grammar import Case


def minimize_case(case: Case, still_fails: Callable[[Case], bool]) -> Case:
    """Shrink ``case`` while ``still_fails`` holds; returns the fixpoint."""
    current = case
    changed = True
    while changed:
        changed = False
        dropped = _drop_rows(current, still_fails)
        if dropped is not None:
            current = dropped
            changed = True
        simplified = _simplify_values(current, still_fails)
        if simplified is not None:
            current = simplified
            changed = True
    return current


def _drop_rows(
    case: Case, still_fails: Callable[[Case], bool]
) -> Case | None:
    shrunk = None
    current = case
    for table in sorted(current.rows):
        index = 0
        while index < len(current.rows[table]):
            rows = dict(current.rows)
            rows[table] = rows[table][:index] + rows[table][index + 1 :]
            candidate = replace(current, rows=rows)
            if still_fails(candidate):
                current = candidate
                shrunk = candidate
            else:
                index += 1
    return shrunk


def _simplify_values(
    case: Case, still_fails: Callable[[Case], bool]
) -> Case | None:
    shrunk = None
    current = case
    for table in sorted(current.rows):
        for row_index, row in enumerate(list(current.rows[table])):
            for col_index, value in enumerate(row):
                if value is None or value == 0:
                    continue
                rows = dict(current.rows)
                new_row = row[:col_index] + (0,) + row[col_index + 1 :]
                rows[table] = (
                    rows[table][:row_index]
                    + [new_row]
                    + rows[table][row_index + 1 :]
                )
                candidate = replace(current, rows=rows)
                if still_fails(candidate):
                    current = candidate
                    shrunk = candidate
                    row = new_row
    return shrunk
