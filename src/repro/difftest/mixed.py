"""Mixed read/write differential leg: transactions vs a SQLite shadow.

The classic difftest (:mod:`repro.difftest.runner`) checks read-only
queries over frozen instances.  This leg drives a live
:class:`~repro.api.Database` through an interleaved history of

* committed transactions (single- and multi-table inserts),
* aborted transactions (rolled back explicitly), and
* Figure-1 reads through the **cached-plan** path,

while a shadow SQLite database is fed exactly the committed batches —
never the aborted ones.  After every step the read queries must agree
with the shadow:

* a read racing an *open* transaction must not see its uncommitted
  rows (the shadow does not have them yet);
* a read after a commit must see the whole batch (the shadow just got
  it);
* a read after an abort must match the shadow unchanged.

Because reads go through ``Database.execute_cached``, the leg also
difftests the snapshot-pinned plan cache: cached plans built before a
commit must replay correctly after it (fresh horizons, memoized temps
flushed), which is precisely the machinery a pure unit test is most
likely to miss under interleaving.
"""

from __future__ import annotations

import random
import sqlite3
from dataclasses import dataclass, field

from repro.api import Database
from repro.difftest.normalize import normalize_rows

#: Figure-1 read shapes over the live PARTS/SUPPLY schema.  All three
#: run verbatim on SQLite (no dialect translation needed).
CUTOFF = "1980-06-01"
READ_QUERIES = {
    "type-n": (
        "SELECT PNUM FROM PARTS WHERE PNUM IN "
        f"(SELECT PNUM FROM SUPPLY WHERE SHIPDATE < '{CUTOFF}')"
    ),
    "type-j": (
        "SELECT PARTS.PNUM FROM PARTS, SUPPLY "
        "WHERE PARTS.PNUM = SUPPLY.PNUM AND SUPPLY.QUAN > 2"
    ),
    "type-ja": (
        "SELECT PNUM FROM PARTS WHERE QOH = "
        "(SELECT COUNT(SHIPDATE) FROM SUPPLY "
        f"WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < '{CUTOFF}')"
    ),
}

_DATES = ["1975-03-01", "1979-12-30", "1981-08-10", "1985-01-15"]


@dataclass
class MixedReport:
    """Aggregate statistics of one mixed read/write run."""

    steps: int = 0
    commits: int = 0
    aborts: int = 0
    reads: int = 0
    failures: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        return (
            f"mixed: {self.steps} steps, {self.commits} commit(s), "
            f"{self.aborts} abort(s), {self.reads} read-check(s), "
            f"{len(self.failures)} failure(s)"
        )


class _Shadow:
    """A SQLite mirror fed only the committed batches."""

    def __init__(self) -> None:
        self.connection = sqlite3.connect(":memory:")
        self.connection.execute('CREATE TABLE "PARTS" ("PNUM", "QOH")')
        self.connection.execute(
            'CREATE TABLE "SUPPLY" ("PNUM", "QUAN", "SHIPDATE")'
        )

    def apply(self, batches: dict[str, list[tuple]]) -> None:
        for table, rows in batches.items():
            marks = ", ".join("?" for _ in rows[0])
            self.connection.executemany(
                f'INSERT INTO "{table}" VALUES ({marks})', rows
            )
        self.connection.commit()

    def run(self, sql: str) -> list[tuple]:
        return [tuple(r) for r in self.connection.execute(sql).fetchall()]

    def close(self) -> None:
        self.connection.close()


def _make_db() -> Database:
    # SQL-semantics dedupe fix-ups on, exactly like the read-only
    # difftest: the leg checks the fixed-up pipeline against SQLite.
    db = Database(buffer_pages=24, dedupe_inner=True, dedupe_outer=True)
    db.create_table("PARTS", ["PNUM", "QOH"], primary_key=["PNUM"])
    db.create_table("SUPPLY", ["PNUM", "QUAN", ("SHIPDATE", "date")])
    return db


def _check_reads(
    db: Database, shadow: _Shadow, report: MixedReport, when: str
) -> None:
    for name, sql in READ_QUERIES.items():
        ours = db.execute_cached(sql, method="transform").result.rows
        theirs = shadow.run(sql)
        report.reads += 1
        if normalize_rows(ours) != normalize_rows(theirs):
            report.failures.append(
                f"step {report.steps} [{when}] {name}: "
                f"{sorted(ours)!r} != shadow {sorted(theirs)!r}"
            )


def run_mixed(steps: int = 200, seed: int = 0) -> MixedReport:
    """Drive ``steps`` interleaved write/read operations and compare."""
    rng = random.Random(seed)
    db = _make_db()
    shadow = _Shadow()
    report = MixedReport()
    next_pnum = 1

    # Seed history: a committed base instance both sides agree on.
    base_parts = [(pnum, rng.randint(0, 3)) for pnum in range(1, 9)]
    base_supply = [
        (rng.randint(1, 8), rng.randint(1, 5), rng.choice(_DATES))
        for _ in range(16)
    ]
    next_pnum = 9
    db.insert("PARTS", base_parts)
    db.insert("SUPPLY", base_supply)
    shadow.apply({"PARTS": base_parts, "SUPPLY": base_supply})

    try:
        for _ in range(steps):
            report.steps += 1
            roll = rng.random()
            if roll < 0.5:
                # Plain read step against the committed state.
                _check_reads(db, shadow, report, "steady")
            else:
                # Transactional write step: build a batch, read while
                # the transaction is still open (must be invisible),
                # then commit or abort.
                batches: dict[str, list[tuple]] = {}
                parts = [
                    (next_pnum + i, rng.randint(0, 3))
                    for i in range(rng.randint(1, 3))
                ]
                next_pnum += len(parts)
                batches["PARTS"] = parts
                if rng.random() < 0.7:
                    batches["SUPPLY"] = [
                        (
                            rng.choice(parts)[0]
                            if rng.random() < 0.6
                            else rng.randint(1, next_pnum),
                            rng.randint(1, 5),
                            rng.choice(_DATES),
                        )
                        for _ in range(rng.randint(1, 4))
                    ]
                txn = db.begin()
                try:
                    for table, rows in batches.items():
                        txn.insert(table, rows)
                    _check_reads(db, shadow, report, "open-txn")
                    if rng.random() < 0.3:
                        txn.rollback()
                        report.aborts += 1
                        _check_reads(db, shadow, report, "post-abort")
                    else:
                        txn.commit()
                        report.commits += 1
                        shadow.apply(batches)
                        _check_reads(db, shadow, report, "post-commit")
                except Exception:
                    if txn.state == "open":
                        txn.rollback()
                    raise
            if report.failures:
                break
        # Cross-check the txn layer's own accounting.
        if db.txn.aborts < report.aborts or db.txn.commits < report.commits:
            report.failures.append(
                f"txn counters (commits={db.txn.commits}, "
                f"aborts={db.txn.aborts}) below observed "
                f"({report.commits}, {report.aborts})"
            )
    finally:
        shadow.close()
    return report
