"""The differential comparison and its CLI.

For every generated case the runner executes the query several ways —

1. ``nested_iteration`` (System R semantics, the repo's baseline),
2. ``transform``        (NEST-G with the paper's algorithms), once per
   join method (merge, nested, hash by default) **per execution
   engine** — the compiled row engine (``transform[merge]``), the
   vectorized columnar engine (``transform[merge|vectorized]``), and
   on request the interpreted row engine
   (``transform[merge|interpreted]``, the expression compiler
   disabled) — and
3. SQLite               (the external reference oracle)

— normalizes each result to a multiset, and demands agreement.  The
transform legs are skipped (not failed) when the query is outside the
algorithms' documented reach (``TransformError``, e.g. correlated
NOT IN); the other legs must still agree.

Engine legs double as the vectorized engine's oracle check: the row
interpreter defines the semantics, the batch kernels must reproduce
them, and SQLite keeps both honest.  On top of bag-equal rows, every
engine leg of one join method must report **identical page I/O** — the
vectorized engine's contract is batch-at-a-time evaluation with the
row engine's exact cost accounting, so a difference in page counts is
a divergence even when the rows agree.

The engine runs with ``dedupe_inner=True, dedupe_outer=True``: the
paper-faithful defaults reproduce Kim's Lemma-1 multiplicity caveat by
design, and the difftest's job is to check the *fixed-up* pipeline
against real SQL semantics.

Static analysis rides along on every leg: the engine's default
``verify=True`` runs the plan verifier + Kim-bug lint
(:mod:`repro.analysis`) over each transformed plan before execution,
and the nested-iteration executor verifies scope well-formedness over
the raw AST — so every generated query also regression-tests the
static analyses against the oracle-checked runtime behavior.

Known dialect differences (the allowlist) are enforced structurally
rather than filtered after the fact: the grammar generates none of

* scalar subqueries of more than one row (our engine raises
  ``CardinalityError``; SQLite silently takes the first row),
* integer division (``/`` is true division here, integer in SQLite),
* division by zero (an error here, NULL in SQLite),
* mixed-type comparisons (an error here, type-ordered in SQLite).

Everything the grammar does generate must agree exactly.

``--mixed STEPS`` appends a transactional leg: interleaved commits,
aborts, and cached-plan reads against a live :class:`~repro.api.Database`
checked step-by-step against a SQLite shadow fed only the committed
batches (:mod:`repro.difftest.mixed`).
"""

from __future__ import annotations

import argparse
from collections import Counter
from dataclasses import dataclass, field

from repro.core.pipeline import Engine
from repro.difftest.grammar import Case, CaseGenerator
from repro.difftest.normalize import normalize_rows
from repro.difftest.oracle import SQLiteOracle
from repro.engine.compile import interpreted_only
from repro.errors import TransformError
from repro.sql.parser import parse


#: The transform leg runs once per join method by default.
JOIN_METHODS = ("merge", "nested", "hash")

#: Execution-engine legs: name -> (Engine(engine=...), compiler on?).
#: "compiled" keeps the historical bare leg name (``transform[merge]``).
ENGINE_LEGS = {
    "compiled": ("row", True),
    "interpreted": ("row", False),
    "vectorized": ("vectorized", True),
}

#: Default engine matrix: the compiled row engine and the vectorized
#: engine (the interpreted leg triples runtime; opt in via --engines).
ENGINES = ("compiled", "vectorized")

#: Default parallelism matrix: serial only (cross in degrees with
#: --parallelism; parallel legs run with ``parallel_threshold=0`` so
#: the grammar's small cases exercise the exchange operators at all).
PARALLELISMS = (1,)


@dataclass
class CaseOutcome:
    """Result of running one case through every engine leg."""

    case: Case
    status: str  # "ok" | "divergence" | "error"
    transform_skipped: bool = False
    detail: str = ""
    results: dict[str, Counter] = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        return self.status != "ok"


def run_case(
    case: Case,
    join_methods: tuple[str, ...] = JOIN_METHODS,
    engines: tuple[str, ...] = ENGINES,
    parallelisms: tuple[int, ...] = PARALLELISMS,
) -> CaseOutcome:
    """Execute one case every way and compare normalized bags."""
    catalog = case.build_catalog()
    try:
        select = parse(case.sql)
    except Exception as exc:  # pragma: no cover - grammar emits valid SQL
        return CaseOutcome(case, "error", detail=f"parse: {exc}")

    engine = Engine(catalog, dedupe_inner=True, dedupe_outer=True)
    results: dict[str, Counter] = {}

    try:
        with SQLiteOracle(catalog) as oracle:
            results["sqlite"] = normalize_rows(oracle.run(select))
    except Exception as exc:
        return CaseOutcome(case, "error", detail=f"sqlite: {exc}")

    try:
        ni = engine.run(select, method="nested_iteration")
        results["nested_iteration"] = normalize_rows(ni.result.rows)
    except Exception as exc:
        return CaseOutcome(
            case, "error", detail=f"nested_iteration: {exc}", results=results
        )

    transform_skipped = False
    detail_skip = ""
    executors = {
        (name, degree): Engine(
            catalog,
            dedupe_inner=True,
            dedupe_outer=True,
            engine=ENGINE_LEGS[name][0],
            parallelism=degree,
            # The grammar's cases are tiny; without a zero threshold a
            # parallel leg would silently run the serial operators.
            parallel_threshold=0 if degree > 1 else None,
        )
        for name in engines
        for degree in parallelisms
    }
    for join_method in join_methods:
        page_ios: dict[str, int] = {}
        for engine_name, degree in executors:
            executor = executors[(engine_name, degree)]
            executor.join_method = join_method
            suffix = "" if engine_name == "compiled" else f"|{engine_name}"
            if degree > 1:
                suffix += f"|p{degree}"
            leg = f"transform[{join_method}{suffix}]"
            compiler_on = ENGINE_LEGS[engine_name][1]
            # Cold cache per leg (the bench protocol): page I/O must
            # reflect the plan, not the buffer state a previous leg
            # happened to leave behind.
            catalog.buffer.evict_all()
            try:
                if compiler_on:
                    tr = executor.run(select, method="transform")
                else:
                    with interpreted_only():
                        tr = executor.run(select, method="transform")
                results[leg] = normalize_rows(tr.result.rows)
                page_ios[leg] = tr.io.page_ios
            except TransformError as exc:
                # The rewrite itself is join-method and engine
                # independent: one skip means they all skip.
                transform_skipped = True
                detail_skip = str(exc)
                break
            except Exception as exc:
                return CaseOutcome(
                    case, "error", detail=f"{leg}: {exc}", results=results
                )
        if transform_skipped:
            break
        # Every engine and parallelism leg of one join method must
        # charge the same page I/O — neither batch execution nor the
        # exchange operators may change the cost model.
        if len(set(page_ios.values())) > 1:
            return CaseOutcome(
                case,
                "divergence",
                detail=f"page I/O differs across legs: {page_ios}",
                results=results,
            )

    reference = results["sqlite"]
    for leg, bag in results.items():
        if leg != "sqlite" and bag != reference:
            return CaseOutcome(
                case,
                "divergence",
                transform_skipped=transform_skipped,
                detail=f"{leg} disagrees with sqlite",
                results=results,
            )
    return CaseOutcome(
        case,
        "ok",
        transform_skipped=transform_skipped,
        detail="transform skipped: " + detail_skip if transform_skipped else "",
        results=results,
    )


@dataclass
class Report:
    """Aggregate statistics of a difftest run."""

    examples: int = 0
    ok: int = 0
    transform_skipped: int = 0
    failures: list[CaseOutcome] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        return (
            f"{self.examples} examples: {self.ok} ok, "
            f"{self.transform_skipped} transform-leg skips, "
            f"{len(self.failures)} failure(s)"
        )


def run_difftest(
    examples: int = 200,
    seed: int = 0,
    stop_on_failure: bool = True,
    minimize: bool = True,
    join_methods: tuple[str, ...] = JOIN_METHODS,
    engines: tuple[str, ...] = ENGINES,
    parallelisms: tuple[int, ...] = PARALLELISMS,
) -> Report:
    """Generate and check ``examples`` cases; minimize any failure."""
    from repro.difftest.minimize import minimize_case

    generator = CaseGenerator(seed)
    report = Report()
    for index in range(examples):
        case = generator.case(index)
        outcome = run_case(case, join_methods, engines, parallelisms)
        report.examples += 1
        if outcome.status == "ok":
            report.ok += 1
            if outcome.transform_skipped:
                report.transform_skipped += 1
            continue
        if minimize:
            shrunk = minimize_case(
                case,
                lambda c: run_case(
                    c, join_methods, engines, parallelisms
                ).failed,
            )
            outcome = run_case(shrunk, join_methods, engines, parallelisms)
            if not outcome.failed:  # pragma: no cover - shrinker invariant
                outcome = run_case(case, join_methods, engines, parallelisms)
        report.failures.append(outcome)
        if stop_on_failure:
            break
    return report


def format_outcome(outcome: CaseOutcome) -> str:
    lines = [
        f"--- {outcome.status.upper()} (case #{outcome.case.index}, "
        f"seed {outcome.case.seed}) ---",
        outcome.case.describe(),
        f"detail: {outcome.detail}",
    ]
    for leg, bag in outcome.results.items():
        lines.append(f"{leg}:")
        lines.append(format_rows_from_bag(bag))
    return "\n".join(lines)


def format_rows_from_bag(bag: Counter) -> str:
    lines = []
    for row, count in sorted(bag.items(), key=repr):
        values = ", ".join(
            "NULL" if v == ("NULL",) else repr(v[1]) for v in row
        )
        suffix = f" x{count}" if count > 1 else ""
        lines.append(f"  ({values}){suffix}")
    return "\n".join(lines) if lines else "  (empty)"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro difftest",
        description="Differential-test the engine against SQLite.",
    )
    parser.add_argument(
        "--examples", type=int, default=200, help="number of cases (default 200)"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="generator seed (default 0)"
    )
    parser.add_argument(
        "--keep-going",
        action="store_true",
        help="collect every failure instead of stopping at the first",
    )
    parser.add_argument(
        "--join-methods",
        default=",".join(JOIN_METHODS),
        help="comma-separated join methods for the transform legs "
        f"(default: {','.join(JOIN_METHODS)})",
    )
    parser.add_argument(
        "--engines",
        default=",".join(ENGINES),
        help="comma-separated engine legs for the transform runs, from "
        f"{{{','.join(ENGINE_LEGS)}}} (default: {','.join(ENGINES)})",
    )
    parser.add_argument(
        "--parallelism",
        default=",".join(str(p) for p in PARALLELISMS),
        help="comma-separated worker-shard degrees crossed with the "
        "engine legs; degrees > 1 run with parallel_threshold=0 "
        "(default: 1)",
    )
    parser.add_argument(
        "--mixed",
        type=int,
        default=0,
        metavar="STEPS",
        help="also run STEPS interleaved transactional write/read steps "
        "against a SQLite shadow (see repro.difftest.mixed; default 0)",
    )
    parser.add_argument(
        "--replay",
        type=int,
        default=0,
        metavar="N",
        help="also replay N mixed multi-query events per (engine, "
        "parallelism) leg through the shared-subplan cache, checked "
        "against SQLite and the sharing-disabled path "
        "(see repro.difftest.replay; default 0)",
    )
    args = parser.parse_args(argv)

    join_methods = tuple(
        method.strip()
        for method in args.join_methods.split(",")
        if method.strip()
    )
    engines = tuple(
        name.strip() for name in args.engines.split(",") if name.strip()
    )
    unknown = [name for name in engines if name not in ENGINE_LEGS]
    if unknown:
        parser.error(
            f"unknown engine(s) {unknown}; choose from {list(ENGINE_LEGS)}"
        )
    try:
        parallelisms = tuple(
            int(token.strip())
            for token in args.parallelism.split(",")
            if token.strip()
        )
    except ValueError:
        parser.error(f"--parallelism must be integers: {args.parallelism!r}")
    if any(degree < 1 for degree in parallelisms):
        parser.error("--parallelism degrees must be >= 1")
    report = run_difftest(
        examples=args.examples,
        seed=args.seed,
        stop_on_failure=not args.keep_going,
        join_methods=join_methods,
        engines=engines,
        parallelisms=parallelisms,
    )
    for outcome in report.failures:
        print(format_outcome(outcome))
    print(report.summary())
    clean = report.clean
    if args.mixed > 0:
        from repro.difftest.mixed import run_mixed

        mixed_report = run_mixed(steps=args.mixed, seed=args.seed)
        for line in mixed_report.failures:
            print(f"--- MIXED DIVERGENCE ---\n{line}")
        print(mixed_report.summary())
        clean = clean and mixed_report.clean
    if args.replay > 0:
        from repro.difftest.replay import run_replay

        replay_report = run_replay(queries=args.replay, seed=args.seed)
        for line in replay_report.failures:
            print(f"--- REPLAY DIVERGENCE ---\n{line}")
        print(replay_report.summary())
        clean = clean and replay_report.clean
    return 0 if clean else 1
