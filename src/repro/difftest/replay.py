"""Multi-query replay leg: shared subplans vs SQLite vs sharing-off.

The classic difftest checks one query at a time; the sharing registry
(:mod:`repro.serve.sharing`) only does interesting work *across*
queries.  This leg replays a seeded mixed workload — a pool of query
shapes deliberately built so distinct outer blocks need the same inner
temp chains, interleaved with committed inserts — through

1. a :class:`~repro.api.Database` with cross-query sharing ON,
2. an identically-configured database with sharing OFF (the private
   per-plan memo path), and
3. a SQLite shadow fed the same rows,

and demands every result agree across all three after every event.
The inserts exercise eager invalidation mid-replay: a purged shared
temp must never leak a stale row into a later answer.

The leg fails if less than :data:`MIN_SHARED_FRACTION` of the temp
installations were served from the registry — a replay that does not
actually share is not testing the machinery it claims to.

Legs run per (engine, parallelism) configuration; the CLI entry point
(``python -m repro difftest --replay N``) crosses the row and
vectorized engines with worker degrees 1 and 4.
"""

from __future__ import annotations

import random
import sqlite3
from dataclasses import dataclass, field

from repro.api import Database
from repro.difftest.normalize import normalize_rows

#: Inner-chain cutoffs: two distinct values so the replay exercises
#: value-keyed registry entries without drowning sharing in variety.
CUTOFFS = ("1980-06-01", "1983-01-01")

#: Queries whose replay shares less than this fraction of its temp
#: installations does not validate the registry; the leg fails.
MIN_SHARED_FRACTION = 0.30


def query_pool() -> list[str]:
    """Mixed shapes: several outer blocks per inner chain, plus noise.

    The first three shapes per cutoff share the whole NEST-JA2 chain
    (same correlated COUNT), so a healthy replay leases far more temps
    than it builds; the trailing type-N/type-J shapes keep the mix
    honest (different chains, no sharing).
    """
    pool: list[str] = []
    for cutoff in CUTOFFS:
        inner = (
            "(SELECT COUNT(SHIPDATE) FROM SUPPLY "
            f"WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < '{cutoff}')"
        )
        pool.extend(
            [
                f"SELECT PNUM FROM PARTS WHERE QOH = {inner}",
                f"SELECT PNUM, QOH FROM PARTS WHERE QOH >= {inner}",
                f"SELECT QOH FROM PARTS WHERE QOH < {inner}",
            ]
        )
        pool.append(
            "SELECT PNUM FROM PARTS WHERE PNUM IN "
            f"(SELECT PNUM FROM SUPPLY WHERE SHIPDATE < '{cutoff}')"
        )
    pool.append(
        "SELECT PARTS.PNUM FROM PARTS, SUPPLY "
        "WHERE PARTS.PNUM = SUPPLY.PNUM AND SUPPLY.QUAN > 2"
    )
    return pool


@dataclass
class ReplayReport:
    """Aggregate statistics of one multi-query replay run."""

    legs: int = 0
    queries: int = 0
    writes: int = 0
    shared_installs: int = 0
    built_installs: int = 0
    failures: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.failures

    @property
    def shared_fraction(self) -> float:
        total = self.shared_installs + self.built_installs
        return self.shared_installs / total if total else 0.0

    def summary(self) -> str:
        return (
            f"replay: {self.legs} leg(s), {self.queries} quer(ies), "
            f"{self.writes} write(s), {self.shared_installs} shared / "
            f"{self.built_installs} built temp install(s) "
            f"({100.0 * self.shared_fraction:.1f}% shared), "
            f"{len(self.failures)} failure(s)"
        )


def _seed_rows(rng: random.Random) -> tuple[list[tuple], list[tuple]]:
    parts = [(pnum, rng.randrange(0, 8)) for pnum in range(1, 61)]
    supply = [
        (
            rng.randrange(1, 61),
            rng.randrange(0, 6),
            f"19{70 + rng.randrange(0, 20)}-0{1 + rng.randrange(0, 9)}-15",
        )
        for _ in range(300)
    ]
    return parts, supply


def _write_batch(rng: random.Random) -> tuple[str, list[tuple]]:
    if rng.random() < 0.5:
        start = rng.randrange(1000, 9000)
        return "PARTS", [(start + i, rng.randrange(0, 8)) for i in range(3)]
    return "SUPPLY", [
        (
            rng.randrange(1, 61),
            rng.randrange(0, 6),
            f"19{70 + rng.randrange(0, 20)}-03-01",
        )
        for _ in range(5)
    ]


def _make_database(engine: str, parallelism: int, sharing: bool) -> Database:
    # dedupe_inner/outer on, like the classic difftest legs: the
    # paper-faithful defaults reproduce Kim's Lemma-1 multiplicity
    # caveat by design, and this leg checks the fixed-up pipeline.
    db = Database(
        buffer_pages=128,
        engine=engine,
        parallelism=parallelism,
        parallel_threshold=0 if parallelism > 1 else None,
        dedupe_inner=True,
        dedupe_outer=True,
    )
    if not sharing:
        from repro.serve.cache import PlanCache

        db.plan_cache = PlanCache(sharing=False)
        db.plan_cache.attach(db.catalog)
        db.engine.plan_cache = db.plan_cache
    db.create_table("PARTS", ["PNUM", "QOH"])
    db.create_table("SUPPLY", ["PNUM", "QUAN", ("SHIPDATE", "text")])
    return db


def _make_shadow() -> sqlite3.Connection:
    connection = sqlite3.connect(":memory:")
    connection.execute('CREATE TABLE "PARTS" ("PNUM", "QOH")')
    connection.execute('CREATE TABLE "SUPPLY" ("PNUM", "QUAN", "SHIPDATE")')
    return connection


def run_replay(
    queries: int,
    seed: int = 0,
    engines: tuple[str, ...] = ("row", "vectorized"),
    parallelisms: tuple[int, ...] = (1, 4),
    write_every: int = 25,
) -> ReplayReport:
    """Replay ``queries`` events per (engine, parallelism) leg."""
    report = ReplayReport()
    pool = query_pool()
    for engine in engines:
        for parallelism in parallelisms:
            leg = f"replay[{engine}|p{parallelism}]"
            report.legs += 1
            rng = random.Random(seed)
            shared_db = _make_database(engine, parallelism, sharing=True)
            plain_db = _make_database(engine, parallelism, sharing=False)
            shadow = _make_shadow()
            parts, supply = _seed_rows(rng)
            for table, rows in (("PARTS", parts), ("SUPPLY", supply)):
                shared_db.insert(table, rows)
                plain_db.insert(table, rows)
                marks = ", ".join("?" for _ in rows[0])
                shadow.executemany(
                    f'INSERT INTO "{table}" VALUES ({marks})', rows
                )
            shadow.commit()
            for step in range(queries):
                if write_every and step % write_every == write_every - 1:
                    table, rows = _write_batch(rng)
                    shared_db.insert(table, rows)
                    plain_db.insert(table, rows)
                    marks = ", ".join("?" for _ in rows[0])
                    shadow.executemany(
                        f'INSERT INTO "{table}" VALUES ({marks})', rows
                    )
                    shadow.commit()
                    report.writes += 1
                    continue
                sql = rng.choice(pool)
                shared_run = shared_db.execute_cached(sql)
                plain_run = plain_db.execute_cached(sql)
                oracle_rows = [
                    tuple(row) for row in shadow.execute(sql).fetchall()
                ]
                report.queries += 1
                for step_label in shared_run.steps:
                    if step_label.startswith("shared "):
                        report.shared_installs += 1
                    elif step_label.startswith(
                        ("built ", "reused ")
                    ):
                        report.built_installs += 1
                ours = normalize_rows(shared_run.result.rows)
                unshared = normalize_rows(plain_run.result.rows)
                oracle = normalize_rows(oracle_rows)
                if ours != oracle:
                    report.failures.append(
                        f"{leg} step {step}: sharing-on diverged from "
                        f"SQLite\n  {sql}\n  ours:   {sorted(ours.items())[:5]}"
                        f"\n  oracle: {sorted(oracle.items())[:5]}"
                    )
                if ours != unshared:
                    report.failures.append(
                        f"{leg} step {step}: sharing-on diverged from "
                        f"sharing-off\n  {sql}"
                    )
            registry = shared_db.plan_cache.sharing
            if registry is not None and any(
                entry.active != 0 for entry in registry._entries.values()
            ):
                report.failures.append(f"{leg}: leaked registry lease")
    if report.clean and report.shared_fraction < MIN_SHARED_FRACTION:
        report.failures.append(
            f"replay shared only {100.0 * report.shared_fraction:.1f}% of "
            f"temp installs (< {100.0 * MIN_SHARED_FRACTION:.0f}%): the "
            "workload is not exercising the sharing registry"
        )
    return report
