"""Kim's algorithm NEST-N-J (paper section 3.1).

    Algorithm NEST-N-J
    1. Combine the FROM clauses of all query blocks into one FROM clause.
    2. AND together the WHERE clauses of all query blocks,
       replacing IS IN by =.
    3. Retain the SELECT clause of the outermost query block.

The algorithm applies to type-N and type-J nested predicates (no
aggregate in the inner SELECT).  It merges *one* nested predicate at a
time; the recursive driver (NEST-G) walks multi-level queries.

Faithfulness note (see DESIGN.md, "NEST-N-J and duplicates"): replacing
``IN`` by ``=`` preserves *set* semantics (Kim's Lemma 1) but can
change multiplicities when the inner relation holds duplicate values in
the projected column.  The pipeline offers an optional inner-side
deduplication for the uncorrelated (type-N) case.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.transform import TempTableDef
from repro.errors import TransformError
from repro.sql.ast import (
    ColumnRef,
    Comparison,
    Expr,
    InSubquery,
    MIRRORED_OPS,
    ScalarSubquery,
    Select,
    SelectItem,
    TableRef,
    conjuncts,
    make_and,
)


def apply_nest_nj(outer: Select, node: Expr) -> Select:
    """Merge one nested predicate's inner block into ``outer``.

    Args:
        outer: the outer query block; ``node`` must be one of its WHERE
            conjuncts.
        node: the nested predicate (``x IN (SELECT ...)`` or a scalar
            comparison against a non-aggregate subquery).

    Returns:
        The combined single-block query: outer SELECT clause, merged
        FROM clauses, ANDed WHERE clauses with the nested predicate
        replaced by a join predicate.
    """
    inner, join_pred = _join_predicate(node)
    _check_inner_block(inner)

    collisions = set(outer.table_bindings) & set(inner.table_bindings)
    if collisions:
        raise TransformError(
            f"FROM clauses collide on bindings {sorted(collisions)}; "
            "alias the inner tables first"
        )

    new_conjuncts: list[Expr] = []
    replaced = False
    for conjunct in conjuncts(outer.where):
        if conjunct is node:
            new_conjuncts.append(join_pred)
            replaced = True
        else:
            new_conjuncts.append(conjunct)
    if not replaced:
        raise TransformError("nested predicate is not a conjunct of the outer WHERE")
    new_conjuncts.extend(conjuncts(inner.where))

    return replace(
        outer,
        from_tables=outer.from_tables + inner.from_tables,
        where=make_and(new_conjuncts),
    )


def dedupe_inner_setup(
    node: InSubquery, temp_name: str
) -> tuple[TempTableDef, InSubquery]:
    """Optional type-N fix-up: project the inner result duplicate-free.

    Returns a temp-table definition ``temp_name = SELECT DISTINCT item
    FROM inner...`` and a rewritten predicate ``x IN (SELECT C1 FROM
    temp_name)``, so that the subsequent NEST-N-J join cannot inflate
    multiplicities.  Only valid for *uncorrelated* inner blocks.
    """
    inner = node.query
    item = _single_item(inner)
    temp_query = replace(
        inner,
        items=(SelectItem(item, alias="C1"),),
        distinct=True,
    )
    new_inner = Select(
        items=(SelectItem(ColumnRef(temp_name, "C1"), alias="C1"),),
        from_tables=(TableRef(temp_name),),
    )
    return (
        TempTableDef(temp_name, temp_query),
        InSubquery(node.operand, new_inner, node.negated),
    )


def _join_predicate(node: Expr) -> tuple[Select, Expr]:
    """The inner block and the join predicate that replaces the nesting."""
    if isinstance(node, InSubquery):
        if node.negated:
            raise TransformError(
                "NOT IN cannot be transformed by NEST-N-J "
                "(no canonical join captures anti-join semantics)"
            )
        inner = node.query
        return inner, Comparison(node.operand, "=", _single_item(inner))
    if isinstance(node, Comparison):
        if isinstance(node.right, ScalarSubquery):
            inner = node.right.query
            return inner, Comparison(node.left, node.op, _single_item(inner))
        if isinstance(node.left, ScalarSubquery):
            inner = node.left.query
            return inner, Comparison(
                _single_item(inner), MIRRORED_OPS[node.op], node.right
            )
    raise TransformError(f"not a type-N/J nested predicate: {node!r}")


def _single_item(inner: Select) -> Expr:
    if len(inner.items) != 1:
        raise TransformError("inner block must select exactly one item")
    return inner.items[0].expr


def _check_inner_block(inner: Select) -> None:
    if inner.has_aggregate_select():
        raise TransformError(
            "inner block has an aggregate SELECT; use NEST-JA2 (type-A/JA)"
        )
    if inner.group_by or inner.having:
        raise TransformError("inner blocks with GROUP BY/HAVING are not supported")
    if inner.distinct:
        raise TransformError(
            "inner DISTINCT would be lost by NEST-N-J; not supported"
        )
