"""Kim's original algorithm NEST-JA (paper section 3.2) — **kept buggy
on purpose**.

    Algorithm NEST-JA
    1. Generate a temporary relation Rt(C1,...,Cn,Cn+1) from R2 such
       that Rt.Cn+1 is the result of applying the aggregate function
       AGG on the Cn+1 column of R2 [grouped by the join columns].
    2. Transform the inner query block by changing all references to R2
       columns in join predicates to the corresponding Rt columns.  The
       result is a type-J nested query, which can be passed to
       algorithm NEST-N-J.

This implementation is deliberately faithful to [KIM 82:455-456] so the
paper's three bugs reproduce exactly:

* **COUNT bug** (section 5.1): the temp table is built by grouping the
  inner relation alone, so groups that are empty for some outer tuple
  simply do not exist — COUNT can never be 0 and such outer tuples are
  silently lost (Kiessling's Q2 returns ∅ instead of {10, 8});
* **non-equality bug** (section 5.3): the temp groups by the *inner*
  join column even when the join operator is ``<``/``>``/..., so it
  aggregates per inner value instead of over the operator's range;
* **duplicates bug** (section 5.4): not applicable here (Kim's temp
  never joins the outer relation), but the corresponding bug appears in
  a naive outer-join fix and is demonstrated in the tests for NEST-JA2.

Use :mod:`repro.core.nest_ja2` for the corrected algorithm.
"""

from __future__ import annotations

from repro.core._ja_common import decompose_inner_block
from repro.core.transform import TempTableDef, TransformResult
from repro.sql.analysis import ColumnResolver
from repro.sql.ast import (
    ColumnRef,
    Comparison,
    Expr,
    Select,
    SelectItem,
    TableRef,
    make_and,
)


def apply_nest_ja(
    inner: Select,
    has_column: ColumnResolver,
    temp_name: str,
) -> TransformResult:
    """Rewrite a type-JA inner block per Kim's (buggy) NEST-JA.

    Args:
        inner: the inner query block (aggregate SELECT plus correlated
            join predicates).
        has_column: schema resolver for attributing column references.
        temp_name: name for the temporary relation Rt.

    Returns:
        A :class:`TransformResult` whose ``setup`` builds Rt and whose
        ``query`` is the rewritten inner block — now type-J: it selects
        Rt's aggregate column and joins Rt to the outer relation with
        the *original* operators (preserving Kim's bug for non-equality
        operators).
    """
    parts = decompose_inner_block(inner, has_column)

    # Step 1 — Rt: group the inner relation by its own join columns,
    # applying only the simple predicates.  (This is where the COUNT
    # bug lives: no outer join, no outer projection.)
    group_items = tuple(
        SelectItem(pred.inner_col, alias=f"C{i + 1}")
        for i, pred in enumerate(parts.join_preds)
    )
    agg_item = SelectItem(parts.aggregate, alias="CAGG")
    temp_query = Select(
        items=group_items + (agg_item,),
        from_tables=inner.from_tables,
        where=make_and(parts.simple_preds),
        group_by=tuple(pred.inner_col for pred in parts.join_preds),
    )
    temp = TempTableDef(temp_name, temp_query)

    # Step 2 — rewrite the inner block to reference Rt.  Join-predicate
    # references to inner columns become Rt columns; the operator is
    # kept as-is (Kim), which is exactly the section 5.3 bug.
    rewritten_preds: list[Expr] = [
        Comparison(ColumnRef(temp_name, f"C{i + 1}"), pred.op, pred.outer_col)
        for i, pred in enumerate(parts.join_preds)
    ]
    rewritten = Select(
        items=(SelectItem(ColumnRef(temp_name, "CAGG"), alias="CAGG"),),
        from_tables=(TableRef(temp_name),),
        where=make_and(rewritten_preds),
    )

    trace = [
        f"NEST-JA (Kim): {temp.describe()}",
        "NEST-JA (Kim): inner block rewritten to reference "
        f"{temp_name} (operators preserved)",
    ]
    return TransformResult(setup=[temp], query=rewritten, trace=trace)


def apply_nest_ja_outer_naive(
    inner: Select,
    has_column: ColumnResolver,
    fresh_name,
    outer_tables: dict[str, str],
    outer_block: Select | None = None,
) -> TransformResult:
    """The naive outer-join fix — **kept buggy on purpose** (section 5.4).

    The obvious repair for Kim's COUNT bug is to outer-join the inner
    relation with the outer relation's join column before grouping, so
    empty groups exist and COUNT yields 0.  Done naively — joining the
    outer column *without eliminating duplicates first* — it trades the
    COUNT bug for the duplicates bug: a join value appearing k times in
    the outer relation lands k copies of every matching inner row in
    one group, so COUNT (and SUM/AVG) come out k times too large.

    Implemented as NEST-JA2 minus its step-1 ``DISTINCT``: identical
    temp chain, but the outer projection keeps duplicates.  The Kim-bug
    lint's KB003 rule exists to catch exactly this shape.
    """
    from dataclasses import replace

    from repro.core.nest_ja2 import apply_nest_ja2

    result = apply_nest_ja2(
        inner, has_column, fresh_name, outer_tables, outer_block
    )
    temp1 = result.setup[0]
    result.setup[0] = TempTableDef(
        temp1.name, replace(temp1.query, distinct=False)
    )
    result.trace.insert(
        1,
        "NEST-JA (naive outer fix): step-1 DISTINCT dropped — outer "
        "duplicates flow into the aggregate (section 5.4 bug)",
    )
    return result
