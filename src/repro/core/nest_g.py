"""The recursive general transformation — procedure ``nest_g`` (section 9).

The paper models a nested query as a multi-way tree of query blocks and
transforms it by a *direct postorder recursive algorithm*: descend to
the innermost blocks, then, unwinding, apply the appropriate
transformation between each block and its parent:

* inner SELECT has an aggregate and a correlated join predicate →
  **type-JA**: ``nest_ja2()`` then immediately ``nest_nj()``;
* inner SELECT has an aggregate, no correlation → **type-A**: evaluate
  the block once and replace it with the resulting constant;
* no aggregate → **type-N/J**: ``nest_nj()``.

Because the recursion transforms children first, a join predicate that
spans several levels (the paper's Figure 2, where block E references a
table of block A across the aggregate block B) is *inherited* upward by
the NEST-N-J merges until it sits directly inside the aggregate block —
at which point the single-level NEST-JA2 applies.  This is the paper's
resolution of Kiessling's "correlation level greater than 1" concern.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.catalog.catalog import Catalog
from repro.core.classify import catalog_resolver, ensure_transformable
from repro.core.nest_ja import apply_nest_ja, apply_nest_ja_outer_naive
from repro.core.nest_ja2 import apply_nest_ja2
from repro.core.nest_nj import apply_nest_nj, dedupe_inner_setup
from repro.core.transform import TempTableDef
from repro.errors import TransformError
from repro.sql.analysis import is_correlated
from repro.sql.ast import (
    Comparison,
    Expr,
    InSubquery,
    Literal,
    MIRRORED_OPS,
    ScalarSubquery,
    Select,
    conjuncts,
    make_and,
    walk,
)
from repro.sql.printer import to_sql


@dataclass
class GeneralTransform:
    """Result of running ``nest_g`` on a query.

    Attributes:
        setup: temp-table definitions in build order.
        query: the canonical (single-level) query.
        trace: step-by-step description of the transformation.
        built: how many of ``setup`` were already materialized during
            transformation (to evaluate type-A blocks that referenced
            earlier temps); the pipeline builds the rest.
        root_tables: the root block's original FROM clause, before any
            merges (used by the ``dedupe_outer`` multiplicity fix-up).
        root_fanout_merge: True when a NEST-N-J merge at the root level
            may have changed output multiplicities (a type-J merge, or
            a type-N merge without inner dedup) — the Lemma-1 caveat.
    """

    setup: list[TempTableDef]
    query: Select
    trace: list[str]
    built: int = 0
    root_tables: tuple = ()
    root_fanout_merge: bool = False


def nest_g(
    select: Select,
    catalog: Catalog,
    ja_algorithm: str = "ja2",
    dedupe_inner: bool = False,
    join_method: str = "merge",
    engine: str = "row",
    parallelism: int = 1,
    parallel_threshold: int | None = None,
) -> GeneralTransform:
    """Transform an arbitrarily nested query to canonical form.

    Args:
        select: the (possibly nested) query; extended predicates
            (EXISTS/ANY/ALL) must already be rewritten.
        catalog: resolves schemas; type-A blocks are evaluated against
            it (System R behaviour), as are any temp tables they need.
        ja_algorithm: ``"ja2"`` (the paper's corrected algorithm) or
            ``"kim"`` (the original, bug-reproducing NEST-JA).
        dedupe_inner: project uncorrelated IN-subquery results
            duplicate-free before merging (the DESIGN.md multiset
            fix-up; off by default for paper fidelity).
        join_method: join method used when temp tables must be built
            during transformation (for type-A evaluation).
        engine: execution engine ("row" or "vectorized") for those
            eager temp builds.
        parallelism: intra-query fan-out for the eager temp builds and
            type-A evaluations (1 = serial), with ``parallel_threshold``
            the serial-below row-count cutoff (None = engine default).
    """
    driver = _NestG(
        catalog,
        ja_algorithm,
        dedupe_inner,
        join_method,
        engine,
        parallelism,
        parallel_threshold,
    )
    canonical = driver.transform(select, env={}, is_root=True)
    _check_canonical(canonical)
    return GeneralTransform(
        setup=driver.setup,
        query=canonical,
        trace=driver.trace,
        built=driver.built,
        root_tables=select.from_tables,
        root_fanout_merge=driver.root_fanout_merge,
    )


class _NestG:
    def __init__(
        self,
        catalog: Catalog,
        ja_algorithm: str,
        dedupe_inner: bool,
        join_method: str,
        engine: str = "row",
        parallelism: int = 1,
        parallel_threshold: int | None = None,
    ) -> None:
        if ja_algorithm not in ("ja2", "kim", "kim-outer"):
            raise TransformError(f"unknown JA algorithm {ja_algorithm!r}")
        self.catalog = catalog
        self.ja_algorithm = ja_algorithm
        self.dedupe_inner = dedupe_inner
        self.join_method = join_method
        self.engine = engine
        self.parallelism = parallelism
        self.parallel_threshold = parallel_threshold
        self.setup: list[TempTableDef] = []
        self.trace: list[str] = []
        self.built = 0
        self.root_fanout_merge = False
        self._has_column = catalog_resolver(catalog)

    # -- recursion ---------------------------------------------------------

    def transform(
        self, block: Select, env: dict[str, str], is_root: bool = False
    ) -> Select:
        """Postorder transformation of one query block."""
        ensure_transformable(block)

        while True:
            # Re-normalize every iteration: a comparison of *two*
            # subqueries (the exact ALL rewrite produces one) exposes
            # its left-side subquery only after the right side has been
            # merged away.
            block = _normalize_scalar_sides(block)
            found = self._first_nested_conjunct(block)
            if found is None:
                return block
            node = found
            inner = _inner_of(node)

            inner_env = dict(env)
            for ref in block.from_tables:
                inner_env[ref.binding] = ref.name
            transformed_inner = self.transform(inner, inner_env)
            if transformed_inner is not inner:
                new_node = _with_inner(node, transformed_inner)
                block = _replace_conjunct(block, node, new_node)
                node = new_node
                inner = transformed_inner

            block = self._dispatch(block, node, inner, env, inner_env, is_root)

    def _dispatch(
        self,
        block: Select,
        node: Expr,
        inner: Select,
        env: dict[str, str],
        inner_env: dict[str, str],
        is_root: bool = False,
    ) -> Select:
        visible = tuple(inner_env)
        has_column = self._resolver_for(inner_env)
        correlated = is_correlated(inner, has_column, visible)
        aggregated = inner.has_aggregate_select()

        if aggregated and correlated:
            return self._apply_ja(block, node, inner, inner_env, has_column)
        if aggregated:
            return self._apply_a(block, node, inner)
        if isinstance(node, InSubquery) and node.negated:
            if correlated:
                raise TransformError(
                    "correlated NOT IN cannot be transformed "
                    "(no canonical join captures anti-join semantics)"
                )
            return self._apply_a(block, node, inner)
        if not correlated and self.dedupe_inner and isinstance(node, InSubquery):
            temp_name = self.catalog.create_temp_name("NTEMP")
            temp, new_node = dedupe_inner_setup(node, temp_name)
            self.setup.append(temp)
            self.trace.append(f"NEST-N dedup: {temp.describe()}")
            block = _replace_conjunct(block, node, new_node)
            merged = apply_nest_nj(block, new_node)
            self.trace.append("NEST-N-J: merged deduplicated inner block")
            return merged
        label = "type-J" if correlated else "type-N"
        if is_root:
            # A plain NEST-N-J merge at the root can fan out outer rows
            # (the Lemma-1 multiset caveat); remember so the pipeline's
            # dedupe_outer fix-up can restore multiplicities.
            self.root_fanout_merge = True
        merged = apply_nest_nj(block, node)
        self.trace.append(f"NEST-N-J ({label}): merged inner block")
        return merged

    def _apply_ja(
        self,
        block: Select,
        node: Expr,
        inner: Select,
        inner_env: dict[str, str],
        has_column,
    ) -> Select:
        if isinstance(node, InSubquery) and not node.negated:
            # The aggregate yields a single row, so IN degenerates to =.
            converted = Comparison(node.operand, "=", ScalarSubquery(inner))
            block = _replace_conjunct(block, node, converted)
            node = converted
        if not isinstance(node, Comparison):
            raise TransformError(
                "type-JA nesting requires a scalar comparison predicate"
            )
        fresh = lambda: self.catalog.create_temp_name("TEMP")
        if self.ja_algorithm == "ja2":
            result = apply_nest_ja2(
                inner,
                has_column,
                fresh,
                outer_tables=inner_env,
                outer_block=block,
            )
        elif self.ja_algorithm == "kim-outer":
            result = apply_nest_ja_outer_naive(
                inner,
                has_column,
                fresh,
                outer_tables=inner_env,
                outer_block=block,
            )
        else:
            result = apply_nest_ja(inner, has_column, fresh())
        self.setup.extend(result.setup)
        self.trace.extend(result.trace)

        new_node = _with_inner(node, result.query)
        block = _replace_conjunct(block, node, new_node)
        merged = apply_nest_nj(block, new_node)
        self.trace.append("NEST-N-J: merged rewritten (type-J) inner block")
        return merged

    def _apply_a(self, block: Select, node: Expr, inner: Select) -> Select:
        """Type-A: evaluate the inner block once, substitute the result."""
        rows = self._evaluate(inner)
        if isinstance(node, InSubquery):
            values = tuple(Literal(row[0]) for row in rows)
            from repro.sql.ast import InList

            replacement: Expr = InList(node.operand, values, node.negated)
            self.trace.append(
                f"NEST-A: inner block evaluated to list of {len(values)} value(s)"
            )
        else:
            assert isinstance(node, Comparison)
            if len(rows) > 1:
                from repro.errors import CardinalityError

                raise CardinalityError(
                    f"scalar subquery returned {len(rows)} rows: {to_sql(inner)}"
                )
            value = rows[0][0] if rows else None
            replacement = Comparison(node.left, node.op, Literal(value))
            self.trace.append(f"NEST-A: inner block evaluated to constant {value!r}")
        return _replace_conjunct(block, node, replacement)

    def _evaluate(self, inner: Select) -> list[tuple]:
        """Evaluate an uncorrelated block, building pending temps first."""
        from repro.errors import ParameterizedPlanError
        from repro.sql.ast import Parameter

        if any(isinstance(n, Parameter) for n in walk(inner)):
            # The block's value would be baked into the plan as a
            # constant, so the plan would silently depend on this
            # particular parameter vector.  Callers that parameterize
            # plans (the serving layer) catch this and plan per vector.
            raise ParameterizedPlanError(
                "type-A subquery block contains a bind parameter; its "
                "value is folded into the plan at transform time, so "
                "the plan must be built per parameter vector: "
                + to_sql(inner)
            )
        self._build_pending_setup()
        from repro.engine.nested_iteration import NestedIterationExecutor

        return (
            NestedIterationExecutor(
                self.catalog,
                parallelism=self.parallelism,
                parallel_threshold=self.parallel_threshold,
            )
            .execute(inner)
            .rows
        )

    def _build_pending_setup(self) -> None:
        from repro.errors import ParameterizedPlanError
        from repro.optimizer.executor import SingleLevelExecutor
        from repro.sql.ast import Parameter

        while self.built < len(self.setup):
            definition = self.setup[self.built]
            if any(isinstance(n, Parameter) for n in walk(definition.query)):
                # The temp's rows feed a type-A evaluation whose result
                # is folded into the plan; see _evaluate.
                raise ParameterizedPlanError(
                    "temp table built during transformation contains a "
                    "bind parameter: " + to_sql(definition.query)
                )
            executor = SingleLevelExecutor(
                self.catalog,
                self.join_method,
                engine=self.engine,
                parallelism=self.parallelism,
                parallel_threshold=self.parallel_threshold,
            )
            relation = executor.execute(definition.query)
            self.catalog.register_temp(
                definition.name,
                relation.heap,
                executor.output_names(definition.query),
            )
            self.trace.append(f"built {definition.name} (needed for NEST-A)")
            self.built += 1

    # -- helpers -------------------------------------------------------------

    def _first_nested_conjunct(self, block: Select) -> Expr | None:
        for conjunct in conjuncts(block.where):
            if _embeds(conjunct):
                return conjunct
        return None

    def _resolver_for(self, env: dict[str, str]):
        base = self._has_column

        def has_column(binding: str, column: str) -> bool:
            table = env.get(binding)
            if table is not None and self.catalog.has_table(table):
                return self.catalog.schema_of(table).has_column(column)
            return base(binding, column)

        return has_column


# ---------------------------------------------------------------------------
# AST surgery helpers
# ---------------------------------------------------------------------------


def _embeds(expr: Expr) -> bool:
    if isinstance(expr, InSubquery):
        return True
    if isinstance(expr, Comparison):
        return isinstance(expr.right, ScalarSubquery) or isinstance(
            expr.left, ScalarSubquery
        )
    return False


def _inner_of(node: Expr) -> Select:
    if isinstance(node, InSubquery):
        return node.query
    if isinstance(node, Comparison) and isinstance(node.right, ScalarSubquery):
        return node.right.query
    raise TransformError(f"not a nested predicate: {node!r}")


def _with_inner(node: Expr, new_inner: Select) -> Expr:
    if isinstance(node, InSubquery):
        return replace(node, query=new_inner)
    if isinstance(node, Comparison) and isinstance(node.right, ScalarSubquery):
        return Comparison(node.left, node.op, ScalarSubquery(new_inner), node.outer)
    raise TransformError(f"not a nested predicate: {node!r}")


def _replace_conjunct(block: Select, old: Expr, new: Expr) -> Select:
    parts: list[Expr] = []
    hit = False
    for conjunct in conjuncts(block.where):
        if conjunct is old:
            parts.append(new)
            hit = True
        else:
            parts.append(conjunct)
    if not hit:
        raise TransformError("conjunct to replace was not found")
    return replace(block, where=make_and(parts))


def _normalize_scalar_sides(block: Select) -> Select:
    """Mirror ``(SELECT ...) op x`` to ``x op' (SELECT ...)``."""
    changed = False
    parts: list[Expr] = []
    for conjunct in conjuncts(block.where):
        if (
            isinstance(conjunct, Comparison)
            and isinstance(conjunct.left, ScalarSubquery)
            and not isinstance(conjunct.right, ScalarSubquery)
        ):
            parts.append(
                Comparison(
                    conjunct.right,
                    MIRRORED_OPS[conjunct.op],
                    conjunct.left,
                    conjunct.outer,
                    conjunct.null_safe,
                )
            )
            changed = True
        else:
            parts.append(conjunct)
    if not changed:
        return block
    return replace(block, where=make_and(parts))


def _check_canonical(block: Select) -> None:
    for node in walk(block):
        if isinstance(node, Select) and node is not block:
            raise TransformError(
                "transformation left a nested block behind: " + to_sql(node)
            )
