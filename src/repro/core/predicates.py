"""Section 8 — transforming EXISTS, NOT EXISTS, ANY, and ALL.

Each extended predicate is rewritten to a scalar-aggregate nested
predicate, after which it is a type-A or type-JA predicate and the
regular algorithms apply:

* ``EXISTS (Q)``      →  ``0 < (SELECT COUNT(...) ...)``
* ``NOT EXISTS (Q)``  →  ``0 = (SELECT COUNT(...) ...)``
* ``x = ANY (Q)`` → ``x IN (Q)`` and ``x <> ALL (Q)`` → ``x NOT IN (Q)``
  (normalized by the parser already).

For ANY/ALL two rewrite strategies are offered
(``quantifier_mode``):

``"exact"`` (the default) — counting rewrites that preserve SQL
semantics for every comparison operator, including the empty-set and
NULL-item edge cases the paper's MIN/MAX table gets wrong:

* ``x op ANY (Q)``  →  ``0 < (SELECT COUNT(*) FROM ... WHERE ... AND
  x op item)`` — some inner row compares True;
* ``x op ALL (Q)``  →  ``(SELECT COUNT(*) FROM ... WHERE ...) =
  (SELECT COUNT(*) FROM ... WHERE ... AND x op item)`` — *every* inner
  row compares True (vacuously satisfied by an empty set, and a NULL
  item or NULL ``x`` makes the right count fall short, rejecting the
  tuple exactly as three-valued ALL does).

These are exact in positive conjunct contexts, the only place the
transformation pipeline accepts subqueries (``ensure_transformable``
rejects subqueries under OR/NOT).  They also cover ``= ALL`` and
``<> ANY``, which have no MIN/MAX form.

``"paper"`` — the paper's section 8.2 table:

* ``x < ANY (Q)``     →  ``x < (SELECT MAX(item) ...)``   (also ``<=``)
* ``x < ALL (Q)``     →  ``x < (SELECT MIN(item) ...)``   (also ``<=``)
* ``x > ANY (Q)``     →  ``x > (SELECT MIN(item) ...)``   (also ``>=``)
* ``x > ALL (Q)``     →  ``x > (SELECT MAX(item) ...)``   (also ``>=``)

Semantic caveats of the paper mode (the paper itself says "logically
(but not necessarily semantically) equivalent", section 8.2) — all
demonstrated in the test suite:

* with an **empty** inner result, ``x < ALL (∅)`` is *true* while the
  rewritten ``x < (SELECT MIN(...))`` compares against NULL and is
  unknown (rejects the tuple);
* **NULLs in the inner column** are ignored by MIN/MAX but participate
  in ANY/ALL comparisons as unknowns;
* for EXISTS the paper counts ``COUNT(selitems)``, which undercounts
  when the selected column is NULL; the default here is the always-
  correct ``COUNT(*)`` (pass ``exists_count_mode="paper"`` for the
  literal behaviour).
"""

from __future__ import annotations

from dataclasses import replace

from repro.errors import TransformError
from repro.sql.ast import (
    And,
    Between,
    ColumnRef,
    Comparison,
    Exists,
    Expr,
    FuncCall,
    InList,
    InSubquery,
    IsNull,
    Literal,
    Not,
    Or,
    Quantified,
    ScalarSubquery,
    Select,
    SelectItem,
    Star,
    make_and,
)

#: op, quantifier → aggregate for the section 8.2 table (paper mode).
_QUANTIFIER_AGG = {
    ("<", "ANY"): "MAX",
    ("<=", "ANY"): "MAX",
    (">", "ANY"): "MIN",
    (">=", "ANY"): "MIN",
    ("<", "ALL"): "MIN",
    ("<=", "ALL"): "MIN",
    (">", "ALL"): "MAX",
    (">=", "ALL"): "MAX",
}


def rewrite_extended_predicates(
    select: Select,
    exists_count_mode: str = "star",
    quantifier_mode: str = "exact",
) -> Select:
    """Rewrite every EXISTS / NOT EXISTS / ANY / ALL in a query tree."""
    if exists_count_mode not in ("star", "paper"):
        raise TransformError(f"unknown exists_count_mode {exists_count_mode!r}")
    if quantifier_mode not in ("exact", "paper"):
        raise TransformError(f"unknown quantifier_mode {quantifier_mode!r}")
    return _rewrite_select(select, exists_count_mode, quantifier_mode)


def _rewrite_select(select: Select, mode: str, qmode: str) -> Select:
    where = (
        _rewrite_expr(select.where, mode, qmode)
        if select.where is not None
        else None
    )
    having = (
        _rewrite_expr(select.having, mode, qmode)
        if select.having is not None
        else None
    )
    return replace(select, where=where, having=having)


def _rewrite_expr(expr: Expr, mode: str, qmode: str) -> Expr:
    if isinstance(expr, And):
        return And(tuple(_rewrite_expr(op, mode, qmode) for op in expr.operands))
    if isinstance(expr, Or):
        return Or(tuple(_rewrite_expr(op, mode, qmode) for op in expr.operands))
    if isinstance(expr, Not):
        inner = expr.operand
        if isinstance(inner, Exists):
            return _exists_to_count(
                inner.query, negated=not inner.negated, mode=mode, qmode=qmode
            )
        return Not(_rewrite_expr(inner, mode, qmode))
    if isinstance(expr, Exists):
        return _exists_to_count(
            expr.query, negated=expr.negated, mode=mode, qmode=qmode
        )
    if isinstance(expr, Quantified):
        if qmode == "exact":
            return _quantified_to_count(expr, mode, qmode)
        return _quantified_to_aggregate(expr, mode, qmode)
    if isinstance(expr, InSubquery):
        return replace(expr, query=_rewrite_select(expr.query, mode, qmode))
    if isinstance(expr, Comparison):
        return Comparison(
            _rewrite_scalar(expr.left, mode, qmode),
            expr.op,
            _rewrite_scalar(expr.right, mode, qmode),
            expr.outer,
            expr.null_safe,
        )
    if isinstance(expr, (IsNull, Between, InList)):
        return expr
    return expr


def _rewrite_scalar(expr: Expr, mode: str, qmode: str) -> Expr:
    if isinstance(expr, ScalarSubquery):
        return ScalarSubquery(_rewrite_select(expr.query, mode, qmode))
    return expr


def _exists_to_count(
    query: Select, negated: bool, mode: str, qmode: str
) -> Comparison:
    """``[NOT] EXISTS (Q)`` → ``0 < COUNT`` / ``0 = COUNT`` (section 8.1)."""
    inner = _rewrite_select(query, mode, qmode)
    count_arg: Expr = Star()
    if mode == "paper" and len(inner.items) == 1 and isinstance(
        inner.items[0].expr, ColumnRef
    ):
        count_arg = inner.items[0].expr
    counting = replace(
        inner,
        items=(SelectItem(FuncCall("COUNT", count_arg), alias="CNT"),),
    )
    op = "=" if negated else "<"
    return Comparison(Literal(0), op, ScalarSubquery(counting))


def _quantified_item(inner: Select) -> Expr:
    if len(inner.items) != 1:
        raise TransformError("quantified subquery must select one item")
    item = inner.items[0].expr
    if isinstance(item, Star):
        raise TransformError("quantified subquery cannot select *")
    return item


def _quantified_to_count(pred: Quantified, mode: str, qmode: str) -> Expr:
    """Exact counting rewrite of ``x op ANY|ALL (Q)`` (see module doc)."""
    inner = _rewrite_select(pred.query, mode, qmode)
    item = _quantified_item(inner)
    matches = replace(
        inner,
        items=(SelectItem(FuncCall("COUNT", Star()), alias="CNT"),),
        where=make_and([inner.where, Comparison(pred.operand, pred.op, item)]),
    )
    if pred.quantifier == "ANY":
        return Comparison(Literal(0), "<", ScalarSubquery(matches))
    total = replace(
        inner,
        items=(SelectItem(FuncCall("COUNT", Star()), alias="CNT"),),
    )
    return Comparison(ScalarSubquery(total), "=", ScalarSubquery(matches))


def _quantified_to_aggregate(pred: Quantified, mode: str, qmode: str) -> Comparison:
    """``x op ANY|ALL (Q)`` → scalar comparison with MIN/MAX (section 8.2)."""
    agg = _QUANTIFIER_AGG.get((pred.op, pred.quantifier))
    if agg is None:
        raise TransformError(
            f"no section-8 transformation for {pred.op} {pred.quantifier} "
            "(only =ANY and <>ALL have IN forms, handled by the parser)"
        )
    inner = _rewrite_select(pred.query, mode, qmode)
    item = _quantified_item(inner)
    aggregated = replace(
        inner,
        items=(SelectItem(FuncCall(agg, item), alias="AGG"),),
    )
    return Comparison(pred.operand, pred.op, ScalarSubquery(aggregated))
