"""The paper's contribution: nested-query classification and the
transformation algorithms NEST-N-J, NEST-JA, NEST-JA2, the section-8
predicate extensions, and the recursive general algorithm NEST-G.
"""

from repro.core.classify import (
    NestedPredicate,
    NestingType,
    catalog_resolver,
    classify_block,
    classify_nested_predicate,
)
from repro.core.nest_g import GeneralTransform, nest_g
from repro.core.nest_ja import apply_nest_ja
from repro.core.nest_ja2 import apply_nest_ja2
from repro.core.nest_nj import apply_nest_nj
from repro.core.pipeline import Engine, RunReport
from repro.core.predicates import rewrite_extended_predicates
from repro.core.transform import TempTableDef, TransformResult

__all__ = [
    "Engine",
    "GeneralTransform",
    "NestedPredicate",
    "NestingType",
    "RunReport",
    "TempTableDef",
    "TransformResult",
    "apply_nest_ja",
    "apply_nest_ja2",
    "apply_nest_nj",
    "catalog_resolver",
    "classify_block",
    "classify_nested_predicate",
    "nest_g",
    "rewrite_extended_predicates",
]
