"""Shared result types for the transformation algorithms.

A transformation turns one nested query into (a) an ordered list of
temporary-table definitions — each itself a single-level query — and
(b) a final, canonical (single-level) query referencing them.  This is
exactly the paper's presentation: Kiessling's Q2 becomes ``TEMP1``,
``TEMP2``, ``TEMP3`` plus one final SELECT (section 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sql.ast import Select
from repro.sql.printer import to_sql


@dataclass(frozen=True)
class TempTableDef:
    """One temporary relation: a name bound to a single-level query."""

    name: str
    query: Select

    def describe(self) -> str:
        return f"{self.name} = ({to_sql(self.query)})"


@dataclass
class TransformResult:
    """Output of a transformation algorithm.

    Attributes:
        setup: temp-table definitions, in build order.
        query: the rewritten query.  After a complete transformation it
            is canonical (contains no nested predicates).
        trace: human-readable steps, used by EXPLAIN and the NEST-G demo.
    """

    setup: list[TempTableDef] = field(default_factory=list)
    query: Select | None = None
    trace: list[str] = field(default_factory=list)

    def describe(self) -> str:
        lines = [d.describe() for d in self.setup]
        if self.query is not None:
            lines.append(to_sql(self.query))
        return "\n".join(lines)
