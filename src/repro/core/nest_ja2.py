"""The paper's corrected algorithm NEST-JA2 (section 6.1).

    Algorithm NEST-JA2
    1. Project the join column of the outer relation, and restrict it
       with any simple predicates applying to the outer relation.
    2. Create a temporary relation, joining the inner relation with the
       projection of the outer relation.  If the aggregate function is
       COUNT, the join must be an outer join, and the inner relation
       must be restricted and projected before the join is performed.
       If the aggregate function is COUNT(*), compute the COUNT
       function over the join column.  The join predicate must use the
       same operator as the join predicate in the original query
       (except that it must be converted to the corresponding outer
       operator in the case of COUNT), and the join predicate in the
       original query must be changed to =.  In the SELECT clause,
       select the join column from the outer table instead of the
       inner table.  The GROUP BY clause will also contain columns from
       the outer relation.
    3. Join the outer relation with the temporary relation, according
       to the transformed version of the original query.

This module implements steps 1–2 and rewrites the *inner block* to a
type-J block over the temporary relation (equality join predicates);
step 3 is then algorithm NEST-N-J, exactly as the paper's recursive
procedure ``nest_g`` sequences it (``nest_ja2`` immediately followed by
``nest_nj``).

The three bug fixes, mapped to code:

* **COUNT bug** → the temp is built with a *left outer* join preserving
  the outer projection, so empty groups appear and COUNT yields 0;
  the inner relation is restricted/projected *before* the join
  (section 5.2's ordering requirement);
* **COUNT(\\*)** → rewritten to COUNT over the inner join column;
* **non-equality operators** → the original operator is used in the
  temp-creation join; the rewritten query joins on equality;
* **duplicates** → step 1 projects the outer join column ``DISTINCT``,
  so duplicates in the outer relation cannot inflate COUNT/SUM/AVG.
"""

from __future__ import annotations

from repro.core._ja_common import InnerBlockParts, decompose_inner_block
from repro.core.transform import TempTableDef, TransformResult
from repro.errors import TransformError
from repro.sql.analysis import ColumnResolver
from repro.sql.ast import (
    MIRRORED_OPS,
    ColumnRef,
    Comparison,
    Expr,
    FuncCall,
    Select,
    SelectItem,
    TableRef,
    column_refs,
    conjuncts,
    make_and,
)


def apply_nest_ja2(
    inner: Select,
    has_column: ColumnResolver,
    fresh_name,
    outer_tables: dict[str, str],
    outer_block: Select | None = None,
) -> TransformResult:
    """Rewrite a type-JA inner block per algorithm NEST-JA2.

    Args:
        inner: the inner query block.
        has_column: schema resolver.
        fresh_name: zero-argument callable yielding fresh temp names.
        outer_tables: binding → catalog table name for every enclosing
            block's FROM entries (needed to project the outer relation).
        outer_block: the immediately enclosing block, if available;
            used only to mine its simple predicates for the step-1
            restriction (an optimization the paper includes).

    Returns:
        setup temp definitions (TEMP1 [, TEMP2], TEMP3) and the
        rewritten inner block — a type-J block over TEMP3 with equality
        join predicates, ready for NEST-N-J.
    """
    parts = decompose_inner_block(inner, has_column)
    trace: list[str] = []

    outer_binding = _single_outer_binding(parts)
    outer_table = outer_tables.get(outer_binding)
    if outer_table is None:
        raise TransformError(
            f"join predicate references unknown outer binding {outer_binding!r}"
        )

    # -- Step 1: TEMP1 — DISTINCT projection of the outer join columns,
    # restricted by the outer block's simple predicates on that table.
    temp1_name = fresh_name()
    outer_cols = _distinct_outer_columns(parts)
    temp1_items = tuple(
        SelectItem(ColumnRef(outer_binding, col.column), alias=f"C{i + 1}")
        for i, col in enumerate(outer_cols)
    )
    temp1_where = _outer_simple_predicates(outer_block, outer_binding, has_column)
    temp1 = TempTableDef(
        temp1_name,
        Select(
            items=temp1_items,
            from_tables=(TableRef(outer_table, alias=_alias_for(outer_binding, outer_table)),),
            where=temp1_where,
            distinct=True,
        ),
    )
    trace.append(f"NEST-JA2 step 1: {temp1.describe()}")
    col_index = {col.column: f"C{i + 1}" for i, col in enumerate(outer_cols)}

    is_count = parts.aggregate.name == "COUNT"

    # -- Step 2a: TEMP2 — restriction and projection of the inner block
    # (always built, matching the section 7 cost analysis's Rt3; for
    # COUNT it is *required* for correctness, section 5.2).
    temp2_name = fresh_name()
    inner_proj: list[SelectItem] = []
    join_col_alias: dict[int, str] = {}
    for i, pred in enumerate(parts.join_preds):
        alias = f"J{i + 1}"
        join_col_alias[i] = alias
        inner_proj.append(SelectItem(pred.inner_col, alias=alias))
    agg_arg_alias = None
    if isinstance(parts.aggregate.arg, ColumnRef):
        agg_arg_alias = "VAL"
        inner_proj.append(SelectItem(parts.aggregate.arg, alias=agg_arg_alias))
    temp2 = TempTableDef(
        temp2_name,
        Select(
            items=tuple(inner_proj),
            from_tables=inner.from_tables,
            where=make_and(parts.simple_preds),
        ),
    )
    trace.append(f"NEST-JA2 step 2 (restrict/project inner): {temp2.describe()}")

    # -- Step 2b: TEMP3 — join TEMP1 with TEMP2 using the *original*
    # operators (outer join for COUNT), GROUP BY the outer columns,
    # aggregate.  COUNT(*) becomes COUNT(inner join column).
    temp3_name = fresh_name()
    join_conjuncts: list[Expr] = []
    for i, pred in enumerate(parts.join_preds):
        left = ColumnRef(temp1_name, col_index[pred.outer_col.column])
        right = ColumnRef(temp2_name, join_col_alias[i])
        # pred reads "inner op outer"; with TEMP1 (outer) on the left
        # the operator mirrors:  TEMP1.C mirror(op) TEMP2.J.
        join_conjuncts.append(
            Comparison(
                left,
                MIRRORED_OPS[pred.op],
                right,
                outer="left" if is_count else None,
            )
        )

    if is_count:
        count_arg = ColumnRef(
            temp2_name, agg_arg_alias or join_col_alias[0]
        )
        agg_expr: FuncCall = FuncCall("COUNT", count_arg, parts.aggregate.distinct)
    else:
        if agg_arg_alias is None:
            raise TransformError(f"{parts.aggregate.name}(*) is not valid SQL")
        agg_expr = FuncCall(
            parts.aggregate.name,
            ColumnRef(temp2_name, agg_arg_alias),
            parts.aggregate.distinct,
        )

    group_cols = tuple(
        ColumnRef(temp1_name, f"C{i + 1}") for i in range(len(outer_cols))
    )
    temp3_items = tuple(
        SelectItem(col, alias=f"C{i + 1}") for i, col in enumerate(group_cols)
    ) + (SelectItem(agg_expr, alias="CAGG"),)
    temp3 = TempTableDef(
        temp3_name,
        Select(
            items=temp3_items,
            from_tables=(TableRef(temp1_name), TableRef(temp2_name)),
            where=make_and(join_conjuncts),
            group_by=group_cols,
        ),
    )
    trace.append(f"NEST-JA2 step 2 (temp with aggregate): {temp3.describe()}")

    # -- Rewritten inner block: type-J over TEMP3 with equality joins
    # ("the join predicate in the original query must be changed to =").
    # For COUNT the equality must be *null-safe*: the outer join kept a
    # TEMP3 group for a NULL outer value (COUNT = 0), and a plain `=`
    # in the final join would silently drop exactly those rows again.
    rewritten_preds = [
        Comparison(
            ColumnRef(temp3_name, col_index[col.column]),
            "=",
            ColumnRef(outer_binding, col.column),
            null_safe=is_count,
        )
        for col in outer_cols
    ]
    rewritten = Select(
        items=(SelectItem(ColumnRef(temp3_name, "CAGG"), alias="CAGG"),),
        from_tables=(TableRef(temp3_name),),
        where=make_and(rewritten_preds),
    )
    trace.append(
        "NEST-JA2 step 3: inner block rewritten to equality join with "
        f"{temp3_name}"
    )

    return TransformResult(setup=[temp1, temp2, temp3], query=rewritten, trace=trace)


def _single_outer_binding(parts: InnerBlockParts) -> str:
    bindings = {pred.outer_col.table for pred in parts.join_preds}
    if None in bindings:
        raise TransformError(
            "correlated outer column references must be qualified"
        )
    if len(bindings) != 1:
        raise TransformError(
            "NEST-JA2 requires all join predicates to reference one outer "
            f"relation, found {sorted(b for b in bindings if b)}"
        )
    return next(iter(bindings))


def _distinct_outer_columns(parts: InnerBlockParts) -> list[ColumnRef]:
    seen: list[ColumnRef] = []
    for pred in parts.join_preds:
        if all(pred.outer_col.column != col.column for col in seen):
            seen.append(pred.outer_col)
    return seen


def _alias_for(binding: str, table: str) -> str | None:
    return binding if binding != table else None


def _outer_simple_predicates(
    outer_block: Select | None,
    outer_binding: str,
    has_column: ColumnResolver,
) -> Expr | None:
    """Step 1's restriction: the outer block's predicates local to Ri.

    An *unqualified* reference is attributed to ``outer_binding`` only
    when no other FROM entry of the outer block exposes the same column
    name — otherwise the reference may belong to a different table and
    hoisting the conjunct into TEMP1 would restrict the wrong relation.
    """
    if outer_block is None:
        return None

    def owned_by_outer(ref) -> bool:
        if ref.table is not None:
            return ref.table == outer_binding
        if not has_column(outer_binding, ref.column):
            return False
        others = [
            binding
            for binding in outer_block.table_bindings
            if binding != outer_binding and has_column(binding, ref.column)
        ]
        return not others

    local: list[Expr] = []
    for conjunct in conjuncts(outer_block.where):
        refs = list(column_refs(conjunct))
        if not refs:
            continue
        if all(owned_by_outer(ref) for ref in refs):
            # Exclude anything containing a subquery.
            from repro.sql.ast import walk, Select as SelectNode

            if any(isinstance(n, SelectNode) for n in walk(conjunct)):
                continue
            local.append(conjunct)
    return make_and(local)
