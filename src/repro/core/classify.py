"""Kim's classification of nested predicates (paper section 2).

A nested predicate ``[Ri.Ck op Q]`` is classified by two independent
questions about the inner query block ``Q``:

======================  =======================  ======
correlated join pred?   aggregate SELECT clause  type
======================  =======================  ======
no                      yes                      A
no                      no                       N
yes                     no                       J
yes                     yes                      JA
======================  =======================  ======

"Correlated" means ``Q`` (or a block nested inside it) contains a join
predicate referencing a relation that is not in its own FROM clause —
the relation of an outer query block.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.catalog.catalog import Catalog
from repro.errors import TransformError
from repro.sql.analysis import ColumnResolver, is_correlated
from repro.sql.ast import (
    Comparison,
    Exists,
    Expr,
    InSubquery,
    Quantified,
    ScalarSubquery,
    Select,
    conjuncts,
)


class NestingType(enum.Enum):
    """The four nesting types of [KIM 82] relevant to the paper."""

    TYPE_A = "A"
    TYPE_N = "N"
    TYPE_J = "J"
    TYPE_JA = "JA"

    @property
    def is_correlated(self) -> bool:
        return self in (NestingType.TYPE_J, NestingType.TYPE_JA)

    @property
    def has_aggregate(self) -> bool:
        return self in (NestingType.TYPE_A, NestingType.TYPE_JA)


@dataclass(frozen=True)
class NestedPredicate:
    """A nested predicate found in a query block's WHERE clause.

    Attributes:
        node: the predicate expression embedding the inner block —
            a :class:`Comparison` whose right side is a scalar subquery,
            or an :class:`InSubquery`.
        query: the inner query block.
        nesting: Kim's classification of this predicate.
    """

    node: Expr
    query: Select
    nesting: NestingType


def catalog_resolver(catalog: Catalog) -> ColumnResolver:
    """A column resolver backed by the catalog's schemas.

    Aliases are not resolvable by name alone; alias bindings resolve
    through qualification, which the paper's examples always use.
    """

    def has_column(binding: str, column: str) -> bool:
        if catalog.has_table(binding):
            return catalog.schema_of(binding).has_column(column)
        return False

    return has_column


def classify_nested_predicate(
    node: Expr,
    outer: Select,
    has_column: ColumnResolver,
    enclosing: tuple[str, ...] = (),
) -> NestedPredicate:
    """Classify one nested predicate of ``outer``'s WHERE clause.

    Args:
        node: the predicate containing the inner block.
        outer: the block the predicate belongs to.
        has_column: schema resolver (see :func:`catalog_resolver`).
        enclosing: bindings of blocks enclosing ``outer`` (for
            classification deep inside a multi-level query).
    """
    query = _inner_block(node)
    visible = enclosing + outer.table_bindings
    correlated = is_correlated(query, has_column, visible)
    aggregated = query.has_aggregate_select()
    if correlated:
        nesting = NestingType.TYPE_JA if aggregated else NestingType.TYPE_J
    else:
        nesting = NestingType.TYPE_A if aggregated else NestingType.TYPE_N
    return NestedPredicate(node=node, query=query, nesting=nesting)


def classify_block(
    block: Select,
    has_column: ColumnResolver,
    enclosing: tuple[str, ...] = (),
) -> list[NestedPredicate]:
    """Classify every nested predicate among the block's WHERE conjuncts.

    Only top-level conjuncts are considered: the transformation
    algorithms (like the paper) assume nested predicates are ANDed in.
    A nested predicate under OR/NOT is reported as an error by
    :func:`ensure_transformable`.
    """
    found: list[NestedPredicate] = []
    for conjunct in conjuncts(block.where):
        if _embeds_block(conjunct):
            found.append(
                classify_nested_predicate(conjunct, block, has_column, enclosing)
            )
    return found


def ensure_transformable(block: Select) -> None:
    """Reject nested predicates the algorithms cannot reach.

    The transformations operate on ANDed nested predicates.  A subquery
    under OR or NOT (other than the recognized NOT IN / NOT EXISTS
    forms, which are their own node types) cannot be unnested by the
    paper's algorithms; fail loudly instead of producing wrong plans.
    """
    from repro.sql.ast import And, Not, Or, walk

    def contains_subquery(expr: Expr) -> bool:
        return any(
            _embeds_block(node) for node in walk(expr, into_subqueries=False)
        )

    def check(expr: Expr) -> None:
        if isinstance(expr, And):
            for operand in expr.operands:
                check(operand)
        elif isinstance(expr, (Or, Not)) and contains_subquery(expr):
            raise TransformError(
                "nested predicate under OR/NOT cannot be transformed "
                "by the paper's algorithms"
            )

    if block.where is not None:
        check(block.where)


def _embeds_block(expr: Expr) -> bool:
    if isinstance(expr, InSubquery):
        return True
    if isinstance(expr, (Exists, Quantified)):
        return True
    if isinstance(expr, Comparison):
        return isinstance(expr.left, ScalarSubquery) or isinstance(
            expr.right, ScalarSubquery
        )
    return False


def _inner_block(node: Expr) -> Select:
    if isinstance(node, InSubquery):
        return node.query
    if isinstance(node, Comparison):
        if isinstance(node.right, ScalarSubquery):
            return node.right.query
        if isinstance(node.left, ScalarSubquery):
            return node.left.query
    if isinstance(node, (Exists, Quantified)):
        raise TransformError(
            "EXISTS/ANY/ALL predicates must be rewritten first "
            "(repro.core.predicates.rewrite_extended_predicates)"
        )
    raise TransformError(f"not a nested predicate: {node!r}")
