"""Shared analysis for the type-JA transformations (NEST-JA, NEST-JA2).

Both algorithms begin the same way: take the inner query block apart
into its aggregate SELECT item, its *correlated join predicates* (the
paper's ``R2.Cn op R1.Cp``), and its *simple predicates* (local to the
inner relations).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TransformError
from repro.sql.analysis import ColumnResolver
from repro.sql.ast import (
    MIRRORED_OPS,
    ColumnRef,
    Comparison,
    Expr,
    FuncCall,
    Select,
    Star,
    column_refs,
    conjuncts,
)


@dataclass(frozen=True)
class JoinPredicate:
    """A correlated join predicate, oriented as ``inner op outer``.

    ``SUPPLY.PNUM < PARTS.PNUM`` becomes ``(SUPPLY.PNUM, "<",
    PARTS.PNUM)`` — the operator reads left-to-right from the inner
    column to the outer column, the direction the paper's section 5.3
    examples use.
    """

    inner_col: ColumnRef
    op: str
    outer_col: ColumnRef


@dataclass
class InnerBlockParts:
    """Decomposition of a type-JA inner query block."""

    aggregate: FuncCall
    join_preds: list[JoinPredicate]
    simple_preds: list[Expr]


def decompose_inner_block(
    inner: Select, has_column: ColumnResolver
) -> InnerBlockParts:
    """Split a type-JA inner block into aggregate + join + simple parts.

    Raises :class:`TransformError` for shapes the paper's algorithms do
    not define: non-aggregate SELECT, correlated predicates that are
    not simple column comparisons, aggregates over expressions, etc.
    """
    aggregate = _single_aggregate(inner)
    local = set(inner.table_bindings)

    join_preds: list[JoinPredicate] = []
    simple_preds: list[Expr] = []
    for conjunct in conjuncts(inner.where):
        sides = {
            _side(ref, local, has_column) for ref in column_refs(conjunct)
        }
        if sides <= {"inner"}:
            simple_preds.append(conjunct)
            continue
        join_preds.append(_as_join_predicate(conjunct, local, has_column))

    if not join_preds:
        raise TransformError(
            "inner block has no correlated join predicate (type-A, not JA)"
        )
    return InnerBlockParts(aggregate, join_preds, simple_preds)


def _single_aggregate(inner: Select) -> FuncCall:
    if len(inner.items) != 1:
        raise TransformError("type-JA inner block must select exactly one item")
    expr = inner.items[0].expr
    if not (isinstance(expr, FuncCall) and expr.is_aggregate):
        raise TransformError(
            "type-JA inner block must select a single aggregate function"
        )
    if not isinstance(expr.arg, (ColumnRef, Star)):
        raise TransformError("aggregate argument must be a column or *")
    if isinstance(expr.arg, Star) and expr.name != "COUNT":
        raise TransformError(f"{expr.name}(*) is not valid SQL")
    if inner.group_by or inner.having or inner.distinct:
        raise TransformError(
            "inner blocks with GROUP BY/HAVING/DISTINCT are not supported"
        )
    return expr


def _side(ref: ColumnRef, local: set[str], has_column: ColumnResolver) -> str:
    if ref.table is not None:
        return "inner" if ref.table in local else "outer"
    if any(has_column(binding, ref.column) for binding in local):
        return "inner"
    return "outer"


def _as_join_predicate(
    conjunct: Expr, local: set[str], has_column: ColumnResolver
) -> JoinPredicate:
    if not (
        isinstance(conjunct, Comparison)
        and isinstance(conjunct.left, ColumnRef)
        and isinstance(conjunct.right, ColumnRef)
    ):
        raise TransformError(
            f"correlated predicate is not a simple column comparison: {conjunct!r}"
        )
    left_side = _side(conjunct.left, local, has_column)
    right_side = _side(conjunct.right, local, has_column)
    if {left_side, right_side} != {"inner", "outer"}:
        raise TransformError(
            "join predicate must compare an inner column with an outer column"
        )
    if left_side == "inner":
        return JoinPredicate(conjunct.left, conjunct.op, conjunct.right)
    return JoinPredicate(
        conjunct.right, MIRRORED_OPS[conjunct.op], conjunct.left
    )
