"""End-to-end query pipeline: parse → rewrite → transform → execute.

:class:`Engine` is the orchestrator the examples and benchmarks use.
It offers the two evaluation strategies the paper compares:

* ``method="nested_iteration"`` — System R's strategy (the baseline);
* ``method="transform"`` — rewrite the query with section 8's predicate
  extensions, run NEST-G (NEST-A / NEST-N-J / NEST-JA2), build the temp
  tables, and evaluate the canonical query with the chosen join method;
* ``method="auto"`` — try the transformation, fall back to nested
  iteration for queries outside the algorithms' reach.

Every run returns a :class:`RunReport` with the result rows, the page
I/O consumed (the paper's cost measure), and the transformation trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.catalog import Catalog
from repro.core.classify import catalog_resolver
from repro.core.nest_g import GeneralTransform, nest_g
from repro.core.predicates import rewrite_extended_predicates
from repro.engine.nested_iteration import NestedIterationExecutor, QueryResult
from repro.errors import ReproError, TransformError
from repro.optimizer.executor import SingleLevelExecutor
from repro.sql.ast import Select
from repro.sql.parser import parse
from repro.sql.printer import to_sql
from repro.storage.stats import IOStats


@dataclass
class RunReport:
    """Everything a benchmark wants to know about one query run."""

    result: QueryResult
    io: IOStats
    method: str
    join_method: str | None = None
    canonical_sql: str | None = None
    setup_sql: list[str] = field(default_factory=list)
    trace: list[str] = field(default_factory=list)
    steps: list[str] = field(default_factory=list)
    temp_pages: dict[str, int] = field(default_factory=dict)

    def describe(self) -> str:
        lines = [f"method: {self.method}"]
        if self.join_method:
            lines.append(f"join method: {self.join_method}")
        for sql in self.setup_sql:
            lines.append(f"setup: {sql}")
        if self.canonical_sql:
            lines.append(f"canonical: {self.canonical_sql}")
        lines.append(self.io.format())
        return "\n".join(lines)


def prepare_query(
    select: Select,
    catalog: Catalog,
    exists_count_mode: str = "star",
    quantifier_mode: str = "exact",
) -> Select:
    """Qualify all column references and rewrite extended predicates.

    Shared by the pipeline and the planner so both reason about the
    same normalized tree.
    """
    from repro.sql.ast import TableRef, walk
    from repro.sql.qualify import qualify

    from repro.errors import CatalogError

    bindings: dict[str, str] = {}
    for node in walk(select):
        if isinstance(node, TableRef):
            if not catalog.has_table(node.name):
                raise CatalogError(f"no such table: {node.name}")
            previous = bindings.setdefault(node.binding, node.name)
            if previous != node.name:
                raise TransformError(
                    f"binding {node.binding!r} refers to different tables "
                    "in different blocks; rename the aliases"
                )
    base = catalog_resolver(catalog)

    def has_column(binding: str, column: str) -> bool:
        table = bindings.get(binding)
        if table is not None and catalog.has_table(table):
            return catalog.schema_of(table).has_column(column)
        return base(binding, column)

    def list_columns(binding: str) -> list[str] | None:
        table = bindings.get(binding, binding)
        if catalog.has_table(table):
            return list(catalog.schema_of(table).column_names)
        return None

    qualified = qualify(select, has_column, list_columns=list_columns)
    return rewrite_extended_predicates(qualified, exists_count_mode, quantifier_mode)


class Engine:
    """Runs queries against a catalog by either evaluation strategy."""

    def __init__(
        self,
        catalog: Catalog,
        join_method: str = "merge",
        ja_algorithm: str = "ja2",
        dedupe_inner: bool = False,
        dedupe_outer: bool = False,
        exists_count_mode: str = "star",
        quantifier_mode: str = "exact",
        verify: bool = True,
        plan_cache=None,
        engine: str = "row",
        parallelism: int = 1,
        parallel_threshold: int | None = None,
    ) -> None:
        if engine not in ("row", "vectorized"):
            raise ReproError(f"unknown execution engine {engine!r}")
        if parallelism < 1:
            raise ReproError(f"parallelism must be >= 1, got {parallelism}")
        self.catalog = catalog
        self.join_method = join_method
        #: Evaluation style for single-level execution: "row" runs the
        #: tuple-at-a-time operators, "vectorized" the batch operators
        #: (same plans, same page I/O; see SingleLevelExecutor).
        self.engine = engine
        #: Intra-query fan-out: partition-parallel scans, probes, and
        #: aggregations over the shared exchange pool.  1 = serial.
        #: Orthogonal to ``engine`` (same plans, same page I/O totals).
        self.parallelism = parallelism
        #: Inputs below this row count stay serial even when
        #: ``parallelism > 1`` (None = the engine default).
        self.parallel_threshold = parallel_threshold
        self.ja_algorithm = ja_algorithm
        self.dedupe_inner = dedupe_inner
        self.dedupe_outer = dedupe_outer
        self.exists_count_mode = exists_count_mode
        self.quantifier_mode = quantifier_mode
        #: Optional repro.serve.PlanCache consulted by run_cached().
        self.plan_cache = plan_cache
        #: Run the static plan verifier + Kim-bug lint after NEST-G.
        #: With the paper-correct ``ja_algorithm="ja2"`` any error
        #: finding aborts the run; with the deliberately buggy
        #: algorithms ("kim", "kim-outer") findings are collected as
        #: warnings in ``last_findings`` so the bug gallery still runs.
        self.verify = verify
        self.last_findings = None

    # -- public API ----------------------------------------------------------

    def run(self, query: str | Select, method: str = "transform") -> RunReport:
        """Execute a query and report rows plus page I/O."""
        select = parse(query) if isinstance(query, str) else query
        if method == "nested_iteration":
            return self._run_nested_iteration(select)
        if method == "transform":
            return self._run_transform(select)
        if method == "auto":
            try:
                return self._run_transform(select)
            except TransformError:
                return self._run_nested_iteration(select)
        if method == "cost":
            return self._run_cost_based(select)
        raise ReproError(f"unknown method {method!r}")

    def prepare(self, sql: str, method: str = "auto"):
        """Plan a parameterized statement once; bind + execute many times.

        Returns a :class:`repro.serve.PreparedStatement` whose ``?`` /
        ``:name`` markers bind directly into the compiled plan.
        """
        from repro.serve.prepared import PreparedStatement

        return PreparedStatement(self, sql, method=method)

    def run_cached(
        self, sql: str, params: tuple = (), method: str = "auto"
    ) -> RunReport:
        """Execute through the plan cache (requires ``plan_cache``).

        The SQL is normalized (predicate literals parameterized, text
        canonicalized) and looked up by fingerprint + engine config;
        on a hit the stored plan replays without re-planning or
        re-verification.  Queries whose plan shape depends on the
        literal values get per-vector ("custom") cache entries, and
        non-cacheable shapes fall back to the full pipeline in a
        private session.
        """
        from repro.engine.params import bound_params
        from repro.errors import BindError, ParameterizedPlanError
        from repro.serve.cache import PlanCache
        from repro.serve.normalize import (
            fingerprint,
            parameterize,
            substitute_params,
            user_param_count,
        )
        from repro.serve.plan import NonCacheablePlan, build_plan, engine_config
        from repro.serve.session import SessionCatalog

        cache: PlanCache | None = self.plan_cache
        if cache is None:
            raise ReproError("engine has no plan cache; pass plan_cache=")
        select = parse(sql)
        declared = user_param_count(select)
        vector = tuple(params)
        if len(vector) != declared:
            raise BindError(
                f"statement takes {declared} parameter(s), got {len(vector)}"
            )
        normalized, extracted = parameterize(select)
        values = vector + extracted
        key = (fingerprint(normalized), engine_config(self, method))
        schema_version = self.catalog.schema_version
        data_version = self.catalog.data_version

        plan = cache.lookup(key, schema_version, data_version)
        if plan is None:
            try:
                plan = build_plan(self, normalized, method, key[0])
                cache.store(key, plan)
            except ParameterizedPlanError:
                # Custom plan: the literal values shape the plan, so
                # they join the cache key and are baked into the tree.
                custom_key = key + (values,)
                plan = cache.lookup(custom_key, schema_version, data_version)
                if plan is None:
                    literal = substitute_params(normalized, values)
                    plan = build_plan(self, literal, method, key[0])
                    cache.store(custom_key, plan)
                return plan.replay(self.catalog, ())
            except NonCacheablePlan:
                session_engine = Engine(
                    SessionCatalog(self.catalog),
                    join_method=self.join_method,
                    ja_algorithm=self.ja_algorithm,
                    dedupe_inner=self.dedupe_inner,
                    dedupe_outer=self.dedupe_outer,
                    exists_count_mode=self.exists_count_mode,
                    quantifier_mode=self.quantifier_mode,
                    verify=self.verify,
                    engine=self.engine,
                    parallelism=self.parallelism,
                    parallel_threshold=self.parallel_threshold,
                )
                with self.catalog.read_lock(), bound_params(vector):
                    return session_engine.run(select, method=method)
        return plan.replay(self.catalog, values)

    def transform(self, query: str | Select) -> GeneralTransform:
        """Transform without executing the final query.

        Temp tables needed to evaluate type-A blocks are built eagerly
        (and left registered); callers that only inspect the plan can
        drop them with ``catalog.drop_temp_tables()``.
        """
        select = parse(query) if isinstance(query, str) else query
        rewritten = self._prepare(select)
        return nest_g(
            rewritten,
            self.catalog,
            ja_algorithm=self.ja_algorithm,
            dedupe_inner=self.dedupe_inner,
            join_method=self.join_method,
            engine=self.engine,
            parallelism=self.parallelism,
            parallel_threshold=self.parallel_threshold,
        )

    def explain(self, query: str | Select) -> str:
        """Human-readable transformation plan for a query."""
        from repro.sql.printer import to_sql_pretty

        select = parse(query) if isinstance(query, str) else query
        transform = self.transform(select)
        lines = ["-- original query", to_sql_pretty(self._prepare(select)), ""]
        lines.append("-- transformation trace")
        lines.extend(f"--   {line}" for line in transform.trace)
        lines.append("-- temp tables")
        for definition in transform.setup:
            lines.append(definition.describe())
        lines.append("-- canonical query")
        lines.append(to_sql(transform.query))
        self.catalog.drop_temp_tables()
        return "\n".join(lines)

    # -- strategies ------------------------------------------------------------

    def _maybe_dedupe_outer(
        self, transform: GeneralTransform
    ) -> tuple[Select, int]:
        """Apply the rowid multiplicity fix-up to the canonical query.

        When a NEST-N-J merge at the root may have fanned out outer
        rows and ``dedupe_outer`` is on, rewrite the canonical query to
        ``SELECT DISTINCT rid(T1), ..., rid(Tk), <items> ...`` using
        the implicit rowid of each original outer table; the caller
        strips the leading rowid columns.  DISTINCT over unique rowids
        collapses the fan-out to exactly one row per surviving outer
        tuple — restoring nested-iteration multiplicities even when
        outer rows are value-identical.  See DESIGN.md.

        Returns the (possibly rewritten) query and the number of
        leading columns to strip.
        """
        from dataclasses import replace as dc_replace

        from repro.engine.relation import ROWID_COLUMN
        from repro.sql.ast import ColumnRef, SelectItem

        query = transform.query
        if not (self.dedupe_outer and transform.root_fanout_merge):
            return query, 0
        if query.group_by or query.has_aggregate_select() or query.distinct:
            # Aggregated root: dedup must happen *before* aggregation
            # (the fan-out would corrupt COUNT/SUM/AVG).  Materialize
            # the deduplicated outer rows into a temp, then aggregate
            # over it.
            return self._dedupe_outer_aggregated(transform), 0
        rid_items = tuple(
            SelectItem(ColumnRef(ref.binding, ROWID_COLUMN), alias=f"RID{i}")
            for i, ref in enumerate(transform.root_tables)
        )
        rewritten = dc_replace(
            query, items=rid_items + query.items, distinct=True
        )
        return rewritten, len(rid_items)

    def _dedupe_outer_aggregated(self, transform: GeneralTransform) -> Select:
        """Pre-aggregation dedup: stage distinct outer rows in a temp.

        ``SELECT agg(...) FROM O, ... WHERE W [GROUP BY g]`` becomes::

            TEMP_D = SELECT DISTINCT rid(O), O.c1, ..., O.ck
                     FROM O, ... WHERE W
            SELECT agg(...') FROM TEMP_D [GROUP BY g']

        where the primes rewrite O's column references to TEMP_D's.
        Supported for a single original outer table (the common shape);
        multiple outer tables would need disambiguated staging columns.
        """
        from dataclasses import replace as dc_replace

        from repro.engine.relation import ROWID_COLUMN
        from repro.sql.ast import ColumnRef, SelectItem, TableRef, walk

        query = transform.query
        if len(transform.root_tables) != 1:
            raise TransformError(
                "dedupe_outer with aggregation supports a single outer table"
            )
        outer_binding = transform.root_tables[0].binding
        outer_table = transform.root_tables[0].name
        outer_columns = self.catalog.schema_of(outer_table).column_names

        temp_name = self.catalog.create_temp_name("DTEMP")
        staging_items = (
            SelectItem(ColumnRef(outer_binding, ROWID_COLUMN), alias="RID"),
        ) + tuple(
            SelectItem(ColumnRef(outer_binding, column), alias=column)
            for column in outer_columns
        )
        staging = Select(
            items=staging_items,
            from_tables=query.from_tables,
            where=query.where,
            distinct=True,
        )

        executor = SingleLevelExecutor(
            self.catalog,
            self.join_method,
            engine=self.engine,
            parallelism=self.parallelism,
            parallel_threshold=self.parallel_threshold,
        )
        relation = executor.execute(staging)
        self.catalog.register_temp(
            temp_name, relation.heap, executor.output_names(staging)
        )

        def rewrite(expr):
            from repro.sql import ast as A

            if isinstance(expr, ColumnRef):
                if expr.table == outer_binding:
                    return ColumnRef(temp_name, expr.column)
                return expr
            rebuilt = expr
            if isinstance(expr, A.FuncCall) and not isinstance(expr.arg, A.Star):
                rebuilt = A.FuncCall(expr.name, rewrite(expr.arg), expr.distinct)
            elif isinstance(expr, A.Comparison):
                rebuilt = A.Comparison(
                    rewrite(expr.left), expr.op, rewrite(expr.right), expr.outer
                )
            elif isinstance(expr, A.And):
                rebuilt = A.And(tuple(rewrite(op) for op in expr.operands))
            elif isinstance(expr, A.Or):
                rebuilt = A.Or(tuple(rewrite(op) for op in expr.operands))
            elif isinstance(expr, A.Not):
                rebuilt = A.Not(rewrite(expr.operand))
            return rebuilt

        return Select(
            items=tuple(
                SelectItem(rewrite(item.expr), item.alias) for item in query.items
            ),
            from_tables=(TableRef(temp_name),),
            group_by=tuple(rewrite(expr) for expr in query.group_by),
            having=rewrite(query.having) if query.having is not None else None,
            distinct=query.distinct,
        )

    def _prepare(self, select: Select) -> Select:
        """Qualify all column references, then rewrite extended predicates."""
        return prepare_query(
            select, self.catalog, self.exists_count_mode, self.quantifier_mode
        )

    def _run_nested_iteration(self, select: Select) -> RunReport:
        before = self.catalog.buffer.stats()
        # Pin an MVCC snapshot (or reuse the enclosing transaction's)
        # so every scan in the run sees one committed state.
        with self.catalog.snapshots.pinned():
            result = NestedIterationExecutor(
                self.catalog,
                parallelism=self.parallelism,
                parallel_threshold=self.parallel_threshold,
            ).execute(select)
        io = self.catalog.buffer.stats() - before
        return RunReport(result=result, io=io, method="nested_iteration")

    def _run_cost_based(self, select: Select) -> RunReport:
        """Let the section-7 cost model pick the strategy (SEL 79 style)."""
        from repro.optimizer.planner import Planner

        with self.catalog.snapshots.pinned():
            return self._run_cost_based_pinned(select, Planner)

    def _run_cost_based_pinned(self, select: Select, Planner) -> RunReport:
        choice = Planner(self.catalog).choose(select)
        if choice.method == "nested_iteration":
            report = self._run_nested_iteration(select)
        else:
            saved = self.join_method
            self.join_method = choice.join_method or saved
            try:
                report = self._run_transform(select)
            except TransformError:
                report = self._run_nested_iteration(select)
            finally:
                self.join_method = saved
        report.trace = [*choice.describe().splitlines(), *report.trace]
        return report

    def _verify_transform(self, rewritten: Select, transform) -> list[str]:
        """Mandatory post-transform static checks (see ``verify``).

        Returns trace lines describing the verification outcome.  The
        scope check on the *qualified* input AST runs first (PV003
        enforces that qualification really qualified everything), then
        the plan verifier walks the temp chain and canonical query, and
        the Kim-bug lint looks for the paper's section 5 shapes.
        """
        from repro.analysis import lint_transform, verify_nested, verify_transform

        findings = verify_nested(rewritten, self.catalog, require_qualified=True)
        plan_findings, temps = verify_transform(
            transform, self.catalog, join_method=self.join_method
        )
        findings.extend(plan_findings)
        findings.extend(lint_transform(transform, self.catalog, temps))
        self.last_findings = findings

        if self.ja_algorithm == "ja2":
            findings.raise_errors("static verification of transformed plan")
            return [
                f"verifier: {len(findings)} finding(s), no errors"
                if findings
                else "verifier: plan ok"
            ]
        # Deliberately buggy algorithm: keep the findings as warnings so
        # the section 5 bug gallery can still execute the plan.
        return [
            f"verifier (not enforced for ja={self.ja_algorithm}): "
            f"[{d.rule}] {d.message}"
            for d in findings
        ] or ["verifier: plan ok"]

    def _run_transform(self, select: Select) -> RunReport:
        before = self.catalog.buffer.stats()
        # Pin an MVCC snapshot (or reuse the enclosing transaction's):
        # the temp builds and the final query then all read the same
        # committed state, even while writers commit concurrently.
        with self.catalog.snapshots.pinned():
            return self._run_transform_pinned(select, before)

    def _run_transform_pinned(self, select: Select, before) -> RunReport:
        try:
            rewritten = self._prepare(select)
            transform = nest_g(
                rewritten,
                self.catalog,
                ja_algorithm=self.ja_algorithm,
                dedupe_inner=self.dedupe_inner,
                parallelism=self.parallelism,
                parallel_threshold=self.parallel_threshold,
                join_method=self.join_method,
                engine=self.engine,
            )
            verify_trace = (
                self._verify_transform(rewritten, transform)
                if self.verify
                else []
            )

            steps: list[str] = []
            temp_pages: dict[str, int] = {}
            for definition in transform.setup[: transform.built]:
                temp_pages[definition.name] = self.catalog.heap_of(
                    definition.name
                ).num_pages
            for definition in transform.setup[transform.built :]:
                executor = SingleLevelExecutor(
                    self.catalog,
                    self.join_method,
                    engine=self.engine,
                    parallelism=self.parallelism,
                    parallel_threshold=self.parallel_threshold,
                )
                relation = executor.execute(definition.query)
                self.catalog.register_temp(
                    definition.name,
                    relation.heap,
                    executor.output_names(definition.query),
                )
                steps.append(f"built {definition.name}: " + "; ".join(executor.steps))
                temp_pages[definition.name] = relation.num_pages

            final_query, strip = self._maybe_dedupe_outer(transform)
            final = SingleLevelExecutor(
                self.catalog,
                self.join_method,
                engine=self.engine,
                parallelism=self.parallelism,
                parallel_threshold=self.parallel_threshold,
            )
            relation = final.execute(final_query)
            steps.append("final: " + "; ".join(final.steps))
            rows = relation.to_list()
            if strip:
                rows = [row[strip:] for row in rows]
            result = QueryResult(
                columns=final.output_names(transform.query),
                rows=rows,
            )
            io = self.catalog.buffer.stats() - before
            return RunReport(
                result=result,
                io=io,
                method="transform",
                join_method=self.join_method,
                canonical_sql=to_sql(transform.query),
                setup_sql=[d.describe() for d in transform.setup],
                trace=transform.trace + verify_trace,
                steps=steps,
                temp_pages=temp_pages,
            )
        finally:
            self.catalog.drop_temp_tables()
