"""Physical execution of single-level (canonical) queries.

After transformation, every query the paper produces is single-level: a
temp-table definition (selection + projection + join + GROUP BY) or the
final canonical join.  This executor runs such queries over the storage
engine with a chosen join method:

* ``join_method="merge"`` — sort inputs as needed and merge join (the
  evaluation the paper's section 7 costs in detail);
* ``join_method="nested"`` — nested-loop joins (efficient only when the
  inner fits in the buffer, section 7.2);
* ``join_method="hash"`` — build/probe hash equi joins plus hash-based
  GROUP BY and DISTINCT, which need **no sorted inputs** (an extension
  beyond the paper's sort-merge repertoire; theta joins still fall back
  to the sort-merge path).

Design points lifted straight from the paper:

* **Single-relation predicates are applied before any join** — section
  5.2 shows the outer join produces wrong COUNTs otherwise ("the
  condition which applies to only one relation must be applied before
  the join is performed").
* **Sort order is tracked through operators** so that, as in section
  7.4, a merge join's output needs no re-sort for a GROUP BY on the
  join column, and a temp table created in GROUP BY order needs no sort
  before the final merge join.

Orthogonally to the join method, ``engine`` selects the evaluation
style: ``"row"`` runs the operators of :mod:`repro.engine.operators`
tuple at a time; ``"vectorized"`` swaps in the batch operators of
:mod:`repro.engine.vectorized` for restrict/project, hash join, hash
DISTINCT, and grouped aggregation.  The *plan* is identical either way
— same sorts, same temps, same operator order — so page-I/O accounting
does not change; only the per-tuple evaluation strategy does.  (Merge
and nested-loop joins and external sorts stay row-wise: they are
sort-dominated, and sharing them keeps the two engines' I/O trivially
identical.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.catalog import Catalog
from repro.engine.aggregate import AggSpec
from repro.engine.operators import (
    group_aggregate,
    hash_distinct,
    hash_group_aggregate,
    hash_join,
    merge_join,
    nested_loop_join,
    restrict_project,
    scan_table,
)
from repro.engine.relation import Relation
from repro.engine.schema import RowSchema
from repro.engine.sort import external_sort
from repro.errors import PlanError
from repro.sql.ast import (
    MIRRORED_OPS,
    ColumnRef,
    Comparison,
    Expr,
    FuncCall,
    Select,
    Star,
    column_refs,
    conjuncts,
    make_and,
    walk,
)
from repro.sql.printer import to_sql


@dataclass
class _State:
    """A partially built plan: the data plus what order it is in."""

    relation: Relation
    sorted_on: tuple[int, ...] = ()


class SingleLevelExecutor:
    """Executes canonical queries over the storage engine."""

    def __init__(
        self,
        catalog: Catalog,
        join_method: str = "merge",
        verify: bool = True,
        engine: str = "row",
        parallelism: int = 1,
        parallel_threshold: int | None = None,
    ) -> None:
        if join_method not in ("merge", "nested", "hash"):
            raise PlanError(f"unknown join method {join_method!r}")
        if engine not in ("row", "vectorized"):
            raise PlanError(f"unknown execution engine {engine!r}")
        if parallelism < 1:
            raise PlanError(f"parallelism must be >= 1, got {parallelism}")
        self.catalog = catalog
        self.buffer = catalog.buffer
        self.join_method = join_method
        self.engine = engine
        self.parallelism = parallelism
        if parallel_threshold is None:
            from repro.engine.parallel import DEFAULT_PARALLEL_THRESHOLD

            parallel_threshold = DEFAULT_PARALLEL_THRESHOLD
        self.parallel_threshold = parallel_threshold
        self.verify = verify
        self.steps: list[str] = []
        if engine == "vectorized":
            from repro.engine.vectorized import (
                vectorized_distinct,
                vectorized_group_aggregate,
                vectorized_hash_join,
                vectorized_restrict_project,
                vectorized_sorted_group_aggregate,
            )

            self._restrict_project = vectorized_restrict_project
            self._hash_join = vectorized_hash_join
            self._hash_distinct = vectorized_distinct
            # The sorted path streams groups batch-by-batch (same page
            # interleaving as the row operator); the hash path
            # accumulates and emits at the end, like its row
            # counterpart — so buffer behaviour matches, not just
            # totals.
            self._sorted_aggregate = vectorized_sorted_group_aggregate
            self._hash_aggregate = vectorized_group_aggregate
        else:
            self._restrict_project = restrict_project
            self._hash_join = hash_join
            self._hash_distinct = hash_distinct
            self._sorted_aggregate = group_aggregate
            self._hash_aggregate = hash_group_aggregate
        if parallelism > 1:
            self._bind_parallel_operators()

    def _bind_parallel_operators(self) -> None:
        """Wrap the bound single-pass operators with partition-parallel
        counterparts, gated per input on the row-count threshold.

        Inputs below ``parallel_threshold`` run the serial operator —
        fan-out overhead would swamp any I/O overlap there — so one
        plan freely mixes parallel big-input steps with serial small
        ones.  Only the single-pass operators fan out; merge/nested
        joins and external sorts re-read pages, where thread
        interleaving under eviction pressure could perturb the re-read
        counts, so they stay serial and the page-I/O identity invariant
        holds unconditionally (see :mod:`repro.engine.parallel`).
        """
        from repro.engine.parallel import (
            parallel_distinct,
            parallel_group_aggregate,
            parallel_hash_join,
            parallel_restrict_project,
        )

        width = self.parallelism
        threshold = self.parallel_threshold
        engine = self.engine
        serial_rp = self._restrict_project
        serial_hj = self._hash_join
        serial_distinct = self._hash_distinct

        def rp(source, buffer, predicate=None, projections=None,
               name=None, rows_per_page=None):
            if source.num_rows >= threshold:
                return parallel_restrict_project(
                    source, buffer, predicate=predicate,
                    projections=projections, name=name,
                    rows_per_page=rows_per_page,
                    parallelism=width, engine=engine,
                )
            return serial_rp(
                source, buffer, predicate=predicate,
                projections=projections, name=name,
                rows_per_page=rows_per_page,
            )

        def hj(left, right, buffer, left_key, right_key, mode="inner",
               name=None, null_safe=False, residual=None):
            if left.num_rows >= threshold:
                return parallel_hash_join(
                    left, right, buffer, left_key, right_key, mode=mode,
                    name=name, null_safe=null_safe, residual=residual,
                    parallelism=width,
                )
            return serial_hj(
                left, right, buffer, left_key, right_key, mode=mode,
                name=name, null_safe=null_safe, residual=residual,
            )

        def aggregate_wrapper(serial):
            def aggregate(source, buffer, group_columns, specs, out_names,
                          name=None, always_emit=False):
                if source.num_rows >= threshold:
                    return parallel_group_aggregate(
                        source, buffer, group_columns, specs, out_names,
                        name=name, always_emit=always_emit,
                        parallelism=width,
                    )
                return serial(
                    source, buffer, group_columns, specs, out_names,
                    name=name, always_emit=always_emit,
                )

            return aggregate

        def distinct(source, buffer, name=None):
            if source.num_rows >= threshold:
                return parallel_distinct(
                    source, buffer, name=name, parallelism=width
                )
            return serial_distinct(source, buffer, name=name)

        self._restrict_project = rp
        self._hash_join = hj
        self._sorted_aggregate = aggregate_wrapper(self._sorted_aggregate)
        self._hash_aggregate = aggregate_wrapper(self._hash_aggregate)
        self._hash_distinct = distinct

    # -- public API --------------------------------------------------------

    def execute(self, select: Select) -> Relation:
        """Run a single-level query, returning a materialized relation."""
        self.steps = []
        self._reject_subqueries(select)
        if self.verify:
            self._verify(select)
        self._binding_columns = {
            ref.binding: set(self.catalog.schema_of(ref.name).column_names)
            for ref in select.from_tables
        }
        state = self._join_from_tables(select)
        state = self._apply_residual(select, state)

        if select.group_by or select.has_aggregate_select():
            result = self._grouped_output(select, state)
        else:
            result = self._plain_output(select, state)

        if select.distinct:
            if self.join_method == "hash":
                result = self._hash_distinct(result, self.buffer, name="distinct")
                self._log("hash dedup for DISTINCT (no sort)")
            else:
                result = external_sort(result, list(range(len(result.schema))),
                                       self.buffer, unique=True, name="distinct")
                self._log("sort-unique for DISTINCT")
        if select.order_by:
            result = self._order_output(select, result)
        return result

    def _verify(self, select: Select) -> None:
        """Static invariants before the first page is read.

        The verifier mirrors this executor's own rules (resolution,
        grouped output, ORDER BY, outer-join shape), so anything it
        raises would have failed mid-plan anyway — but it fails *here*,
        with every violation listed, before any I/O.  Unknown tables
        are left to the catalog lookup below (``CatalogError``), and
        the check steps aside entirely then so cascading column
        findings don't shadow it.  PV005 (hash keys) is advisory — only
        error findings raise.
        """
        from repro.analysis.verifier import verify_single_level

        findings = verify_single_level(
            select, self.catalog, join_method=self.join_method
        )
        if findings.by_rule("PV004"):
            return
        findings.raise_errors("static verification of canonical query")

    def output_names(self, select: Select) -> list[str]:
        """Output column names for registering the result as a table."""
        names: list[str] = []
        for item in select.items:
            if item.alias:
                names.append(item.alias)
            elif isinstance(item.expr, ColumnRef):
                names.append(item.expr.column)
            else:
                names.append(f"C{len(names) + 1}")
        return names

    # -- FROM clause ---------------------------------------------------------

    def _join_from_tables(self, select: Select) -> _State:
        all_conjuncts = conjuncts(select.where)
        self._consumed: set[int] = set()

        tables = select.from_tables
        if not tables:
            raise PlanError("query has no FROM clause")

        rowid_bindings = self._rowid_bindings(select)
        states: list[_State] = []
        for ref in tables:
            relation = scan_table(self.catalog.get(ref.name), binding=ref.binding)
            if ref.binding in rowid_bindings:
                from repro.engine.relation import RowidRelation

                relation = RowidRelation(relation, ref.binding)
            local = self._table_local_predicate(
                all_conjuncts, relation.schema, ref.binding
            )
            if local is not None:
                relation = self._restrict_project(
                    relation, self.buffer, predicate=local,
                    name=f"restrict({ref.binding})",
                )
                self._log(f"restrict {ref.binding}: {to_sql(local)}")
            states.append(_State(relation))

        state = states[0]
        for next_state in states[1:]:
            state = self._join_pair(all_conjuncts, state, next_state)
        return state

    def _table_local_predicate(
        self, all_conjuncts: list[Expr], schema: RowSchema, binding: str
    ) -> Expr | None:
        local: list[Expr] = []
        for index, conjunct in enumerate(all_conjuncts):
            if index in self._consumed:
                continue
            used = self._bindings_used(conjunct)
            if used and used <= {binding}:
                local.append(conjunct)
                self._consumed.add(index)
        return make_and(local)

    def _rowid_bindings(self, select: Select) -> set[str]:
        """Bindings whose implicit rowid column the query references."""
        from repro.engine.relation import ROWID_COLUMN

        return {
            node.table
            for node in walk(select)
            if isinstance(node, ColumnRef)
            and node.column == ROWID_COLUMN
            and node.table is not None
        }

    def _bindings_used(self, conjunct: Expr) -> set[str]:
        used: set[str] = set()
        for ref in column_refs(conjunct):
            if ref.table is not None:
                used.add(ref.table)
            else:
                used.add(self._owner_of(ref.column))
        return used

    def _owner_of(self, column: str) -> str:
        owners = [
            binding
            for binding, columns in self._binding_columns.items()
            if column in columns
        ]
        if len(owners) != 1:
            raise PlanError(
                f"cannot attribute unqualified column {column!r} "
                f"(candidates: {owners})"
            )
        return owners[0]

    # -- pairwise joins --------------------------------------------------------

    def _join_pair(
        self, all_conjuncts: list[Expr], left: _State, right: _State
    ) -> _State:
        left_quals = left.relation.schema.qualifiers
        right_quals = right.relation.schema.qualifiers

        # (l, r, outer, null_safe)
        equi: list[tuple[ColumnRef, ColumnRef, str | None, bool]] = []
        theta: list[tuple[ColumnRef, str, ColumnRef, str | None]] = []
        other: list[Expr] = []

        for index, conjunct in enumerate(all_conjuncts):
            if index in self._consumed:
                continue
            used = self._bindings_used(conjunct)
            if not used or not used <= left_quals | right_quals:
                continue
            if not (used & left_quals and used & right_quals):
                continue
            self._consumed.add(index)
            normalized = self._normalize_join_pred(conjunct, left_quals)
            if normalized is None:
                other.append(conjunct)
            else:
                left_col, op, right_col, outer, null_safe = normalized
                if op == "=":
                    equi.append((left_col, right_col, outer, null_safe))
                else:
                    theta.append((left_col, op, right_col, outer))

        if self.join_method == "nested":
            predicate = make_and(
                [self._join_pred_expr(e) for e in equi]
                + [self._theta_pred_expr(t) for t in theta]
                + other
            )
            mode = "left" if self._any_outer(equi, theta) else "inner"
            joined = nested_loop_join(
                left.relation, right.relation, self.buffer,
                predicate=predicate, mode=mode, name="nl-join",
            )
            self._log(
                f"nested-loop join ({to_sql(predicate) if predicate else 'cross'})"
            )
            return _State(joined, left.sorted_on)

        if equi:
            if self.join_method == "hash":
                return self._hash_equi(left, right, equi, theta, other)
            return self._merge_equi(left, right, equi, theta, other)
        if theta:
            # No equi keys to hash on: the hash method falls back to the
            # sorted theta merge join.
            return self._merge_theta(left, right, theta, other)

        # No join predicate: cross product by nested loops.
        joined = nested_loop_join(
            left.relation, right.relation, self.buffer,
            predicate=make_and(other), name="cross",
        )
        self._log("cross product (no join predicate)")
        return _State(joined, left.sorted_on)

    def _merge_equi(self, left, right, equi, theta, other) -> _State:
        # Null-safe equalities can only serve as merge keys when *all*
        # equi predicates are null-safe (keys share one NULL-handling
        # regime); a mixed set keeps the regular keys and demotes the
        # null-safe ones to the residual join condition.
        null_safe = all(e[3] for e in equi)
        key_equi = equi if null_safe else [e for e in equi if not e[3]]
        residual_equi = [] if null_safe else [e for e in equi if e[3]]
        if not key_equi:  # all null-safe was handled; can't happen otherwise
            key_equi, residual_equi = equi, []
        left_keys = [left.relation.schema.index_of(l) for l, _, _, _ in key_equi]
        right_keys = [right.relation.schema.index_of(r) for _, r, _, _ in key_equi]
        mode = "left" if self._any_outer(equi, theta) else "inner"

        residual_preds = (
            [self._join_pred_expr(e) for e in residual_equi]
            + [self._theta_pred_expr(t) for t in theta]
            + other
        )
        left_rel = self._ensure_sorted(left, tuple(left_keys))
        right_rel = self._ensure_sorted(right, tuple(right_keys))
        joined = merge_join(
            left_rel, right_rel, self.buffer,
            left_keys, right_keys, op="=", mode=mode, name="merge-join",
            null_safe=null_safe,
            residual=self._residual_callable(
                make_and(residual_preds) if mode == "left" else None,
                left_rel.schema + right_rel.schema,
            ),
        )
        self._log(
            "merge join on "
            + ", ".join(
                f"{l.qualified()} {'<=>' if ns else '='} {r.qualified()}"
                for l, r, _, ns in key_equi
            )
            + (" (left outer)" if mode == "left" else "")
        )
        state = _State(joined, tuple(left_keys))
        if mode == "left":
            return state  # residual already applied inside the join
        return self._filter_state(state, make_and(residual_preds))

    def _hash_equi(self, left, right, equi, theta, other) -> _State:
        # Same key-regime rule as the merge path: keys share one
        # NULL-handling regime, so a mixed set keeps the regular keys
        # and demotes the null-safe equalities to the residual.
        null_safe = all(e[3] for e in equi)
        key_equi = equi if null_safe else [e for e in equi if not e[3]]
        residual_equi = [] if null_safe else [e for e in equi if e[3]]
        left_keys = [left.relation.schema.index_of(l) for l, _, _, _ in key_equi]
        right_keys = [right.relation.schema.index_of(r) for _, r, _, _ in key_equi]
        mode = "left" if self._any_outer(equi, theta) else "inner"

        residual_preds = (
            [self._join_pred_expr(e) for e in residual_equi]
            + [self._theta_pred_expr(t) for t in theta]
            + other
        )
        # Hash joins need no sorted inputs; the residual is always
        # applied in-join (required for the outer mode, free otherwise).
        joined = self._hash_join(
            left.relation, right.relation, self.buffer,
            left_keys, right_keys, mode=mode, name="hash-join",
            null_safe=null_safe,
            residual=self._residual_callable(
                make_and(residual_preds),
                left.relation.schema + right.relation.schema,
            ),
        )
        self._log(
            "hash join on "
            + ", ".join(
                f"{l.qualified()} {'<=>' if ns else '='} {r.qualified()}"
                for l, r, _, ns in key_equi
            )
            + (" (left outer)" if mode == "left" else "")
            + " (build right, no sort)"
        )
        # Probe-side order is preserved: each left row's matches stream
        # out in left order, so any prefix ordering of the left input
        # survives the join.
        return _State(joined, left.sorted_on)

    def _merge_theta(self, left, right, theta, other) -> _State:
        left_col, op, right_col, outer = theta[0]
        left_key = left.relation.schema.index_of(left_col)
        right_key = right.relation.schema.index_of(right_col)
        mode = "left" if self._any_outer([], theta) else "inner"

        residual_preds = [self._theta_pred_expr(t) for t in theta[1:]] + other
        left_rel = self._ensure_sorted(left, (left_key,))
        right_rel = self._ensure_sorted(right, (right_key,))
        # merge_join's theta semantics are "right.key op left.key":
        # our normalized predicate is "left.col mirror-op right.col",
        # i.e. right.col op left.col, which is exactly that direction.
        joined = merge_join(
            left_rel, right_rel, self.buffer,
            [left_key], [right_key], op=op, mode=mode, name="theta-join",
            residual=self._residual_callable(
                make_and(residual_preds) if mode == "left" else None,
                left_rel.schema + right_rel.schema,
            ),
        )
        self._log(
            f"theta merge join on {right_col.qualified()} {op} "
            f"{left_col.qualified()}" + (" (left outer)" if mode == "left" else "")
        )
        state = _State(joined, (left_key,))
        if mode == "left":
            return state
        return self._filter_state(state, make_and(residual_preds))

    def _residual_callable(self, predicate: Expr | None, schema: RowSchema):
        """Wrap a predicate as a combined-row callable for the joins.

        The returned callable carries ``expr``/``schema`` attributes so
        the vectorized hash join can recover the predicate and evaluate
        it as a batch kernel over candidate matches instead of one
        combined row at a time.
        """
        if predicate is None:
            return None
        self._log(f"join residual: {to_sql(predicate)}")

        from repro.engine.compile import try_compile_predicate

        compiled = try_compile_predicate(predicate, schema)
        if compiled is not None:
            check = lambda combined: compiled(combined, None)  # noqa: E731
        else:
            from repro.engine.expression import EvalContext, eval_predicate

            def check(combined: tuple):
                return eval_predicate(predicate, EvalContext(combined, schema))

        check.expr = predicate
        check.schema = schema
        return check

    def _normalize_join_pred(
        self, conjunct: Expr, left_quals: set[str]
    ) -> tuple[ColumnRef, str, ColumnRef, str | None, bool] | None:
        """Normalize a column-op-column join predicate.

        Returns ``(left_col, op, right_col, outer, null_safe)`` where
        ``op`` is oriented as ``right_col op left_col`` for theta
        operators (the direction :func:`merge_join` expects) and
        ``outer`` preserves the marked side ("left" always means:
        preserve the accumulated left input).  Non-simple predicates
        return None (handled as residual filters).
        """
        if not isinstance(conjunct, Comparison):
            return None
        if not isinstance(conjunct.left, ColumnRef) or not isinstance(
            conjunct.right, ColumnRef
        ):
            return None
        a, b = conjunct.left, conjunct.right
        a_side = self._side_of(a, left_quals)
        b_side = self._side_of(b, left_quals)
        if a_side == b_side:
            return None

        outer = conjunct.outer
        if a_side == "left":
            # a op b with a on the left input: theta direction wants
            # "right op' left", so mirror the operator.
            op = MIRRORED_OPS[conjunct.op]
            preserved = self._outer_mode(outer, marked_side=a_side)
            return a, op, b, preserved, conjunct.null_safe
        op = conjunct.op
        preserved = self._outer_mode(outer, marked_side=b_side)
        return b, op, a, preserved, conjunct.null_safe

    def _side_of(self, ref: ColumnRef, left_quals: set[str]) -> str:
        binding = ref.table if ref.table is not None else self._owner_of(ref.column)
        return "left" if binding in left_quals else "right"

    def _outer_mode(self, outer: str | None, marked_side: str) -> str | None:
        """Translate the AST's outer marker to a join mode.

        ``Comparison.outer == "left"`` preserves the relation of the
        comparison's left *operand*.  The executor only supports
        preserving the accumulated (left input) side, which is how the
        transforms lay out their FROM clauses (TEMP1 first).
        """
        if outer is None:
            return None
        if outer == "full":
            raise PlanError("full outer join is not supported by this executor")
        # outer == "left" or "right": which operand's relation?
        if outer == "left" and marked_side == "left":
            return "left"
        if outer == "right" and marked_side == "right":
            return "left"
        raise PlanError(
            "outer join must preserve the left (accumulated) input; "
            "reorder the FROM clause"
        )

    def _any_outer(self, equi, theta) -> bool:
        return any(e[2] is not None for e in equi) or any(
            t[3] is not None for t in theta
        )

    def _join_pred_expr(self, e) -> Expr:
        left_col, right_col, _, null_safe = e
        return Comparison(left_col, "=", right_col, null_safe=null_safe)

    def _theta_pred_expr(self, t) -> Expr:
        left_col, op, right_col, _ = t
        # Normalized as right op left; rebuild as an ordinary predicate.
        return Comparison(right_col, op, left_col)

    # -- residual, grouping, output -------------------------------------------

    def _apply_residual(self, select: Select, state: _State) -> _State:
        residual: list[Expr] = []
        for index, conjunct in enumerate(conjuncts(select.where)):
            if index not in self._consumed:
                residual.append(conjunct)
                self._consumed.add(index)
        return self._filter_state(state, make_and(residual))

    def _filter_state(self, state: _State, predicate: Expr | None) -> _State:
        if predicate is None:
            return state
        filtered = self._restrict_project(
            state.relation, self.buffer, predicate=predicate, name="filter"
        )
        self._log(f"filter: {to_sql(predicate)}")
        return _State(filtered, state.sorted_on)

    def _grouped_output(self, select: Select, state: _State) -> Relation:
        schema = state.relation.schema
        group_positions = []
        for expr in select.group_by:
            if not isinstance(expr, ColumnRef):
                raise PlanError("GROUP BY supports column references only")
            group_positions.append(schema.index_of(expr))

        specs: list[AggSpec] = []
        out_fields: list[tuple[str | None, str]] = []
        names = self.output_names(select)
        item_kinds: list[tuple[str, int]] = []  # ("group", pos) | ("agg", idx)

        for item, name in zip(select.items, names):
            expr = item.expr
            if isinstance(expr, FuncCall) and expr.is_aggregate:
                if isinstance(expr.arg, Star):
                    column: int | None = None
                elif isinstance(expr.arg, ColumnRef):
                    column = schema.index_of(expr.arg)
                else:
                    raise PlanError("aggregate argument must be a column or *")
                item_kinds.append(("agg", len(specs)))
                specs.append(AggSpec(expr.name, column, expr.distinct))
            elif isinstance(expr, ColumnRef):
                position = schema.index_of(expr)
                if position not in group_positions:
                    raise PlanError(
                        f"non-aggregated column {expr.qualified()} "
                        "must appear in GROUP BY"
                    )
                item_kinds.append(("group", group_positions.index(position)))
            else:
                raise PlanError(
                    "grouped SELECT items must be columns or aggregates"
                )

        # HAVING: compute its aggregates as hidden output columns, then
        # filter the grouped rows and project the hidden columns away.
        having_specs: list[AggSpec] = []
        having_pred: Expr | None = None
        if select.having is not None:
            having_pred = self._rewrite_having(
                select.having, schema, group_positions, having_specs
            )

        relation = state.relation
        aggregate_op = self._sorted_aggregate
        if group_positions and not self._grouping_satisfied(
            state.sorted_on, group_positions
        ):
            if self.join_method == "hash":
                aggregate_op = self._hash_aggregate
                self._log("hash GROUP BY (no sort)")
            else:
                relation = external_sort(
                    relation, group_positions, self.buffer, name="group-sort"
                )
                self._log("sort for GROUP BY")
        elif group_positions:
            self._log("GROUP BY input already in group order (no sort)")

        group_fields = [
            (None, f"G{i}") for i in range(len(group_positions))
        ]
        agg_fields = [(None, f"A{i}") for i in range(len(specs))]
        having_fields = [(None, f"H{i}") for i in range(len(having_specs))]
        grouped = aggregate_op(
            relation, self.buffer, group_positions, specs + having_specs,
            group_fields + agg_fields + having_fields,
            name="group", always_emit=not group_positions,
        )
        if having_pred is not None:
            grouped = self._restrict_project(
                grouped, self.buffer, predicate=having_pred, name="having"
            )
            self._log(f"HAVING filter: {to_sql(having_pred)}")

        # Re-order the grouped output into the SELECT-item order.
        out_positions: list[int] = []
        for kind, index in item_kinds:
            if kind == "group":
                out_positions.append(index)
            else:
                out_positions.append(len(group_positions) + index)
        out_fields = [(None, name) for name in names]
        if out_positions == list(range(len(grouped.schema))):
            # Just relabel.
            return Relation(
                RowSchema(out_fields), heap=grouped.heap, name="result"
            )
        from repro.engine.operators import project_columns

        return project_columns(
            grouped, self.buffer, out_positions, out_fields, name="result"
        )

    def _rewrite_having(
        self,
        predicate: Expr,
        schema: RowSchema,
        group_positions: list[int],
        having_specs: list[AggSpec],
    ) -> Expr:
        """Rewrite a HAVING predicate against the grouped output schema.

        Aggregate calls become references to hidden columns ``H0..``
        (appending their specs to ``having_specs``); grouped column
        references become ``G0..`` references.
        """
        from repro.sql import ast as A

        def spec_for(call: FuncCall) -> ColumnRef:
            if isinstance(call.arg, Star):
                column: int | None = None
            elif isinstance(call.arg, ColumnRef):
                column = schema.index_of(call.arg)
            else:
                raise PlanError("HAVING aggregate argument must be a column or *")
            spec = AggSpec(call.name, column, call.distinct)
            if spec not in having_specs:
                having_specs.append(spec)
            return ColumnRef(None, f"H{having_specs.index(spec)}")

        def rewrite(expr: Expr) -> Expr:
            if isinstance(expr, FuncCall) and expr.is_aggregate:
                return spec_for(expr)
            if isinstance(expr, ColumnRef):
                position = schema.index_of(expr)
                if position not in group_positions:
                    raise PlanError(
                        f"HAVING references non-grouped column {expr.qualified()}"
                    )
                return ColumnRef(None, f"G{group_positions.index(position)}")
            if isinstance(expr, A.Comparison):
                return A.Comparison(
                    rewrite(expr.left), expr.op, rewrite(expr.right), expr.outer
                )
            if isinstance(expr, A.And):
                return A.And(tuple(rewrite(op) for op in expr.operands))
            if isinstance(expr, A.Or):
                return A.Or(tuple(rewrite(op) for op in expr.operands))
            if isinstance(expr, A.Not):
                return A.Not(rewrite(expr.operand))
            if isinstance(expr, (A.Literal,)):
                return expr
            if isinstance(expr, A.IsNull):
                return A.IsNull(rewrite(expr.operand), expr.negated)
            if isinstance(expr, A.Between):
                return A.Between(
                    rewrite(expr.operand), rewrite(expr.low),
                    rewrite(expr.high), expr.negated,
                )
            raise PlanError(f"unsupported HAVING expression: {to_sql(expr)}")

        return rewrite(predicate)

    def _grouping_satisfied(
        self, sorted_on: tuple[int, ...], group_positions: list[int]
    ) -> bool:
        prefix = sorted_on[: len(group_positions)]
        return set(prefix) == set(group_positions) and len(prefix) == len(
            group_positions
        )

    def _plain_output(self, select: Select, state: _State) -> Relation:
        names = self.output_names(select)
        projections = []
        for item, name in zip(select.items, names):
            if isinstance(item.expr, Star):
                raise PlanError("SELECT * is not supported in canonical queries")
            projections.append((item.expr, None, name))
        result = self._restrict_project(
            state.relation, self.buffer, projections=projections, name="result"
        )
        self._log(
            "project " + ", ".join(to_sql(item.expr) for item in select.items)
        )
        return result

    def _order_output(self, select: Select, result: Relation) -> Relation:
        positions = []
        descending_flags = set()
        for item in select.order_by:
            descending_flags.add(item.descending)
            if not isinstance(item.expr, ColumnRef):
                raise PlanError("ORDER BY supports column references only")
            positions.append(self._output_position(select, result, item.expr))
        if len(descending_flags) > 1:
            raise PlanError("mixed ASC/DESC ORDER BY is not supported")
        ordered = external_sort(result, positions, self.buffer, name="ordered")
        if descending_flags == {True}:
            reversed_rows = list(ordered)[::-1]
            ordered = Relation.materialize(
                ordered.schema, reversed_rows, self.buffer, name="ordered-desc"
            )
            self._log("reverse for ORDER BY DESC")
        return ordered

    def _output_position(
        self, select: Select, result: Relation, ref: ColumnRef
    ) -> int:
        """Resolve an ORDER BY reference against the result schema.

        The result columns are labelled with output names (alias or bare
        column name, qualifier None), so a qualified reference like
        ``T.A`` does not bind directly; fall back to matching the SELECT
        item it names, then to the bare output column name.
        """
        position = result.schema.try_index_of(ref)
        if position is not None:
            return position
        for index, item in enumerate(select.items):
            if isinstance(item.expr, ColumnRef) and item.expr == ref:
                return index
        position = result.schema.try_index_of(ColumnRef(None, ref.column))
        if position is not None:
            return position
        raise PlanError(
            f"ORDER BY column {ref.qualified()} is not in the SELECT list"
        )

    # -- misc ------------------------------------------------------------------

    def _ensure_sorted(self, state: _State, keys: tuple[int, ...]) -> Relation:
        if state.sorted_on[: len(keys)] == keys:
            self._log("input already sorted on join key (no sort)")
            return state.relation
        self._log(f"sort on columns {list(keys)}")
        return external_sort(state.relation, list(keys), self.buffer, name="sorted")

    def _reject_subqueries(self, select: Select) -> None:
        for node in walk(select):
            if isinstance(node, Select) and node is not select:
                raise PlanError(
                    "physical executor accepts single-level queries only; "
                    "run the transformation pipeline first"
                )

    def _log(self, message: str) -> None:
        self.steps.append(message)
