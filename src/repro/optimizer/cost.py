"""The paper's analytical page-I/O cost model (section 7).

Notation follows Kim [KIM 82:462] as the paper restates it:

* ``Ri`` — outer relation, ``Pi`` pages, ``Ni`` tuples;
* ``Rj`` — inner relation, ``Pj`` pages;
* ``Rt2`` — projection/restriction of Ri's join column, ``Pt2`` pages,
  ``Nt2`` tuples;
* ``Rt3`` — projection/restriction of Rj, ``Pt3`` pages;
* ``Rt4`` — the join of Rt2 with Rt3, ``Pt4`` pages;
* ``Rt`` — the grouped temporary (aggregate per join-column value),
  ``Pt`` pages;
* ``B`` — buffer pages; ``f(i)`` — selectivity of Ri's simple
  predicates (the model uses the product ``f(i)·Ni`` directly);
* a sort costs ``2·P·log_{B-1}(P)`` page I/Os.

The paper's worked example (section 7.4): with Pi=50, Pj=30, Pt2=7,
Pt3=10, Pt4=8, Pt=5, B=6 and f(i)·Ni=100, nested iteration costs
**3 050** page fetches while the transformation with two merge joins
costs **about 475** (the formulas below give 478.6 with continuous
logarithms — see DESIGN.md, "Cost-model logarithms").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import PlanError

#: Logarithm modes.  The paper's own section 7.4 arithmetic implies
#: continuous logs; Kim's 1982 figures are consistent with ceiling logs
#: (whole merge passes).  Both are provided.
LOG_CONTINUOUS = "continuous"
LOG_CEIL = "ceil"


def log_passes(pages: float, buffer_pages: int, mode: str = LOG_CONTINUOUS) -> float:
    """``log_{B-1}(P)`` — the number of merge passes over a P-page file."""
    if pages <= 1:
        return 0.0
    base = max(2, buffer_pages - 1)
    value = math.log(pages, base)
    if mode == LOG_CEIL:
        return float(math.ceil(value))
    if mode == LOG_CONTINUOUS:
        return value
    raise PlanError(f"unknown log mode {mode!r}")


def sort_cost(pages: float, buffer_pages: int, mode: str = LOG_CONTINUOUS) -> float:
    """``2·P·log_{B-1}(P)`` — the paper's sort cost."""
    return 2.0 * pages * log_passes(pages, buffer_pages, mode)


@dataclass(frozen=True)
class CostParameters:
    """Inputs to the section-7 cost formulas.

    ``fi_ni`` is the paper's ``f(i)·Ni`` — the number of outer tuples
    that survive the simple predicates and therefore drive one inner
    evaluation each under nested iteration.
    """

    pi: float
    pj: float
    pt2: float = 0.0
    pt3: float = 0.0
    pt4: float = 0.0
    pt: float = 0.0
    buffer_pages: int = 6
    fi_ni: float = 0.0
    nt2: float = 0.0

    #: Section 7.4's example parameters (Kim's query Q3 with MAX()).
    @classmethod
    def paper_section_7_4(cls) -> "CostParameters":
        return cls(
            pi=50, pj=30, pt2=7, pt3=10, pt4=8, pt=5,
            buffer_pages=6, fi_ni=100, nt2=100,
        )


# ---------------------------------------------------------------------------
# Nested iteration
# ---------------------------------------------------------------------------


def nested_iteration_cost(params: CostParameters) -> float:
    """Worst-case nested iteration for a correlated nested query.

    The inner relation is retrieved once per qualifying outer tuple:
    ``Pi + f(i)·Ni·Pj`` (section 7.4's 3 050 = 50 + 100·30).
    """
    return params.pi + params.fi_ni * params.pj


def nested_iteration_cost_buffered(params: CostParameters) -> float:
    """Best case: the inner relation fits in ``B - 1`` buffer pages, so
    rescans are free after the first read — ``Pi + Pj``."""
    return params.pi + params.pj


def nested_iteration_cost_auto(params: CostParameters) -> float:
    """Nested iteration with the buffer taken into account."""
    if params.pj <= params.buffer_pages - 1:
        return nested_iteration_cost_buffered(params)
    return nested_iteration_cost(params)


def nested_iteration_cost_indexed(
    params: CostParameters, matches_per_probe: float
) -> float:
    """Nested iteration probing an index on the inner join column.

    Each qualifying outer tuple costs roughly one index-leaf page plus
    the heap pages of its matching tuples (assumed uncluttered: one
    page per match, capped at the whole relation):
    ``Pi + f(i)·Ni · (1 + min(Pj, ⌈matches⌉))``.
    """
    per_probe = 1.0 + min(params.pj, math.ceil(max(0.0, matches_per_probe)))
    return params.pi + params.fi_ni * per_probe


# ---------------------------------------------------------------------------
# NEST-N-J transformation (type-N / type-J)
# ---------------------------------------------------------------------------


def transform_nj_cost(
    pi: float,
    pj: float,
    buffer_pages: int,
    result_pages: float = 0.0,
    mode: str = LOG_CONTINUOUS,
) -> float:
    """Canonical-query evaluation by sort + merge join.

    Sort both relations, scan both for the merge, and write the result:
    ``2·Pi·log(Pi) + 2·Pj·log(Pj) + 2·(Pi + Pj) + Presult`` — the
    ``2·(Pi+Pj)`` covers the initial read into the sort plus the merge
    scan (the paper folds the first read into the sort term's runs).
    """
    return (
        sort_cost(pi, buffer_pages, mode)
        + sort_cost(pj, buffer_pages, mode)
        + 2 * (pi + pj)
        + result_pages
    )


# ---------------------------------------------------------------------------
# NEST-JA2 (section 7.1–7.4)
# ---------------------------------------------------------------------------


def outer_projection_cost(params: CostParameters, mode: str = LOG_CONTINUOUS) -> float:
    """Section 7.1 — create Rt2 from Ri with duplicates removed:
    ``Pi + Pt2 + 2·Pt2·log(Pt2)``; Rt2 emerges in join-column order."""
    return params.pi + params.pt2 + sort_cost(params.pt2, params.buffer_pages, mode)


def temp_creation_cost_merge(params: CostParameters, mode: str = LOG_CONTINUOUS) -> float:
    """Section 7.2, merge-join method — create Rt from Rj:

    ``Pj + Pt3 + 2·Pt3·log(Pt3) + Pt2 + Pt3 + 2·Pt4 + Pt``

    Reading Rj and writing Rt3 (projection/restriction), sorting Rt3,
    merge-joining Rt2 with Rt3 (read both, write Rt4), then the GROUP BY:
    Rt4 is already in group order (it was produced by a merge join on
    the grouping column), so it is read once and Rt written.
    """
    return (
        params.pj
        + params.pt3
        + sort_cost(params.pt3, params.buffer_pages, mode)
        + params.pt2
        + params.pt3
        + 2 * params.pt4
        + params.pt
    )


def temp_creation_cost_nested(params: CostParameters, mode: str = LOG_CONTINUOUS) -> float:
    """Section 7.2, nested-loop method — create Rt from Rj.

    If Rt3 fits into ``B - 1`` pages the join costs ``Pj + Pt2 + Pt4``
    (Rt3 is built in memory while scanning Rj).  Otherwise Rt3 is
    materialized and rescanned per Rt2 tuple:
    ``Pj + Pt3 + Pt2 + Nt2·Pt3 + Pt4``.

    Either way the GROUP BY then reads Rt4 and writes Rt (the nested
    loop iterates Rt2 — which is in group-column order — as the outer,
    so no extra sort is needed).
    """
    group_by = params.pt4 + params.pt
    if params.pt3 <= params.buffer_pages - 1:
        return params.pj + params.pt2 + params.pt4 + group_by
    return (
        params.pj
        + params.pt3
        + params.pt2
        + params.nt2 * params.pt3
        + params.pt4
        + group_by
    )


def final_join_cost_merge(params: CostParameters, mode: str = LOG_CONTINUOUS) -> float:
    """Section 7.3, merge join of Rt with Ri:
    ``2·Pi·log(Pi) + Pi + Pt`` — Rt is already in join-column order,
    only Ri must be sorted (assuming Ri is not reduced in size)."""
    return sort_cost(params.pi, params.buffer_pages, mode) + params.pi + params.pt


def final_join_cost_nested(params: CostParameters) -> float:
    """Section 7.3, nested-iteration join of Rt with Ri:
    ``Pi + Pt`` when Rt fits in the buffer, else ``Pi + f(i)·Ni·Pt``."""
    if params.pt <= params.buffer_pages - 1:
        return params.pi + params.pt
    return params.pi + params.fi_ni * params.pt


@dataclass(frozen=True)
class Ja2CostBreakdown:
    """The four total costs of section 7.4 plus their shared pieces."""

    outer_projection: float
    temp_merge: float
    temp_nested: float
    final_merge: float
    final_nested: float

    @property
    def merge_merge(self) -> float:
        return self.outer_projection + self.temp_merge + self.final_merge

    @property
    def merge_nested(self) -> float:
        return self.outer_projection + self.temp_merge + self.final_nested

    @property
    def nested_merge(self) -> float:
        return self.outer_projection + self.temp_nested + self.final_merge

    @property
    def nested_nested(self) -> float:
        return self.outer_projection + self.temp_nested + self.final_nested

    def variants(self) -> dict[str, float]:
        return {
            "merge+merge": self.merge_merge,
            "merge+nested": self.merge_nested,
            "nested+merge": self.nested_merge,
            "nested+nested": self.nested_nested,
        }

    def best(self) -> tuple[str, float]:
        return min(self.variants().items(), key=lambda kv: kv[1])


def ja2_costs(params: CostParameters, mode: str = LOG_CONTINUOUS) -> Ja2CostBreakdown:
    """All NEST-JA2 evaluation costs for one parameter set."""
    return Ja2CostBreakdown(
        outer_projection=outer_projection_cost(params, mode),
        temp_merge=temp_creation_cost_merge(params, mode),
        temp_nested=temp_creation_cost_nested(params, mode),
        final_merge=final_join_cost_merge(params, mode),
        final_nested=final_join_cost_nested(params),
    )


# ---------------------------------------------------------------------------
# Hash-based operators (an extension beyond section 7's repertoire)
# ---------------------------------------------------------------------------
#
# The paper costs only sort-merge and nested-loop evaluation.  The
# executor's ``join_method="hash"`` adds classic (Grace-style) hash
# operators, costed with the standard textbook accounting: an input
# whose build side fits in the in-memory hash table (≈ ``B - 2`` frames,
# one frame reserved for input and one for output) is processed in a
# single pass; otherwise both inputs are partitioned to disk first,
# tripling their I/O (read + partition-write + partition-read).


def _fits_in_memory(pages: float, buffer_pages: int) -> bool:
    return pages <= max(0, buffer_pages - 2)


def hash_join_cost(
    p_build: float,
    p_probe: float,
    buffer_pages: int,
    result_pages: float = 0.0,
) -> float:
    """Hash equi join building on ``p_build``, probing with ``p_probe``.

    In-memory: ``Pbuild + Pprobe + Presult``.  Partitioned:
    ``3·(Pbuild + Pprobe) + Presult``.  No sort terms — that is the
    whole point versus :func:`transform_nj_cost`.
    """
    if _fits_in_memory(p_build, buffer_pages):
        return p_build + p_probe + result_pages
    return 3.0 * (p_build + p_probe) + result_pages


def hash_aggregate_cost(
    p_in: float, buffer_pages: int, result_pages: float = 0.0
) -> float:
    """Hash GROUP BY / DISTINCT over a ``p_in``-page input.

    One scan when the group table fits in memory, else partition first:
    ``Pin + Presult`` vs ``3·Pin + Presult``.
    """
    if _fits_in_memory(p_in, buffer_pages):
        return p_in + result_pages
    return 3.0 * p_in + result_pages


def transform_nj_hash_cost(
    pi: float,
    pj: float,
    buffer_pages: int,
    result_pages: float = 0.0,
) -> float:
    """Canonical N/J-query evaluation by hash join (build the smaller
    side) — the hash counterpart of :func:`transform_nj_cost`."""
    build, probe = (pi, pj) if pi <= pj else (pj, pi)
    return hash_join_cost(build, probe, buffer_pages, result_pages)


def outer_projection_cost_hash(params: CostParameters) -> float:
    """Section 7.1's Rt2 creation with hash dedup instead of a sort:
    read Ri, write Rt2 (``Pi + Pt2``); a spilling dedup triples Rt2."""
    if _fits_in_memory(params.pt2, params.buffer_pages):
        return params.pi + params.pt2
    return params.pi + 3.0 * params.pt2


def temp_creation_cost_hash(params: CostParameters) -> float:
    """Section 7.2's Rt creation with hash join + hash GROUP BY:

    ``Pj + Pt3`` (projection/restriction of Rj), the hash join of Rt2
    with Rt3 writing Rt4, then hash aggregation of Rt4 writing Rt —
    no sort of Rt3 and no reliance on Rt2's order.
    """
    build, probe = (
        (params.pt2, params.pt3)
        if params.pt2 <= params.pt3
        else (params.pt3, params.pt2)
    )
    return (
        params.pj
        + params.pt3
        + hash_join_cost(build, probe, params.buffer_pages, params.pt4)
        + hash_aggregate_cost(params.pt4, params.buffer_pages, params.pt)
    )


def final_join_cost_hash(params: CostParameters) -> float:
    """Section 7.3's final join by hash: build on Rt (the small grouped
    temp), probe with Ri — ``Ri`` needs no sort."""
    return hash_join_cost(params.pt, params.pi, params.buffer_pages)


def ja2_hash_cost(params: CostParameters) -> float:
    """Total NEST-JA2 cost with hash operators throughout."""
    return (
        outer_projection_cost_hash(params)
        + temp_creation_cost_hash(params)
        + final_join_cost_hash(params)
    )
