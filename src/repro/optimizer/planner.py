"""Cost-based strategy selection for nested queries.

The paper's position (section 1) is that a transformed query "could
then be examined by a query optimizer, such as that described in
[SEL 79], for alternative methods of processing".  This module is that
optimizer in miniature: it estimates, from catalog statistics and the
section-7 formulas, the page-I/O cost of

* nested iteration (buffer-aware, §7's ``Pi + f(i)·Ni·Pj`` vs ``Pi+Pj``),
* NEST-N-J transformation + merge join (type-N/J predicates), and
* the four NEST-JA2 evaluation variants (type-A/JA predicates),

and picks the cheapest.  Selectivity defaults follow System R's classic
magic numbers [SEL 79]: 1/10 for an equality predicate on a non-key
column, 1/3 for a range predicate.

:class:`Planner` estimates; ``Engine.run(..., method="cost")`` acts on
the estimate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.catalog.catalog import Catalog
from repro.core.classify import (
    NestedPredicate,
    NestingType,
    catalog_resolver,
    classify_block,
)
from repro.engine.relation import temp_rows_per_page
from repro.errors import PlanError
from repro.optimizer.cost import (
    CostParameters,
    ja2_costs,
    ja2_hash_cost,
    nested_iteration_cost_auto,
    transform_nj_cost,
    transform_nj_hash_cost,
)
from repro.sql.ast import (
    Between,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    Literal,
    Select,
    column_refs,
    conjuncts,
)
from repro.sql.parser import parse

#: System R's default selectivities [SEL 79].
EQUALITY_SELECTIVITY = 0.10
RANGE_SELECTIVITY = 1.0 / 3.0
IN_LIST_SELECTIVITY = 0.25


@dataclass
class PlanChoice:
    """The planner's verdict for one query.

    Attributes:
        method: ``"nested_iteration"`` or ``"transform"``.
        join_method: join method for the transformed plan (``"merge"``
            or ``"nested"``); None when nested iteration wins.
        estimated_cost: page I/Os of the chosen strategy.
        alternatives: every strategy's estimate, for EXPLAIN output.
        parameters: the cost-model inputs the estimate used.
    """

    method: str
    join_method: str | None
    estimated_cost: float
    alternatives: dict[str, float] = field(default_factory=dict)
    parameters: CostParameters | None = None

    def describe(self) -> str:
        lines = [
            f"chosen: {self.method}"
            + (f" ({self.join_method} join)" if self.join_method else "")
            + f", estimated {self.estimated_cost:,.1f} page I/Os"
        ]
        for name in sorted(self.alternatives, key=self.alternatives.get):
            lines.append(f"  {name}: {self.alternatives[name]:,.1f}")
        return "\n".join(lines)


class Planner:
    """Estimates evaluation costs for single-level-nested queries.

    Estimation handles the common shape the paper analyzes — one outer
    relation, one nested predicate whose inner block scans one relation.
    Queries outside that shape get a conservative default (transform
    with merge joins), which is also what ``method="auto"`` does.
    """

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog

    # -- public API --------------------------------------------------------

    def choose(self, query: str | Select) -> PlanChoice:
        """Estimate all strategies and pick the cheapest."""
        from repro.core.pipeline import prepare_query

        select = parse(query) if isinstance(query, str) else query
        try:
            select = prepare_query(select, self.catalog)
            return self._choose_analyzed(select)
        except PlanError:
            return PlanChoice(
                method="transform",
                join_method="merge",
                estimated_cost=math.inf,
                alternatives={},
            )

    # -- analysis ------------------------------------------------------------

    def _choose_analyzed(self, select: Select) -> PlanChoice:
        nested = classify_block(select, catalog_resolver(self.catalog))
        if len(nested) != 1:
            raise PlanError("planner estimates single-nested-predicate queries")
        predicate = nested[0]
        params = self._parameters(select, predicate)

        alternatives: dict[str, float] = {
            "nested_iteration": nested_iteration_cost_auto(params)
        }
        indexed = self._indexed_ni_cost(select, predicate, params)
        if indexed is not None:
            alternatives["nested_iteration (index probes)"] = indexed
        if predicate.nesting in (NestingType.TYPE_N, NestingType.TYPE_J):
            alternatives["transform (merge join)"] = transform_nj_cost(
                params.pi, params.pj, params.buffer_pages
            )
            alternatives["transform (hash join)"] = transform_nj_hash_cost(
                params.pi, params.pj, params.buffer_pages
            )
        else:
            breakdown = ja2_costs(params)
            alternatives["transform (merge+merge)"] = breakdown.merge_merge
            alternatives["transform (merge+nested)"] = breakdown.merge_nested
            alternatives["transform (nested+merge)"] = breakdown.nested_merge
            alternatives["transform (nested+nested)"] = breakdown.nested_nested
            alternatives["transform (hash)"] = ja2_hash_cost(params)

        best_name = min(alternatives, key=alternatives.get)
        if best_name.startswith("nested_iteration"):
            # The executor probes registered indexes automatically, so
            # both nested-iteration alternatives run the same way.
            method, join_method = "nested_iteration", None
        else:
            method = "transform"
            if "hash" in best_name:
                join_method = "hash"
            elif "(nested" in best_name:
                join_method = "nested"
            else:
                join_method = "merge"
        return PlanChoice(
            method=method,
            join_method=join_method,
            estimated_cost=alternatives[best_name],
            alternatives=alternatives,
            parameters=params,
        )

    def _parameters(
        self, select: Select, predicate: NestedPredicate
    ) -> CostParameters:
        outer = self._single_table(select, "outer")
        inner = self._single_table(predicate.query, "inner")

        outer_entry = self.catalog.get(outer)
        inner_entry = self.catalog.get(inner)
        pi = max(1, outer_entry.heap.num_pages)
        pj = max(1, inner_entry.heap.num_pages)
        ni = outer_entry.heap.num_rows

        selectivity = self._simple_selectivity(select, predicate)
        fi_ni = max(1.0, selectivity * ni)

        # Temp-size estimates for the JA2 variants (section 7 notation).
        per_page_1col = temp_rows_per_page(1)
        per_page_2col = temp_rows_per_page(2)
        distinct_outer = max(
            1.0, min(fi_ni, self._distinct_outer_join_values(predicate, outer, fi_ni))
        )
        pt2 = max(1.0, distinct_outer / per_page_1col)
        inner_sel = self._inner_selectivity(predicate.query)
        inner_kept = max(1.0, inner_sel * inner_entry.heap.num_rows)
        pt3 = max(1.0, inner_kept / per_page_2col)
        pt4 = max(pt2, pt3)
        pt = max(1.0, distinct_outer / per_page_2col)

        return CostParameters(
            pi=pi,
            pj=pj,
            pt2=pt2,
            pt3=pt3,
            pt4=pt4,
            pt=pt,
            buffer_pages=self.catalog.buffer.capacity,
            fi_ni=fi_ni,
            nt2=distinct_outer,
        )

    def _single_table(self, block: Select, label: str) -> str:
        if len(block.from_tables) != 1:
            raise PlanError(f"planner estimates single-{label}-relation blocks")
        name = block.from_tables[0].name
        if not self.catalog.has_table(name):
            raise PlanError(f"unknown table {name}")
        return name

    def _simple_selectivity(
        self, select: Select, predicate: NestedPredicate
    ) -> float:
        """Combined selectivity of the outer block's simple predicates."""
        selectivity = 1.0
        for conjunct in conjuncts(select.where):
            if conjunct is predicate.node:
                continue
            selectivity *= self._conjunct_selectivity(conjunct)
        return selectivity

    def _inner_selectivity(self, inner: Select) -> float:
        """Selectivity of the inner block's non-correlated predicates."""
        local = set(inner.table_bindings)
        selectivity = 1.0
        for conjunct in conjuncts(inner.where):
            refs = list(column_refs(conjunct))
            tables = {r.table for r in refs if r.table is not None}
            if tables and not tables <= local:
                continue  # correlated join predicate
            selectivity *= self._conjunct_selectivity(conjunct)
        return selectivity

    def _conjunct_selectivity(self, conjunct: Expr) -> float:
        if isinstance(conjunct, Comparison):
            column, op, constant = self._column_op_constant(conjunct)
            if column is None:
                return 1.0
            stats = self._column_statistics(column)
            if op == "=":
                if stats is not None:
                    return stats.equality_selectivity()
                return EQUALITY_SELECTIVITY
            if op == "<>":
                if stats is not None:
                    return 1.0 - stats.equality_selectivity()
                return 1.0 - EQUALITY_SELECTIVITY
            if stats is not None:
                interpolated = stats.range_selectivity(op, constant)
                if interpolated is not None:
                    return interpolated
            return RANGE_SELECTIVITY
        if isinstance(conjunct, Between):
            return RANGE_SELECTIVITY
        if isinstance(conjunct, InList):
            return min(1.0, IN_LIST_SELECTIVITY)
        return 1.0

    def _column_op_constant(
        self, conjunct: Comparison
    ) -> tuple[ColumnRef | None, str, object]:
        """Normalize ``col op const`` / ``const op col`` comparisons."""
        from repro.sql.ast import MIRRORED_OPS

        if isinstance(conjunct.left, ColumnRef) and isinstance(
            conjunct.right, Literal
        ):
            return conjunct.left, conjunct.op, conjunct.right.value
        if isinstance(conjunct.right, ColumnRef) and isinstance(
            conjunct.left, Literal
        ):
            return (
                conjunct.right,
                MIRRORED_OPS[conjunct.op],
                conjunct.left.value,
            )
        return None, conjunct.op, None

    def _column_statistics(self, ref: ColumnRef):
        """Column statistics, when ANALYZE has been run on the table."""
        if ref.table is None:
            candidates = [
                name
                for name in self.catalog.statistics
                if ref.column in self.catalog.statistics[name].columns
            ]
            if len(candidates) != 1:
                return None
            table = candidates[0]
        else:
            table = ref.table
        stats = self.catalog.statistics.get(table)
        if stats is None:
            return None
        return stats.columns.get(ref.column)

    def _indexed_ni_cost(
        self, select: Select, predicate: NestedPredicate, params: CostParameters
    ) -> float | None:
        """Cost of nested iteration via an index on the inner join
        column, when such an index is registered."""
        from repro.core._ja_common import decompose_inner_block
        from repro.errors import TransformError
        from repro.optimizer.cost import nested_iteration_cost_indexed

        if not predicate.nesting.is_correlated:
            return None
        try:
            parts = decompose_inner_block(
                predicate.query, catalog_resolver(self.catalog)
            )
        except TransformError:
            return None
        if len(parts.join_preds) != 1 or parts.join_preds[0].op != "=":
            return None
        inner_col = parts.join_preds[0].inner_col
        inner_table = predicate.query.from_tables[0].name
        if inner_col.table not in (None, predicate.query.from_tables[0].binding):
            return None
        if self.catalog.index_for(inner_table, inner_col.column) is None:
            return None

        inner_rows = self.catalog.get(inner_table).heap.num_rows
        stats = self._column_statistics(
            ColumnRef(inner_table, inner_col.column)
        )
        if stats is not None and stats.distinct:
            matches = inner_rows / stats.distinct
        else:
            matches = inner_rows / max(1.0, params.nt2)
        return nested_iteration_cost_indexed(params, matches)

    def _distinct_outer_join_values(
        self, predicate: NestedPredicate, outer_table: str, fi_ni: float
    ) -> float:
        """Distinct values of the outer join column — NEST-JA2's TEMP1
        cardinality.  Exact when statistics exist, else a mild
        duplicate allowance over f(i)·Ni."""
        from repro.core._ja_common import decompose_inner_block
        from repro.errors import TransformError

        try:
            parts = decompose_inner_block(
                predicate.query, catalog_resolver(self.catalog)
            )
        except TransformError:
            return fi_ni * 0.9
        distinct = 0.0
        for pred in parts.join_preds:
            stats = self._column_statistics(pred.outer_col)
            if stats is None:
                return fi_ni * 0.9
            distinct = max(distinct, float(stats.distinct))
        return distinct if distinct else fi_ni * 0.9
