"""Cost model (section 7) and the single-level plan executor/planner."""

from repro.optimizer.cost import CostParameters, ja2_costs, nested_iteration_cost
from repro.optimizer.executor import SingleLevelExecutor
from repro.optimizer.planner import PlanChoice, Planner

__all__ = [
    "CostParameters",
    "PlanChoice",
    "Planner",
    "SingleLevelExecutor",
    "ja2_costs",
    "nested_iteration_cost",
]
