"""Table schemas: names, column types, primary keys, page sizing."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import CatalogError

#: Nominal page size in bytes, used to derive tuples-per-page from the
#: estimated tuple width when a table does not fix ``rows_per_page``.
PAGE_BYTES = 1024


class ColumnType(enum.Enum):
    """Column types of the dialect.

    DATE values are stored as ISO ``YYYY-MM-DD`` strings, which order
    lexically — see DESIGN.md ("Dates") for why the paper's ``1-1-80``
    style literals are normalized this way.
    """

    INT = "int"
    FLOAT = "float"
    TEXT = "text"
    DATE = "date"
    ANY = "any"

    @property
    def width_bytes(self) -> int:
        """Estimated storage width used to size pages."""
        if self is ColumnType.INT or self is ColumnType.FLOAT:
            return 8
        if self is ColumnType.DATE:
            return 10
        if self is ColumnType.ANY:
            return 8
        return 24

    def validate(self, value: object) -> bool:
        """True when a Python value is acceptable for this type (NULL ok)."""
        if value is None or self is ColumnType.ANY:
            return True
        if self is ColumnType.INT:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is ColumnType.FLOAT:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        return isinstance(value, str)


@dataclass(frozen=True)
class Column:
    """One column of a table schema."""

    name: str
    ctype: ColumnType = ColumnType.INT


@dataclass(frozen=True)
class TableSchema:
    """Schema of a stored table.

    Attributes:
        name: table name (upper case by convention).
        columns: ordered column definitions.
        primary_key: names of the key columns.  Not enforced as an
            index, but key columns reject NULL at insert time — the
            static nullability inference (``repro.analysis``) treats
            them as NOT NULL, so the store must uphold that.
    """

    name: str
    columns: tuple[Column, ...]
    primary_key: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        names = [column.name for column in self.columns]
        if len(set(names)) != len(names):
            raise CatalogError(f"duplicate column in table {self.name}")
        for key in self.primary_key:
            if key not in names:
                raise CatalogError(
                    f"primary key column {key!r} not in table {self.name}"
                )

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(column.name for column in self.columns)

    def column_index(self, name: str) -> int:
        """Position of ``name`` in the tuple layout."""
        for index, column in enumerate(self.columns):
            if column.name == name:
                return index
        raise CatalogError(f"table {self.name} has no column {name!r}")

    def has_column(self, name: str) -> bool:
        return any(column.name == name for column in self.columns)

    def column_type(self, name: str) -> ColumnType:
        return self.columns[self.column_index(name)].ctype

    @property
    def row_width_bytes(self) -> int:
        """Estimated tuple width, used to derive tuples per page."""
        return sum(column.ctype.width_bytes for column in self.columns)

    def default_rows_per_page(self, page_bytes: int = PAGE_BYTES) -> int:
        return max(1, page_bytes // self.row_width_bytes)

    def validate_row(self, row: tuple) -> None:
        """Raise :class:`CatalogError` when a row does not fit the schema."""
        if len(row) != len(self.columns):
            raise CatalogError(
                f"table {self.name} expects {len(self.columns)} values,"
                f" got {len(row)}"
            )
        for value, column in zip(row, self.columns):
            if not column.ctype.validate(value):
                raise CatalogError(
                    f"value {value!r} is not valid for column"
                    f" {self.name}.{column.name} of type {column.ctype.value}"
                )
            if value is None and column.name in self.primary_key:
                # The nullability inference treats key columns as NOT
                # NULL; enforce the constraint the inference relies on.
                raise CatalogError(
                    f"NULL is not allowed in key column"
                    f" {self.name}.{column.name}"
                )


def schema(name: str, *columns: str | tuple[str, ColumnType], key: tuple[str, ...] = ()) -> TableSchema:
    """Convenience constructor: ``schema("PARTS", "PNUM", "QOH")``.

    Plain strings default to INT columns; pass ``(name, ColumnType.X)``
    tuples for other types.
    """
    built: list[Column] = []
    for spec in columns:
        if isinstance(spec, str):
            built.append(Column(spec))
        else:
            column_name, ctype = spec
            built.append(Column(column_name, ctype))
    return TableSchema(name, tuple(built), tuple(key))
