"""Schemas and the table catalog."""

from repro.catalog.catalog import Catalog, TableEntry
from repro.catalog.schema import Column, ColumnType, TableSchema

__all__ = ["Catalog", "Column", "ColumnType", "TableEntry", "TableSchema"]
