"""The table catalog: schemas bound to heap files.

One :class:`Catalog` owns one buffer pool and hence one simulated disk;
a catalog is the unit the executors and benchmarks operate on.  Query
transformations create *temporary tables* (the paper's ``Rt``, ``Rt2``,
``Rt3`` ...) through :meth:`Catalog.create_temp_name` and drop them
after the final join.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass

from repro.catalog.schema import TableSchema
from repro.errors import CatalogError
from repro.storage.buffer import BufferPool
from repro.storage.heap import HeapFile
from repro.storage.locks import RWLock, make_lock
from repro.txn.mvcc import SnapshotManager

#: Change events that alter what plans are *valid*: shapes, access
#: paths, or the statistics the cost-based planner chose on.  These
#: purge the plan cache outright.
SCHEMA_EVENTS = frozenset(
    {"create_table", "drop_table", "create_index", "analyze"}
)

#: Change events that alter only which *rows* exist.  Cached plans
#: survive these — they re-read the base tables on every replay — only
#: their memoized temp materializations go stale.
DATA_EVENTS = frozenset({"insert"})


def event_class(event: str) -> str:
    """Classify a change event: ``"schema"`` or ``"data"``."""
    if event in SCHEMA_EVENTS:
        return "schema"
    if event in DATA_EVENTS:
        return "data"
    raise CatalogError(f"unknown catalog change event {event!r}")


@dataclass
class TableEntry:
    """A catalog entry: schema plus backing heap file."""

    schema: TableSchema
    heap: HeapFile
    is_temp: bool = False

    @property
    def name(self) -> str:
        return self.schema.name


class Catalog:
    """Name → table mapping over a shared buffer pool."""

    def __init__(self, buffer: BufferPool) -> None:
        self.buffer = buffer
        self._tables: dict[str, TableEntry] = {}
        self._temp_counter = 0
        self._temp_lock = make_lock("catalog.temp_names")
        #: Populated by repro.catalog.statistics.analyze_table.
        self.statistics: dict[str, "object"] = {}
        #: (table, column) → IsamIndex, via create_index().
        self.indexes: dict[tuple[str, str], "object"] = {}
        #: Monotone counter bumped by plan-*invalidating* changes: DDL
        #: (CREATE/DROP TABLE, CREATE INDEX) and statistics updates.
        #: The plan cache keys on it, so a structurally stale cached
        #: plan can never match after a schema change.
        self.schema_version = 0
        #: Monotone counter bumped by row-only changes (inserts into
        #: non-temp tables).  Cached plans stay valid across data
        #: bumps; only their memoized temp tables are flushed.
        self.data_version = 0
        self._change_hooks: list[Callable[[str, str], None]] = []
        #: MVCC commit timestamps + per-table row horizons; readers pin
        #: the current snapshot so scans see one committed state.
        self.snapshots = SnapshotManager()
        #: Reader-writer lock for the serving layer: worker threads
        #: executing cached plans hold the (re-entrant) read side; DDL
        #: and inserts take the write side.
        self.rwlock = RWLock(name="catalog.rwlock")

    # -- change tracking -------------------------------------------------

    def add_change_hook(self, hook: Callable[[str, str], None]) -> None:
        """Register ``hook(event, table)`` to fire on plan-relevant changes.

        Events: ``create_table``, ``drop_table``, ``create_index``,
        ``insert``, ``analyze``.  Temp-table churn does not fire hooks —
        temps are per-query scratch space, invisible to cached plans.
        """
        self._change_hooks.append(hook)

    @property
    def version(self) -> int:
        """The combined change counter (schema + data).

        Kept for callers that only need "did *anything* change" — it
        advances exactly once per :meth:`bump_version`, as the single
        pre-split counter did.
        """
        return self.schema_version + self.data_version

    def bump_version(self, event: str, table: str) -> None:
        """Advance the version for ``event``'s class and notify hooks."""
        if event_class(event) == "schema":
            self.schema_version += 1
        else:
            self.data_version += 1
        for hook in self._change_hooks:
            hook(event, table)

    def read_lock(self):
        """Shared lock for plan execution (re-entrant per thread)."""
        return self.rwlock.read()

    def write_lock(self):
        """Exclusive lock for DDL and DML."""
        return self.rwlock.write()

    # -- DDL -------------------------------------------------------------

    def create_table(
        self,
        table_schema: TableSchema,
        rows_per_page: int | None = None,
        is_temp: bool = False,
    ) -> TableEntry:
        """Create an empty table; ``rows_per_page`` overrides page sizing."""
        name = table_schema.name
        if name in self._tables:
            raise CatalogError(f"table {name} already exists")
        capacity = rows_per_page or table_schema.default_rows_per_page()
        heap = HeapFile(self.buffer, rows_per_page=capacity, name=name)
        entry = TableEntry(schema=table_schema, heap=heap, is_temp=is_temp)
        self._tables[name] = entry
        if not is_temp:
            # Base tables participate in snapshot isolation; temps are
            # per-query scratch space and always read unrestricted.
            heap.versioned = True
            self.snapshots.register_table(name, rows=0)
            self.bump_version("create_table", name)
        return entry

    def drop_table(self, name: str) -> None:
        entry = self._require(name)
        for key in [k for k in self.indexes if k[0] == name]:
            self.indexes[key].drop()
            del self.indexes[key]
        entry.heap.truncate()
        del self._tables[name]
        self.statistics.pop(name, None)
        if not entry.is_temp:
            self.snapshots.forget_table(name)
            self.bump_version("drop_table", name)

    def create_index(self, table: str, column: str):
        """Build (or rebuild) an ISAM index on ``table.column``.

        The build scans the table once (charged page I/O).  Returns the
        index, which is also registered for the executors and planner.
        """
        from repro.storage.index import IsamIndex

        entry = self._require(table)
        key = (table, column)
        if key in self.indexes:
            self.indexes[key].drop()
        index = IsamIndex(
            entry.heap,
            key_column=entry.schema.column_index(column),
            buffer=self.buffer,
            name=f"idx_{table}_{column}",
        )
        self.indexes[key] = index
        if not entry.is_temp:
            self.bump_version("create_index", table)
        return index

    def index_for(self, table: str, column: str):
        """The registered index on ``table.column``, or None."""
        return self.indexes.get((table, column))

    def drop_temp_tables(self) -> None:
        """Drop every temporary table (end-of-query cleanup)."""
        for name in [n for n, e in self._tables.items() if e.is_temp]:
            self.drop_table(name)

    def register_temp(self, name: str, heap: HeapFile, column_names: list[str]) -> TableEntry:
        """Register an already-materialized heap as a temporary table.

        Used by the transformation pipeline: a temp relation built by
        the physical executor becomes queryable by name (the paper's
        ``Rt``/``TEMP3`` step).  Columns are typed permissively — the
        values were produced by the engine, not user input.
        """
        from repro.catalog.schema import Column, ColumnType, TableSchema

        if name in self._tables:
            raise CatalogError(f"table {name} already exists")
        table_schema = TableSchema(
            name, tuple(Column(c, ColumnType.ANY) for c in column_names)
        )
        heap.name = name
        entry = TableEntry(schema=table_schema, heap=heap, is_temp=True)
        self._tables[name] = entry
        return entry

    def create_temp_name(self, prefix: str = "TEMP") -> str:
        """Return a fresh name for a transformation temp table."""
        with self._temp_lock:
            while True:
                self._temp_counter += 1
                name = f"{prefix}_{self._temp_counter}"
                if name not in self._tables:
                    return name

    # -- DML -------------------------------------------------------------

    def insert(self, name: str, rows: Iterable[tuple]) -> int:
        """Validate and append rows; returns the number inserted.

        The batch is atomic: every row is validated before any row is
        appended, so a validation error leaves the table untouched.
        """
        entry = self._require(name)
        tupled_rows = [tuple(row) for row in rows]
        for tupled in tupled_rows:
            entry.schema.validate_row(tupled)
        count = 0
        for tupled in tupled_rows:
            entry.heap.append(tupled)
            count += 1
        entry.heap.close_writes()
        if count:
            # Indexes are static (ISAM): rebuild after a batch insert.
            for (table, _column), index in self.indexes.items():
                if table == name:
                    index.build()
            if not entry.is_temp:
                # Direct catalog inserts are autocommit writes: publish
                # the new horizon so pinned readers admitted from now
                # on see the rows, then bump the data version (cached
                # plans survive; their temp memos are flushed).
                self.snapshots.publish({name: entry.heap.num_rows})
                self.bump_version("insert", name)
        return count

    def record_statistics(self, name: str, stats: object) -> None:
        """Store ANALYZE output for ``name`` (bumps the plan version)."""
        self.statistics[name] = stats
        if not self._require(name).is_temp:
            self.bump_version("analyze", name)

    # -- lookup ----------------------------------------------------------

    def get(self, name: str) -> TableEntry:
        return self._require(name)

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def schema_of(self, name: str) -> TableSchema:
        return self._require(name).schema

    def heap_of(self, name: str) -> HeapFile:
        return self._require(name).heap

    def _require(self, name: str) -> TableEntry:
        entry = self._tables.get(name)
        if entry is None:
            raise CatalogError(f"no such table: {name}")
        return entry
