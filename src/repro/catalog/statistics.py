"""Table statistics — the optimizer's ANALYZE.

System R's optimizer [SEL 79] kept relation cardinalities and per-column
"image sizes" (distinct-value counts) in the catalog and fell back to
magic-number selectivities without them.  Same here:
:func:`analyze_table` scans a table once (the scan is charged page I/O,
as a real ANALYZE would be) and records, per column:

* the distinct-value count (drives equality selectivity ``1/d`` and the
  planner's estimate of NEST-JA2's ``Pt2`` — the distinct projection of
  the outer join column);
* min/max (drives range-predicate interpolation for numeric columns);
* the NULL count.

With ``parallelism > 1`` the scan is sharded over the heap's partition
map and the per-partition partials are merged: value sets union,
NULL counts sum, minima/maxima fold.  Every aggregate is a pure
function of the multiset of rows, so the merged totals are *identical*
to the serial scan's — the cost formulas downstream
(``hash_join_cost``, ``ja2_hash_cost``) cannot tell the difference.
Each page is still read exactly once, so the charged page I/O is
identical too.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.catalog import Catalog


@dataclass(frozen=True)
class ColumnStatistics:
    """Statistics for one column."""

    distinct: int
    null_count: int
    min_value: object = None
    max_value: object = None

    def equality_selectivity(self) -> float:
        """System R: 1 / (number of distinct values)."""
        return 1.0 / max(1, self.distinct)

    def range_selectivity(self, op: str, value: object) -> float | None:
        """Linear interpolation between min and max (numeric columns).

        Returns None when interpolation is impossible (non-numeric, or
        a degenerate single-value range), signalling the caller to use
        the default.
        """
        low, high = self.min_value, self.max_value
        numeric = all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in (low, high, value)
        )
        if not numeric or low is None or high is None or high <= low:
            return None
        fraction = (value - low) / (high - low)
        fraction = min(1.0, max(0.0, fraction))
        if op in ("<", "<="):
            return fraction
        if op in (">", ">="):
            return 1.0 - fraction
        return None


@dataclass(frozen=True)
class TableStatistics:
    """Statistics for one table."""

    num_rows: int
    num_pages: int
    columns: dict[str, ColumnStatistics] = field(default_factory=dict)
    #: catalog.data_version of the snapshot the ANALYZE scan observed —
    #: the statistics travel with the data state they describe.
    data_version: int = 0


class _Partial:
    """Mergeable per-partition accumulator for one ANALYZE scan."""

    __slots__ = ("values", "nulls", "minima", "maxima")

    def __init__(self, width: int) -> None:
        self.values: list[set] = [set() for _ in range(width)]
        self.nulls = [0] * width
        self.minima: list[object] = [None] * width
        self.maxima: list[object] = [None] * width

    def observe(self, row: tuple) -> None:
        for index, value in enumerate(row):
            if value is None:
                self.nulls[index] += 1
                continue
            self.values[index].add(value)
            if self.minima[index] is None or value < self.minima[index]:
                self.minima[index] = value
            if self.maxima[index] is None or value > self.maxima[index]:
                self.maxima[index] = value

    def merge(self, other: "_Partial") -> None:
        for index in range(len(self.values)):
            self.values[index] |= other.values[index]
            self.nulls[index] += other.nulls[index]
            for candidate in (other.minima[index],):
                if candidate is not None and (
                    self.minima[index] is None
                    or candidate < self.minima[index]
                ):
                    self.minima[index] = candidate
            for candidate in (other.maxima[index],):
                if candidate is not None and (
                    self.maxima[index] is None
                    or candidate > self.maxima[index]
                ):
                    self.maxima[index] = candidate


def analyze_table(
    catalog: Catalog, name: str, parallelism: int = 1
) -> TableStatistics:
    """Scan a table and compute its statistics (charged page I/O).

    The result is also stored in ``catalog.statistics[name]`` so the
    planner finds it.  ``parallelism > 1`` shards the scan across the
    heap's partition map; merged totals are identical to a serial scan.
    """
    entry = catalog.get(name)
    column_names = entry.schema.column_names
    width = len(column_names)
    heap = entry.heap

    # Scan under the active snapshot (if any): the counts below must
    # describe the same row set the scans observed, not whatever the
    # heap tail holds by the time the scan finishes.
    nparts = max(1, min(parallelism, heap.visible_pages()))
    if nparts > 1:
        from repro.engine.exchange import in_worker, run_tasks

        if in_worker():
            nparts = 1
    if nparts > 1:
        shards = heap.partition_pages(nparts)

        def scan_shard(shard):
            partial = _Partial(width)
            for _page_index, rows in heap.scan_pages_partition(shard):
                for row in rows:
                    partial.observe(row)
            return partial

        partials = run_tasks(
            [lambda shard=shard: scan_shard(shard) for shard in shards]
        )
        total = partials[0]
        for partial in partials[1:]:
            total.merge(partial)
    else:
        total = _Partial(width)
        for row in heap.scan():
            total.observe(row)

    stats = TableStatistics(
        num_rows=heap.visible_rows(),
        num_pages=heap.visible_pages(),
        data_version=catalog.data_version,
        columns={
            column: ColumnStatistics(
                distinct=len(total.values[index]),
                null_count=total.nulls[index],
                min_value=total.minima[index],
                max_value=total.maxima[index],
            )
            for index, column in enumerate(column_names)
        },
    )
    catalog.record_statistics(name, stats)
    return stats


def analyze_all(
    catalog: Catalog, parallelism: int = 1
) -> dict[str, TableStatistics]:
    """ANALYZE every (non-temp) table."""
    return {
        name: analyze_table(catalog, name, parallelism=parallelism)
        for name in catalog.table_names()
        if not catalog.get(name).is_temp
    }
