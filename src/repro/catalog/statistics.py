"""Table statistics — the optimizer's ANALYZE.

System R's optimizer [SEL 79] kept relation cardinalities and per-column
"image sizes" (distinct-value counts) in the catalog and fell back to
magic-number selectivities without them.  Same here:
:func:`analyze_table` scans a table once (the scan is charged page I/O,
as a real ANALYZE would be) and records, per column:

* the distinct-value count (drives equality selectivity ``1/d`` and the
  planner's estimate of NEST-JA2's ``Pt2`` — the distinct projection of
  the outer join column);
* min/max (drives range-predicate interpolation for numeric columns);
* the NULL count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.catalog import Catalog


@dataclass(frozen=True)
class ColumnStatistics:
    """Statistics for one column."""

    distinct: int
    null_count: int
    min_value: object = None
    max_value: object = None

    def equality_selectivity(self) -> float:
        """System R: 1 / (number of distinct values)."""
        return 1.0 / max(1, self.distinct)

    def range_selectivity(self, op: str, value: object) -> float | None:
        """Linear interpolation between min and max (numeric columns).

        Returns None when interpolation is impossible (non-numeric, or
        a degenerate single-value range), signalling the caller to use
        the default.
        """
        low, high = self.min_value, self.max_value
        numeric = all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in (low, high, value)
        )
        if not numeric or low is None or high is None or high <= low:
            return None
        fraction = (value - low) / (high - low)
        fraction = min(1.0, max(0.0, fraction))
        if op in ("<", "<="):
            return fraction
        if op in (">", ">="):
            return 1.0 - fraction
        return None


@dataclass(frozen=True)
class TableStatistics:
    """Statistics for one table."""

    num_rows: int
    num_pages: int
    columns: dict[str, ColumnStatistics] = field(default_factory=dict)


def analyze_table(catalog: Catalog, name: str) -> TableStatistics:
    """Scan a table and compute its statistics (charged page I/O).

    The result is also stored in ``catalog.statistics[name]`` so the
    planner finds it.
    """
    entry = catalog.get(name)
    column_names = entry.schema.column_names
    values: list[set] = [set() for _ in column_names]
    nulls = [0] * len(column_names)
    minima: list[object] = [None] * len(column_names)
    maxima: list[object] = [None] * len(column_names)

    for row in entry.heap.scan():
        for index, value in enumerate(row):
            if value is None:
                nulls[index] += 1
                continue
            values[index].add(value)
            if minima[index] is None or value < minima[index]:
                minima[index] = value
            if maxima[index] is None or value > maxima[index]:
                maxima[index] = value

    stats = TableStatistics(
        num_rows=entry.heap.num_rows,
        num_pages=entry.heap.num_pages,
        columns={
            column: ColumnStatistics(
                distinct=len(values[index]),
                null_count=nulls[index],
                min_value=minima[index],
                max_value=maxima[index],
            )
            for index, column in enumerate(column_names)
        },
    )
    catalog.record_statistics(name, stats)
    return stats


def analyze_all(catalog: Catalog) -> dict[str, TableStatistics]:
    """ANALYZE every (non-temp) table."""
    return {
        name: analyze_table(catalog, name)
        for name in catalog.table_names()
        if not catalog.get(name).is_temp
    }
