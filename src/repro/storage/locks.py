"""Synchronization primitives for the concurrent read path.

Lives in :mod:`repro.storage` (the dependency-free bottom layer) so the
catalog, buffer pool, and serving layer can all use it without import
cycles.

Every recognized lock in the engine is created through
:func:`make_lock`, which normally returns a plain
``threading.Lock``/``RLock`` — zero overhead — but returns an
instrumented proxy when the runtime lock witness
(:mod:`repro.analysis.concurrency.witness`) is active: either because
``REPRO_WITNESS=1`` was set in the environment, or because a test
called ``witness.enable()`` before the lock was created.  The stable
names passed to :func:`make_lock` are also what the static lock-order
lint keys its acquisition graph on, so the two analyses agree on what
a "lock" is.
"""

from __future__ import annotations

import os
import threading
from collections.abc import Iterator
from contextlib import contextmanager
from typing import Any, Callable, Protocol


class _RWLockHook(Protocol):
    """What the lock witness implements for RWLock notifications."""

    def before_acquire(
        self, name: str, obj_id: int, mode: str, reentrant: bool
    ) -> None: ...

    def after_acquire(
        self, name: str, obj_id: int, mode: str, reentrant: bool
    ) -> None: ...

    def after_release(self, name: str, obj_id: int, mode: str) -> None: ...


#: Installed by the witness at enable time; None = uninstrumented.
_lock_factory: Callable[[str, bool], Any] | None = None
_rwlock_hook: _RWLockHook | None = None
_env_checked = False


def set_lock_factory(factory: Callable[[str, bool], Any] | None) -> None:
    """Install (or remove) the witness's lock constructor."""
    global _lock_factory
    _lock_factory = factory


def set_rwlock_hook(hook: _RWLockHook | None) -> None:
    """Install (or remove) the witness's RWLock transition hook."""
    global _rwlock_hook
    _rwlock_hook = hook


def _maybe_enable_from_env() -> None:
    global _env_checked
    if _env_checked:
        return
    _env_checked = True
    if os.environ.get("REPRO_WITNESS"):
        from repro.analysis.concurrency.witness import witness

        witness.enable()


def make_lock(name: str, *, reentrant: bool = False) -> Any:
    """A named mutex: plain, or witness-wrapped when witnessing is on.

    ``name`` is a stable dotted identifier (``"buffer.pool"``,
    ``"txn.commit"``) shared by all instances of the same lock class;
    the witness's order graph and its diagnostics use it.
    """
    _maybe_enable_from_env()
    if _lock_factory is not None:
        return _lock_factory(name, reentrant)
    return threading.RLock() if reentrant else threading.Lock()


class RWLock:
    """A reader-writer lock with re-entrant readers and writer priority.

    * Any number of threads may hold the read lock simultaneously.
    * The write lock is exclusive against both readers and writers.
    * A thread may re-acquire the read lock it already holds (cached-plan
      execution nests catalog reads), and a thread holding the *write*
      lock may take the read lock — DDL implementations call read-side
      helpers.
    * A pending writer blocks new first-time readers, so a stream of
      overlapping readers cannot starve DDL forever.
    """

    def __init__(self, name: str = "rwlock") -> None:
        self.name = name
        self._cond = threading.Condition()
        #: thread ident → read-entry count (re-entrancy bookkeeping).
        self._readers: dict[int, int] = {}
        self._writer: int | None = None
        self._writer_depth = 0
        self._waiting_writers = 0

    # -- read side -----------------------------------------------------------

    def acquire_read(self) -> None:
        hook = _rwlock_hook
        if hook is not None:
            hook.before_acquire(self.name, id(self), "read", True)
        me = threading.get_ident()
        with self._cond:
            while True:
                if self._writer == me:
                    break  # write lock implies read permission
                if me in self._readers:
                    break  # re-entrant read
                if self._writer is None and self._waiting_writers == 0:
                    break
                self._cond.wait()
            self._readers[me] = self._readers.get(me, 0) + 1
        if hook is not None:
            hook.after_acquire(self.name, id(self), "read", True)

    def release_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            count = self._readers.get(me, 0)
            if count <= 0:
                raise RuntimeError("release_read without acquire_read")
            if count == 1:
                del self._readers[me]
                self._cond.notify_all()
            else:
                self._readers[me] = count - 1
        if _rwlock_hook is not None:
            _rwlock_hook.after_release(self.name, id(self), "read")

    @contextmanager
    def read(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # -- write side ----------------------------------------------------------

    def acquire_write(self) -> None:
        hook = _rwlock_hook
        if hook is not None:
            hook.before_acquire(self.name, id(self), "write", True)
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
            else:
                self._waiting_writers += 1
                try:
                    while self._writer is not None or any(
                        ident != me for ident in self._readers
                    ):
                        self._cond.wait()
                finally:
                    self._waiting_writers -= 1
                self._writer = me
                self._writer_depth = 1
        if hook is not None:
            hook.after_acquire(self.name, id(self), "write", True)

    def release_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer != me:
                raise RuntimeError("release_write without acquire_write")
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer = None
                self._cond.notify_all()
        if _rwlock_hook is not None:
            _rwlock_hook.after_release(self.name, id(self), "write")

    @contextmanager
    def write(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
