"""Synchronization primitives for the concurrent read path.

Lives in :mod:`repro.storage` (the dependency-free bottom layer) so the
catalog, buffer pool, and serving layer can all use it without import
cycles.
"""

from __future__ import annotations

import threading
from collections.abc import Iterator
from contextlib import contextmanager


class RWLock:
    """A reader-writer lock with re-entrant readers and writer priority.

    * Any number of threads may hold the read lock simultaneously.
    * The write lock is exclusive against both readers and writers.
    * A thread may re-acquire the read lock it already holds (cached-plan
      execution nests catalog reads), and a thread holding the *write*
      lock may take the read lock — DDL implementations call read-side
      helpers.
    * A pending writer blocks new first-time readers, so a stream of
      overlapping readers cannot starve DDL forever.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        #: thread ident → read-entry count (re-entrancy bookkeeping).
        self._readers: dict[int, int] = {}
        self._writer: int | None = None
        self._writer_depth = 0
        self._waiting_writers = 0

    # -- read side -----------------------------------------------------------

    def acquire_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            while True:
                if self._writer == me:
                    break  # write lock implies read permission
                if me in self._readers:
                    break  # re-entrant read
                if self._writer is None and self._waiting_writers == 0:
                    break
                self._cond.wait()
            self._readers[me] = self._readers.get(me, 0) + 1

    def release_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            count = self._readers.get(me, 0)
            if count <= 0:
                raise RuntimeError("release_read without acquire_read")
            if count == 1:
                del self._readers[me]
                self._cond.notify_all()
            else:
                self._readers[me] = count - 1

    @contextmanager
    def read(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # -- write side ----------------------------------------------------------

    def acquire_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
                return
            self._waiting_writers += 1
            try:
                while self._writer is not None or any(
                    ident != me for ident in self._readers
                ):
                    self._cond.wait()
            finally:
                self._waiting_writers -= 1
            self._writer = me
            self._writer_depth = 1

    def release_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer != me:
                raise RuntimeError("release_write without acquire_write")
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer = None
                self._cond.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
