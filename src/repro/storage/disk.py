"""Simulated disk: page store plus the I/O counters the paper measures."""

from __future__ import annotations

import time

from repro.errors import StorageError
from repro.storage.locks import make_lock
from repro.storage.page import PAGE_CAPACITY_DEFAULT, Page
from repro.storage.stats import IOStats


class DiskManager:
    """Holds pages and counts every page read and write.

    The "disk" is a dict from page id to a frozen snapshot of the
    page's tuples.  Reads return a fresh :class:`Page` object so buffer
    frames never alias disk state.

    All state is guarded by an internal lock, so concurrent readers
    (the serving layer's worker threads) can miss in the buffer pool
    and fault pages in simultaneously.

    Args:
        io_delay: optional simulated seconds per page *read*.  The sleep
            happens outside the lock (and releases the GIL), modelling a
            disk whose transfers overlap across threads; throughput
            benchmarks use it so multi-threaded scaling reflects an
            I/O-bound workload rather than pure-Python CPU contention.
            Writes are not delayed (write-behind cache behaviour).
    """

    def __init__(self, io_delay: float = 0.0) -> None:
        self._pages: dict[int, tuple[tuple, ...]] = {}
        self._capacities: dict[int, int] = {}
        self._next_page_id = 0
        self.page_reads = 0
        self.page_writes = 0
        self.io_delay = io_delay
        self._lock = make_lock("disk")

    # -- allocation ----------------------------------------------------------

    def allocate(self, capacity: int = PAGE_CAPACITY_DEFAULT) -> int:
        """Allocate a fresh, empty page and return its id.

        Allocation itself is free (no I/O is counted); the page is
        charged when it is first written back.
        """
        with self._lock:
            page_id = self._next_page_id
            self._next_page_id += 1
            self._pages[page_id] = ()
            self._capacities[page_id] = capacity
            return page_id

    def deallocate(self, page_id: int) -> None:
        """Release a page (no I/O is counted)."""
        with self._lock:
            self._check_exists(page_id)
            del self._pages[page_id]
            del self._capacities[page_id]

    @property
    def num_pages(self) -> int:
        with self._lock:
            return len(self._pages)

    def exists(self, page_id: int) -> bool:
        with self._lock:
            return page_id in self._pages

    # -- I/O -----------------------------------------------------------------

    def read_page(self, page_id: int) -> Page:
        """Fetch a page from disk (counts one page read)."""
        with self._lock:
            self._check_exists(page_id)
            self.page_reads += 1
            page = Page(
                page_id,
                capacity=self._capacities[page_id],
                rows=list(self._pages[page_id]),
            )
        if self.io_delay:
            # Simulated transfer time; deliberately outside the lock so
            # concurrent faults overlap, as real disk requests would.
            time.sleep(self.io_delay)
        return page

    def write_page(self, page: Page) -> None:
        """Write a page back to disk (counts one page write)."""
        with self._lock:
            self._check_exists(page.page_id)
            self.page_writes += 1
            self._pages[page.page_id] = tuple(page.rows)

    # -- statistics ----------------------------------------------------------

    def stats(self, buffer_hits: int = 0) -> IOStats:
        """Snapshot the counters (optionally folding in buffer hits)."""
        with self._lock:
            return IOStats(
                page_reads=self.page_reads,
                page_writes=self.page_writes,
                buffer_hits=buffer_hits,
            )

    def reset_stats(self) -> None:
        """Zero the counters (used between benchmark phases)."""
        with self._lock:
            self.page_reads = 0
            self.page_writes = 0

    def _check_exists(self, page_id: int) -> None:
        if page_id not in self._pages:
            raise StorageError(f"no such page: {page_id}")
