"""Simulated disk: page store plus the I/O counters the paper measures."""

from __future__ import annotations

from repro.errors import StorageError
from repro.storage.page import PAGE_CAPACITY_DEFAULT, Page
from repro.storage.stats import IOStats


class DiskManager:
    """Holds pages and counts every page read and write.

    The "disk" is a dict from page id to a frozen snapshot of the
    page's tuples.  Reads return a fresh :class:`Page` object so buffer
    frames never alias disk state.
    """

    def __init__(self) -> None:
        self._pages: dict[int, tuple[tuple, ...]] = {}
        self._capacities: dict[int, int] = {}
        self._next_page_id = 0
        self.page_reads = 0
        self.page_writes = 0

    # -- allocation ----------------------------------------------------------

    def allocate(self, capacity: int = PAGE_CAPACITY_DEFAULT) -> int:
        """Allocate a fresh, empty page and return its id.

        Allocation itself is free (no I/O is counted); the page is
        charged when it is first written back.
        """
        page_id = self._next_page_id
        self._next_page_id += 1
        self._pages[page_id] = ()
        self._capacities[page_id] = capacity
        return page_id

    def deallocate(self, page_id: int) -> None:
        """Release a page (no I/O is counted)."""
        self._check_exists(page_id)
        del self._pages[page_id]
        del self._capacities[page_id]

    @property
    def num_pages(self) -> int:
        return len(self._pages)

    def exists(self, page_id: int) -> bool:
        return page_id in self._pages

    # -- I/O -----------------------------------------------------------------

    def read_page(self, page_id: int) -> Page:
        """Fetch a page from disk (counts one page read)."""
        self._check_exists(page_id)
        self.page_reads += 1
        return Page(
            page_id,
            capacity=self._capacities[page_id],
            rows=list(self._pages[page_id]),
        )

    def write_page(self, page: Page) -> None:
        """Write a page back to disk (counts one page write)."""
        self._check_exists(page.page_id)
        self.page_writes += 1
        self._pages[page.page_id] = tuple(page.rows)

    # -- statistics ----------------------------------------------------------

    def stats(self, buffer_hits: int = 0) -> IOStats:
        """Snapshot the counters (optionally folding in buffer hits)."""
        return IOStats(
            page_reads=self.page_reads,
            page_writes=self.page_writes,
            buffer_hits=buffer_hits,
        )

    def reset_stats(self) -> None:
        """Zero the counters (used between benchmark phases)."""
        self.page_reads = 0
        self.page_writes = 0

    def _check_exists(self, page_id: int) -> None:
        if page_id not in self._pages:
            raise StorageError(f"no such page: {page_id}")
