"""Snapshot visibility plumbing for MVCC scans.

The transaction layer (:mod:`repro.txn.mvcc`) pins a *snapshot* — an
immutable map from base-table name to the number of committed rows
visible at one commit timestamp — for the duration of a query.  Heap
files are append-only, so "the first N rows" is a complete description
of a table's state at any commit point: a snapshot never needs per-row
version columns or delta chains, just a row horizon per table.

This module is the storage layer's (dependency-free) half of that
contract: a context variable holding the active snapshot, which
:meth:`~repro.storage.heap.HeapFile.scan` and friends consult to trim
their reads.  It deliberately knows nothing about transactions — any
object with a ``limit_for(name) -> int | None`` method can be
activated, which is also what lets :mod:`repro.txn.mvcc` layer
transaction-private read-your-writes overlays on top without the
storage layer caring.

The context variable propagates into exchange-pool workers the same way
bound query parameters do (the pool copies ``contextvars`` per task),
so partitioned parallel scans observe the pinning thread's snapshot.
"""

from __future__ import annotations

from contextvars import ContextVar, Token
from typing import Protocol


class SnapshotLike(Protocol):
    """Anything that can bound per-table scan visibility."""

    def limit_for(self, name: str) -> int | None:
        """Visible row count for ``name``; None = unrestricted."""
        ...


#: The snapshot the current task reads under (None = see everything,
#: the historical single-writer behaviour).
_ACTIVE: ContextVar[SnapshotLike | None] = ContextVar(
    "repro_active_snapshot", default=None
)


def active_snapshot() -> SnapshotLike | None:
    """The snapshot pinned for the current task, if any."""
    return _ACTIVE.get()


def activate(snapshot: SnapshotLike) -> Token:
    """Pin ``snapshot`` for the current task; returns the reset token."""
    return _ACTIVE.set(snapshot)


def deactivate(token: Token) -> None:
    """Undo a matching :func:`activate`."""
    _ACTIVE.reset(token)


def visible_limit(name: str | None) -> int | None:
    """Row horizon for table ``name`` under the active snapshot.

    None means unrestricted — either no snapshot is pinned, or the
    snapshot does not track the table (temps, or tables created after
    the snapshot under the DDL lock, which excludes running readers).
    """
    if name is None:
        return None
    snapshot = _ACTIVE.get()
    if snapshot is None:
        return None
    return snapshot.limit_for(name)
