"""In-memory page representation.

A page is a bounded container of tuples (Python tuples).  The bound —
``capacity``, in tuples — stands in for the byte-size page of a real
system; workload code chooses per-table capacities so that relations
occupy the page counts the paper's cost formulas use (``Pi``, ``Pj``,
``Pt`` ...).
"""

from __future__ import annotations

from repro.errors import StorageError

#: Default number of tuples per page when a table does not specify one.
PAGE_CAPACITY_DEFAULT = 32


class Page:
    """A slotted page holding up to ``capacity`` tuples.

    Pages are handled exclusively through the buffer pool; operators
    never construct them directly.
    """

    __slots__ = ("page_id", "capacity", "rows", "dirty")

    def __init__(
        self,
        page_id: int,
        capacity: int = PAGE_CAPACITY_DEFAULT,
        rows: list[tuple] | None = None,
    ) -> None:
        if capacity < 1:
            raise StorageError(f"page capacity must be >= 1, got {capacity}")
        self.page_id = page_id
        self.capacity = capacity
        self.rows: list[tuple] = list(rows) if rows is not None else []
        if len(self.rows) > capacity:
            raise StorageError(
                f"page {page_id} overfull: {len(self.rows)} > {capacity}"
            )
        self.dirty = False

    @property
    def is_full(self) -> bool:
        return len(self.rows) >= self.capacity

    def append(self, row: tuple) -> None:
        """Add a tuple to the page, marking it dirty."""
        if self.is_full:
            raise StorageError(f"page {self.page_id} is full")
        self.rows.append(row)
        self.dirty = True

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return (
            f"Page(id={self.page_id}, rows={len(self.rows)}/{self.capacity},"
            f" dirty={self.dirty})"
        )
