"""I/O statistics: the quantity every benchmark in this repo reports."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class IOStats:
    """A snapshot of storage-engine counters.

    Attributes:
        page_reads: pages fetched from the simulated disk.
        page_writes: pages written to the simulated disk.
        buffer_hits: page requests satisfied by the buffer pool without
            touching the disk.
    """

    page_reads: int = 0
    page_writes: int = 0
    buffer_hits: int = 0

    @property
    def page_ios(self) -> int:
        """Total page I/Os — the paper's cost measure (reads + writes)."""
        return self.page_reads + self.page_writes

    def __sub__(self, other: "IOStats") -> "IOStats":
        """Delta between two snapshots (``after - before``)."""
        return IOStats(
            page_reads=self.page_reads - other.page_reads,
            page_writes=self.page_writes - other.page_writes,
            buffer_hits=self.buffer_hits - other.buffer_hits,
        )

    def __add__(self, other: "IOStats") -> "IOStats":
        return IOStats(
            page_reads=self.page_reads + other.page_reads,
            page_writes=self.page_writes + other.page_writes,
            buffer_hits=self.buffer_hits + other.buffer_hits,
        )

    def format(self) -> str:
        """Human-readable one-line summary."""
        return (
            f"{self.page_ios} page I/Os "
            f"({self.page_reads} reads, {self.page_writes} writes, "
            f"{self.buffer_hits} buffer hits)"
        )
