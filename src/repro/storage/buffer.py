"""LRU buffer pool of exactly ``B`` pages.

``B`` is the paper's "size in pages of available main-memory buffer
space" (section 7).  The pool caches page frames, counts hits, and
writes dirty frames back on eviction.  All page access in the engine —
scans, sorts, joins, temp-table builds — goes through here, so the
benchmark numbers reflect real buffer behaviour: an inner relation that
fits in ``B - 1`` pages is fetched from disk once no matter how many
times nested iteration rescans it, exactly the distinction the paper's
cost analysis draws.

Concurrency.  The pool is safe for N worker threads executing cached
plans concurrently (the serving layer's read path):

* a pool-level re-entrant lock guards all structural state (residency
  map, LRU order, pin set, hit counter);
* a fixed array of *stripe latches* (page id mod stripe count)
  serializes disk faults per page, so two threads missing on the same
  page fetch it once — and, crucially, the disk read happens while
  holding only the stripe latch, letting faults on different pages
  overlap their (simulated) transfer time;
* lock order is stripe latch → pool lock → disk lock, everywhere, so
  the hierarchy is deadlock-free.  Eviction runs entirely under the
  pool lock and never touches a stripe latch.

Pinned pages were already excluded from the LRU; ``get_page``/
``new_page`` additionally take ``pin=True`` so callers can make the
lookup-then-pin sequence atomic (a lone ``pin()`` after ``get_page()``
could race with another thread's eviction).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import StorageError
from repro.storage.disk import DiskManager
from repro.storage.locks import make_lock
from repro.storage.page import PAGE_CAPACITY_DEFAULT, Page
from repro.storage.stats import IOStats

#: Default buffer size in pages; benchmarks override it per experiment.
DEFAULT_BUFFER_PAGES = 8

#: Default number of per-page fault latches (modulo-mapped).  Parallel
#: partitioned scans may raise this per pool so workers faulting on
#: disjoint page shards rarely share a latch.
_STRIPE_COUNT = 16


class BufferPool:
    """An LRU cache of page frames backed by a :class:`DiskManager`."""

    def __init__(
        self,
        disk: DiskManager,
        capacity: int = DEFAULT_BUFFER_PAGES,
        stripes: int = _STRIPE_COUNT,
    ) -> None:
        if capacity < 2:
            raise StorageError(
                f"buffer pool needs at least 2 pages, got {capacity}"
            )
        if stripes < 1:
            raise StorageError(f"stripe count must be >= 1, got {stripes}")
        self.disk = disk
        self.capacity = capacity
        # Residency and eviction order are tracked separately: _frames
        # maps every resident page to its frame, while _lru orders only
        # the *unpinned* residents.  Pinning removes a page from _lru,
        # so eviction is a single popitem — O(1) amortized — instead of
        # a scan past however many pages happen to be pinned.
        self._frames: dict[int, Page] = {}
        self._lru: OrderedDict[int, None] = OrderedDict()
        self._pinned: set[int] = set()
        self.hits = 0
        self._lock = make_lock("buffer.pool", reentrant=True)
        self._stripes = tuple(
            make_lock("buffer.stripe") for _ in range(stripes)
        )

    # -- page access ---------------------------------------------------------

    def get_page(self, page_id: int, *, pin: bool = False) -> Page:
        """Return the frame for ``page_id``, fetching from disk on miss.

        With ``pin=True`` the page is pinned atomically with the lookup.
        """
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is not None:
                self.hits += 1
                if pin:
                    self._pin_locked(page_id)
                elif page_id in self._lru:
                    self._lru.move_to_end(page_id)
                return frame
        # Miss: fault the page in under its stripe latch so concurrent
        # misses on the same page read it once, while faults on other
        # pages proceed in parallel.
        with self._stripes[page_id % len(self._stripes)]:
            with self._lock:
                frame = self._frames.get(page_id)
                if frame is not None:
                    self.hits += 1
                    if pin:
                        self._pin_locked(page_id)
                    elif page_id in self._lru:
                        self._lru.move_to_end(page_id)
                    return frame
            # Disk read outside the pool lock (stripe latch held).
            frame = self.disk.read_page(page_id)
            with self._lock:
                resident = self._frames.get(page_id)
                if resident is not None:
                    # Raced with another stripe's admit (cannot happen
                    # for the same page — the stripe latch prevents it —
                    # but kept for safety).
                    frame = resident
                    self.hits += 1
                elif not self.disk.exists(page_id):
                    # The page was freed between our disk read and this
                    # admit (a concurrent heap truncate).  Admitting it
                    # would leave a stale frame for a deallocated page;
                    # hand the caller its snapshot without caching it.
                    if pin:
                        raise StorageError(
                            f"cannot pin freed page {page_id}"
                        )
                    return frame
                else:
                    self._admit(frame)
                if pin:
                    self._pin_locked(page_id)
                return frame

    def new_page(
        self, capacity: int = PAGE_CAPACITY_DEFAULT, *, pin: bool = False
    ) -> Page:
        """Allocate a fresh page and admit an empty, dirty frame for it.

        The page is charged one write when it is eventually flushed or
        evicted, matching the paper's convention that building a P-page
        temporary costs P page writes.
        """
        page_id = self.disk.allocate(capacity)
        frame = Page(page_id, capacity=capacity)
        frame.dirty = True
        with self._lock:
            self._admit(frame)
            if pin:
                self._pin_locked(page_id)
        return frame

    def pin(self, page_id: int) -> None:
        """Protect a resident page from eviction (e.g. a write cursor).

        A real buffer manager pins the page a writer is filling; without
        this, appending row-by-row under a tiny buffer would charge
        spurious write/read pairs that no actual system incurs.

        Prefer ``get_page(..., pin=True)`` under concurrency: a separate
        pin after the lookup can race with another thread's eviction.
        """
        with self._lock:
            self._pin_locked(page_id)

    def _pin_locked(self, page_id: int) -> None:
        if page_id not in self._frames:
            raise StorageError(f"cannot pin non-resident page {page_id}")
        self._pinned.add(page_id)
        self._lru.pop(page_id, None)

    def unpin(self, page_id: int) -> None:
        """Release a pin (idempotent); the page re-enters LRU as MRU."""
        with self._lock:
            if page_id in self._pinned:
                self._pinned.remove(page_id)
                if page_id in self._frames:
                    self._lru[page_id] = None

    def mark_dirty(self, page_id: int) -> None:
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is None:
                raise StorageError(f"page {page_id} is not resident")
            frame.dirty = True

    def flush_page(self, page_id: int) -> None:
        """Write one resident page back to disk if dirty (keeps it cached)."""
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is not None and frame.dirty:
                self.disk.write_page(frame)
                frame.dirty = False

    def flush_all(self) -> None:
        """Write back every dirty frame (keeps them cached)."""
        with self._lock:
            for frame in self._frames.values():
                if frame.dirty:
                    self.disk.write_page(frame)
                    frame.dirty = False

    def evict_all(self) -> None:
        """Flush and drop every frame; the pool becomes cold."""
        with self._lock:
            self.flush_all()
            self._frames.clear()
            self._lru.clear()
            self._pinned.clear()

    def discard(self, page_id: int) -> None:
        """Drop a frame without writing it back (for deallocated pages)."""
        with self._lock:
            self._frames.pop(page_id, None)
            self._lru.pop(page_id, None)
            self._pinned.discard(page_id)

    def free_page(self, page_id: int) -> None:
        """Atomically discard a frame and deallocate its disk page.

        Holding the pool lock across both steps closes the race a
        separate discard-then-deallocate sequence leaves open: eviction
        (which writes dirty frames back under this same lock) can never
        pick a page mid-free, and a faulting reader's admit — also
        under this lock, with an existence re-check — can never install
        a stale frame for a page that no longer exists.  A concurrent
        reader's pin on the page is dropped with the frame: the reader
        keeps its (snapshot) frame reference, and its later ``unpin``
        is a no-op.
        """
        with self._lock:
            self._frames.pop(page_id, None)
            self._lru.pop(page_id, None)
            self._pinned.discard(page_id)
            self.disk.deallocate(page_id)

    # -- statistics ----------------------------------------------------------

    @property
    def resident_pages(self) -> int:
        with self._lock:
            return len(self._frames)

    def stats(self) -> IOStats:
        """Current counters from the underlying disk plus hit count."""
        with self._lock:
            return self.disk.stats(buffer_hits=self.hits)

    def reset_stats(self) -> None:
        with self._lock:
            self.disk.reset_stats()
            self.hits = 0

    # -- internals (caller holds the pool lock) ------------------------------

    def _admit(self, frame: Page) -> None:
        while len(self._frames) >= self.capacity:
            self._evict_lru()
        self._frames[frame.page_id] = frame
        self._lru[frame.page_id] = None
        self._lru.move_to_end(frame.page_id)

    def _evict_lru(self) -> None:
        if not self._lru:
            raise StorageError("buffer pool exhausted: every page is pinned")
        victim, _ = self._lru.popitem(last=False)
        frame = self._frames.pop(victim)
        if frame.dirty:
            self.disk.write_page(frame)
            frame.dirty = False
