"""LRU buffer pool of exactly ``B`` pages.

``B`` is the paper's "size in pages of available main-memory buffer
space" (section 7).  The pool caches page frames, counts hits, and
writes dirty frames back on eviction.  All page access in the engine —
scans, sorts, joins, temp-table builds — goes through here, so the
benchmark numbers reflect real buffer behaviour: an inner relation that
fits in ``B - 1`` pages is fetched from disk once no matter how many
times nested iteration rescans it, exactly the distinction the paper's
cost analysis draws.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import StorageError
from repro.storage.disk import DiskManager
from repro.storage.page import PAGE_CAPACITY_DEFAULT, Page
from repro.storage.stats import IOStats

#: Default buffer size in pages; benchmarks override it per experiment.
DEFAULT_BUFFER_PAGES = 8


class BufferPool:
    """An LRU cache of page frames backed by a :class:`DiskManager`."""

    def __init__(
        self, disk: DiskManager, capacity: int = DEFAULT_BUFFER_PAGES
    ) -> None:
        if capacity < 2:
            raise StorageError(
                f"buffer pool needs at least 2 pages, got {capacity}"
            )
        self.disk = disk
        self.capacity = capacity
        # Residency and eviction order are tracked separately: _frames
        # maps every resident page to its frame, while _lru orders only
        # the *unpinned* residents.  Pinning removes a page from _lru,
        # so eviction is a single popitem — O(1) amortized — instead of
        # a scan past however many pages happen to be pinned.
        self._frames: dict[int, Page] = {}
        self._lru: OrderedDict[int, None] = OrderedDict()
        self._pinned: set[int] = set()
        self.hits = 0

    # -- page access ---------------------------------------------------------

    def get_page(self, page_id: int) -> Page:
        """Return the frame for ``page_id``, fetching from disk on miss."""
        frame = self._frames.get(page_id)
        if frame is not None:
            self.hits += 1
            if page_id in self._lru:
                self._lru.move_to_end(page_id)
            return frame
        frame = self.disk.read_page(page_id)
        self._admit(frame)
        return frame

    def new_page(self, capacity: int = PAGE_CAPACITY_DEFAULT) -> Page:
        """Allocate a fresh page and admit an empty, dirty frame for it.

        The page is charged one write when it is eventually flushed or
        evicted, matching the paper's convention that building a P-page
        temporary costs P page writes.
        """
        page_id = self.disk.allocate(capacity)
        frame = Page(page_id, capacity=capacity)
        frame.dirty = True
        self._admit(frame)
        return frame

    def pin(self, page_id: int) -> None:
        """Protect a resident page from eviction (e.g. a write cursor).

        A real buffer manager pins the page a writer is filling; without
        this, appending row-by-row under a tiny buffer would charge
        spurious write/read pairs that no actual system incurs.
        """
        if page_id not in self._frames:
            raise StorageError(f"cannot pin non-resident page {page_id}")
        self._pinned.add(page_id)
        self._lru.pop(page_id, None)

    def unpin(self, page_id: int) -> None:
        """Release a pin (idempotent); the page re-enters LRU as MRU."""
        if page_id in self._pinned:
            self._pinned.remove(page_id)
            if page_id in self._frames:
                self._lru[page_id] = None

    def mark_dirty(self, page_id: int) -> None:
        frame = self._frames.get(page_id)
        if frame is None:
            raise StorageError(f"page {page_id} is not resident")
        frame.dirty = True

    def flush_page(self, page_id: int) -> None:
        """Write one resident page back to disk if dirty (keeps it cached)."""
        frame = self._frames.get(page_id)
        if frame is not None and frame.dirty:
            self.disk.write_page(frame)
            frame.dirty = False

    def flush_all(self) -> None:
        """Write back every dirty frame (keeps them cached)."""
        for frame in self._frames.values():
            if frame.dirty:
                self.disk.write_page(frame)
                frame.dirty = False

    def evict_all(self) -> None:
        """Flush and drop every frame; the pool becomes cold."""
        self.flush_all()
        self._frames.clear()
        self._lru.clear()
        self._pinned.clear()

    def discard(self, page_id: int) -> None:
        """Drop a frame without writing it back (for deallocated pages)."""
        self._frames.pop(page_id, None)
        self._lru.pop(page_id, None)
        self._pinned.discard(page_id)

    # -- statistics ----------------------------------------------------------

    @property
    def resident_pages(self) -> int:
        return len(self._frames)

    def stats(self) -> IOStats:
        """Current counters from the underlying disk plus hit count."""
        return self.disk.stats(buffer_hits=self.hits)

    def reset_stats(self) -> None:
        self.disk.reset_stats()
        self.hits = 0

    # -- internals -----------------------------------------------------------

    def _admit(self, frame: Page) -> None:
        while len(self._frames) >= self.capacity:
            self._evict_lru()
        self._frames[frame.page_id] = frame
        self._lru[frame.page_id] = None
        self._lru.move_to_end(frame.page_id)

    def _evict_lru(self) -> None:
        if not self._lru:
            raise StorageError("buffer pool exhausted: every page is pinned")
        victim, _ = self._lru.popitem(last=False)
        frame = self._frames.pop(victim)
        if frame.dirty:
            self.disk.write_page(frame)
            frame.dirty = False
