"""ISAM-style single-column indexes.

The paper mentions indexes once, and pointedly (section 5.2): a system
may be tempted to perform a join *first* "to take advantage of indices
on the join columns" — which breaks the restriction-before-outer-join
ordering NEST-JA2 needs.  To reproduce that trap (and to give System
R-style nested iteration its classic accelerator) this module provides
a page-accounted index:

* **leaf pages** hold sorted ``(key, heap_page_id, slot)`` entries and
  live on the simulated disk — probes read them through the buffer
  pool and are charged page I/O;
* the **directory** (first key of each leaf page) is kept in memory,
  standing in for the upper B-tree levels a real system would almost
  always have cached.

The index is static (ISAM): it is built by one scan of the heap and
must be rebuilt after updates — adequate for this repository's
read-only analytical workloads, and documented here so nobody mistakes
it for a full B-tree.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterator

from repro.engine.sort import _orderable
from repro.errors import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.heap import HeapFile

#: Entries per leaf page (a (key, page, slot) triple is small).
INDEX_ENTRIES_PER_PAGE = 64


class IsamIndex:
    """A static sorted index over one column of a heap file."""

    def __init__(
        self,
        heap: HeapFile,
        key_column: int,
        buffer: BufferPool,
        name: str | None = None,
        entries_per_page: int = INDEX_ENTRIES_PER_PAGE,
    ) -> None:
        self.heap = heap
        self.key_column = key_column
        self.buffer = buffer
        self.name = name or f"idx_{heap.name}_{key_column}"
        self._leaves = HeapFile(
            buffer, rows_per_page=entries_per_page, name=self.name
        )
        #: First key of each leaf page (the in-memory directory).
        self._directory: list = []
        self._built = False
        self.build()

    # -- construction -----------------------------------------------------

    def build(self) -> None:
        """(Re)build the index with one scan of the heap.

        NULL keys are not indexed (they can never match an equality or
        range probe).
        """
        self._leaves.truncate()
        entries = [
            (_orderable(row[self.key_column]), position)
            for position, row in self.heap.scan_with_positions()
            if row[self.key_column] is not None
        ]
        entries.sort(key=lambda e: e[0])
        for key, (page_id, slot) in entries:
            self._leaves.append((key, page_id, slot))
        self._leaves.flush()

        self._directory = [
            page_rows[0][0] for page_rows in self._leaves.scan_pages()
        ]
        self._built = True

    @property
    def num_pages(self) -> int:
        """Leaf page count of the index."""
        return self._leaves.num_pages

    @property
    def num_entries(self) -> int:
        return self._leaves.num_rows

    # -- probes -----------------------------------------------------------

    def lookup(self, key: object) -> Iterator[tuple]:
        """Yield every heap row whose key equals ``key``.

        Cost: the leaf pages containing the key range, plus one heap
        page read per matching row (buffer hits when clustered).
        """
        if key is None:
            return
        yield from self._probe(_orderable(key), _orderable(key))

    def range(
        self, low: object = None, high: object = None,
        inclusive: tuple[bool, bool] = (True, True),
    ) -> Iterator[tuple]:
        """Yield heap rows with key in the given (optional) bounds."""
        low_key = _orderable(low) if low is not None else None
        high_key = _orderable(high) if high is not None else None
        yield from self._probe(low_key, high_key, inclusive)

    def _probe(
        self,
        low_key,
        high_key,
        inclusive: tuple[bool, bool] = (True, True),
    ) -> Iterator[tuple]:
        if not self._built:
            raise StorageError(f"index {self.name} is not built")
        if not self._directory:
            return

        # Directory search is free (cached internal levels); choose the
        # first leaf that could contain low_key.
        if low_key is None:
            start_leaf = 0
        else:
            # First leaf that can contain low_key: the last leaf whose
            # first key is strictly below it (duplicates of low_key may
            # span several leaves, so bisect_left, not bisect_right).
            start_leaf = max(0, bisect.bisect_left(self._directory, low_key) - 1)

        for page_index in range(start_leaf, self._leaves.num_pages):
            page = self.buffer.get_page(self._leaves.page_ids[page_index])
            for key, heap_page, slot in page.rows:
                if low_key is not None:
                    if key < low_key:
                        continue
                    if key == low_key and not inclusive[0]:
                        continue
                if high_key is not None:
                    if key > high_key:
                        return
                    if key == high_key and not inclusive[1]:
                        return
                yield self.heap.fetch(heap_page, slot)

    def drop(self) -> None:
        """Free the index pages."""
        self._leaves.truncate()
        self._directory = []
        self._built = False
