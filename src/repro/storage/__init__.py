"""Page-based storage engine with measurable disk I/O.

The paper's unit of cost is the **disk page I/O** (section 7: "The
measure of performance is the number of disk page I/O's required").
Every byte a query touches therefore flows through this subsystem:

* :class:`~repro.storage.disk.DiskManager` — the simulated disk; holds
  pages and counts every page read and write.
* :class:`~repro.storage.buffer.BufferPool` — an LRU cache of exactly
  ``B`` pages (the paper's main-memory buffer space).
* :class:`~repro.storage.heap.HeapFile` — an unordered collection of
  pages storing a relation, scanned sequentially as the paper assumes.
* :class:`~repro.storage.stats.IOStats` — a snapshot of the counters,
  used by benchmarks to report paper-style page-I/O figures.
"""

from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager
from repro.storage.heap import HeapFile
from repro.storage.page import PAGE_CAPACITY_DEFAULT, Page
from repro.storage.stats import IOStats

__all__ = [
    "BufferPool",
    "DiskManager",
    "HeapFile",
    "IOStats",
    "IsamIndex",
    "PAGE_CAPACITY_DEFAULT",
    "Page",
]


def __getattr__(name: str):
    # IsamIndex is imported lazily: it pulls in repro.engine for its
    # key ordering, and eager import here would be circular.
    if name == "IsamIndex":
        from repro.storage.index import IsamIndex

        return IsamIndex
    raise AttributeError(name)
