"""Heap files: unordered paged storage for one relation.

A heap file owns an ordered list of page ids.  ``scan()`` reads the
pages in order through the buffer pool, which is the sequential scan
the paper's cost model assumes ("for simplicity relations Ri and Rj are
scanned sequentially", section 7).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.storage.buffer import BufferPool
from repro.storage.page import PAGE_CAPACITY_DEFAULT


class HeapFile:
    """An append-only paged file of tuples."""

    def __init__(
        self,
        buffer: BufferPool,
        rows_per_page: int = PAGE_CAPACITY_DEFAULT,
        name: str | None = None,
    ) -> None:
        self.buffer = buffer
        self.rows_per_page = rows_per_page
        self.name = name
        self.page_ids: list[int] = []
        self._num_rows = 0
        self._tail_pinned: int | None = None
        self._tail_page = None

    # -- writing ---------------------------------------------------------

    def _write_cursor(self):
        """The pinned tail page, re-pinning it if the cursor was closed.

        While ``_tail_page`` is set the page is pinned and cannot be
        evicted, so the cached object is authoritative — the batch
        write path uses it to consult the buffer pool once per touched
        page rather than once per call.  The row-at-a-time
        :meth:`append` deliberately does *not* use the cache: it
        re-finds the tail through the pool on every tuple, which is the
        row engine's documented per-row cost.  Returns None when the
        file has no pages yet.
        """
        if self._tail_page is not None:
            return self._tail_page
        if not self.page_ids:
            return None
        # pin=True makes lookup-and-pin atomic: a separate pin()
        # after get_page() could race with another thread's evict.
        tail = self.buffer.get_page(self.page_ids[-1], pin=True)
        self._tail_pinned = tail.page_id
        self._tail_page = tail
        return tail

    def _new_tail(self):
        """Unpin the full tail and open a fresh pinned page."""
        self._unpin_tail()
        page = self.buffer.new_page(self.rows_per_page, pin=True)
        self._tail_pinned = page.page_id
        self._tail_page = page
        self.page_ids.append(page.page_id)
        return page

    def append(self, row: tuple) -> None:
        """Append one tuple, allocating a new page when the tail is full.

        The tail page stays pinned in the buffer pool between appends
        (as a real write cursor would be), so filling a page costs
        exactly one eventual write, never an evict/re-read churn.  Each
        tuple still pays a buffer-pool lookup — the row engine's
        per-row cost, which :meth:`append_rows` amortizes per page.
        """
        if self.page_ids:
            # pin=True makes lookup-and-pin atomic: a separate pin()
            # after get_page() could race with another thread's evict.
            tail = self.buffer.get_page(self.page_ids[-1], pin=True)
            if self._tail_pinned != tail.page_id:
                self._unpin_tail()
                self._tail_pinned = tail.page_id
            self._tail_page = tail
            if not tail.is_full:
                tail.append(row)
                self._num_rows += 1
                return
        tail = self._new_tail()
        tail.append(row)
        self._num_rows += 1

    def extend(self, rows: Iterable[tuple]) -> None:
        """Append many tuples and release the write cursor."""
        for row in rows:
            self.append(row)
        self.close_writes()

    def append_rows(self, rows: list[tuple]) -> None:
        """Append a batch of tuples, filling pages chunk-wise.

        Page geometry is identical to repeated :meth:`append` — same
        pages, same eventual writes — but the buffer pool is consulted
        once per touched page instead of once per row, which is what
        makes batch materialization cheap for the vectorized engine.
        The write cursor stays pinned between calls; finish with
        :meth:`close_writes` or :meth:`flush` like any other writer.
        """
        index = 0
        total = len(rows)
        while index < total:
            tail = self._write_cursor()
            if tail is None or tail.is_full:
                tail = self._new_tail()
            take = min(tail.capacity - len(tail.rows), total - index)
            tail.rows.extend(rows[index : index + take])
            tail.dirty = True
            self._num_rows += take
            index += take

    def close_writes(self) -> None:
        """Release the pinned write cursor (safe to call repeatedly)."""
        self._unpin_tail()

    def flush(self) -> None:
        """Force all of this file's dirty pages to disk."""
        self.close_writes()
        for page_id in self.page_ids:
            self.buffer.flush_page(page_id)

    def truncate(self) -> None:
        """Drop all pages (frees them on the simulated disk, no I/O).

        Frame discard and disk deallocation happen atomically under the
        pool lock (:meth:`~repro.storage.buffer.BufferPool.free_page`),
        so a concurrent reader can never re-admit a stale frame for a
        freed page and eviction can never write one back.  A reader
        that races the drop may see ``StorageError: no such page`` —
        the documented outcome of scanning a relation while it is
        dropped — never silent corruption.
        """
        self.close_writes()
        for page_id in self.page_ids:
            self.buffer.free_page(page_id)
        self.page_ids.clear()
        self._num_rows = 0

    def _unpin_tail(self) -> None:
        if self._tail_pinned is not None:
            self.buffer.unpin(self._tail_pinned)
            self._tail_pinned = None
        self._tail_page = None

    # -- reading ---------------------------------------------------------

    # Scans iterate a snapshot of the page list: a concurrent truncate
    # clears ``page_ids``, and mutating a list mid-iteration would skip
    # pages silently; with the snapshot a racing scan instead fails
    # cleanly on the first freed page it touches.

    def scan(self) -> Iterator[tuple]:
        """Yield every tuple, reading pages sequentially via the buffer."""
        for page_id in list(self.page_ids):
            page = self.buffer.get_page(page_id)
            yield from page.rows

    def scan_pages(self) -> Iterator[list[tuple]]:
        """Yield the file page by page (external sort, batch execution)."""
        for page_id in list(self.page_ids):
            yield list(self.buffer.get_page(page_id).rows)

    def scan_with_positions(self) -> Iterator[tuple[tuple[int, int], tuple]]:
        """Yield ``((page_id, slot), row)`` pairs — used by index builds."""
        for page_id in list(self.page_ids):
            page = self.buffer.get_page(page_id)
            for slot, row in enumerate(page.rows):
                yield (page_id, slot), row

    def fetch(self, page_id: int, slot: int) -> tuple:
        """Fetch one tuple by position (an index probe's heap access).

        Reads the page through the buffer pool, so probes are charged
        page I/O like every other access.
        """
        page = self.buffer.get_page(page_id)
        return page.rows[slot]

    # -- metadata --------------------------------------------------------

    @property
    def num_pages(self) -> int:
        """Page count — the paper's ``Pk`` for this relation."""
        return len(self.page_ids)

    @property
    def num_rows(self) -> int:
        """Tuple count — the paper's ``Nk`` for this relation."""
        return self._num_rows

    def __repr__(self) -> str:
        label = self.name or "?"
        return (
            f"HeapFile({label}, pages={self.num_pages}, rows={self.num_rows})"
        )
