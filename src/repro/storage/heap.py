"""Heap files: unordered paged storage for one relation.

A heap file owns an ordered list of page ids.  ``scan()`` reads the
pages in order through the buffer pool, which is the sequential scan
the paper's cost model assumes ("for simplicity relations Ri and Rj are
scanned sequentially", section 7).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.storage import visibility
from repro.storage.buffer import BufferPool
from repro.storage.page import PAGE_CAPACITY_DEFAULT


class HeapFile:
    """An append-only paged file of tuples.

    *Versioned* heaps (base tables under the transaction layer) trim
    their scans to the active snapshot's row horizon — see
    :mod:`repro.storage.visibility`.  Because the file is append-only
    and every page except the tail is filled before a new page is
    allocated, "the first N rows" always occupies a page-aligned prefix
    plus at most one partially visible boundary page, so a snapshot
    scan reads exactly the pages the table occupied at that commit
    point.  Unversioned heaps (temps, plain single-writer catalogs)
    behave exactly as before.
    """

    def __init__(
        self,
        buffer: BufferPool,
        rows_per_page: int = PAGE_CAPACITY_DEFAULT,
        name: str | None = None,
    ) -> None:
        self.buffer = buffer
        self.rows_per_page = rows_per_page
        self.name = name
        self.page_ids: list[int] = []
        self._num_rows = 0
        self._tail_pinned: int | None = None
        self._tail_page = None
        #: Set by the catalog for non-temp tables: scans consult the
        #: active MVCC snapshot (if any) for a row-visibility horizon.
        self.versioned = False

    # -- writing ---------------------------------------------------------

    def _write_cursor(self):
        """The pinned tail page, re-pinning it if the cursor was closed.

        While ``_tail_page`` is set the page is pinned and cannot be
        evicted, so the cached object is authoritative — the batch
        write path uses it to consult the buffer pool once per touched
        page rather than once per call.  The row-at-a-time
        :meth:`append` deliberately does *not* use the cache: it
        re-finds the tail through the pool on every tuple, which is the
        row engine's documented per-row cost.  Returns None when the
        file has no pages yet.
        """
        if self._tail_page is not None:
            return self._tail_page
        if not self.page_ids:
            return None
        # pin=True makes lookup-and-pin atomic: a separate pin()
        # after get_page() could race with another thread's evict.
        tail = self.buffer.get_page(self.page_ids[-1], pin=True)
        self._tail_pinned = tail.page_id
        self._tail_page = tail
        return tail

    def _new_tail(self):
        """Unpin the full tail and open a fresh pinned page."""
        self._unpin_tail()
        page = self.buffer.new_page(self.rows_per_page, pin=True)
        self._tail_pinned = page.page_id
        self._tail_page = page
        self.page_ids.append(page.page_id)
        return page

    def append(self, row: tuple) -> None:
        """Append one tuple, allocating a new page when the tail is full.

        The tail page stays pinned in the buffer pool between appends
        (as a real write cursor would be), so filling a page costs
        exactly one eventual write, never an evict/re-read churn.  Each
        tuple still pays a buffer-pool lookup — the row engine's
        per-row cost, which :meth:`append_rows` amortizes per page.
        """
        if self.page_ids:
            # pin=True makes lookup-and-pin atomic: a separate pin()
            # after get_page() could race with another thread's evict.
            tail = self.buffer.get_page(self.page_ids[-1], pin=True)
            if self._tail_pinned != tail.page_id:
                self._unpin_tail()
                self._tail_pinned = tail.page_id
            self._tail_page = tail
            if not tail.is_full:
                tail.append(row)
                self._num_rows += 1
                return
        tail = self._new_tail()
        tail.append(row)
        self._num_rows += 1

    def extend(self, rows: Iterable[tuple]) -> None:
        """Append many tuples and release the write cursor."""
        for row in rows:
            self.append(row)
        self.close_writes()

    def append_rows(self, rows: list[tuple]) -> None:
        """Append a batch of tuples, filling pages chunk-wise.

        Page geometry is identical to repeated :meth:`append` — same
        pages, same eventual writes — but the buffer pool is consulted
        once per touched page instead of once per row, which is what
        makes batch materialization cheap for the vectorized engine.
        The write cursor stays pinned between calls; finish with
        :meth:`close_writes` or :meth:`flush` like any other writer.
        """
        index = 0
        total = len(rows)
        while index < total:
            tail = self._write_cursor()
            if tail is None or tail.is_full:
                tail = self._new_tail()
            take = min(tail.capacity - len(tail.rows), total - index)
            tail.rows.extend(rows[index : index + take])
            tail.dirty = True
            self._num_rows += take
            index += take

    def close_writes(self) -> None:
        """Release the pinned write cursor (safe to call repeatedly)."""
        self._unpin_tail()

    def flush(self) -> None:
        """Force all of this file's dirty pages to disk.

        The write cursor is released *before* any page is flushed, so
        even if a flush raises (e.g. a page freed by a concurrent drop)
        no pinned tail page survives in the buffer pool.
        """
        self.close_writes()
        for page_id in self.page_ids:
            self.buffer.flush_page(page_id)

    def truncate(self) -> None:
        """Drop all pages (frees them on the simulated disk, no I/O).

        Frame discard and disk deallocation happen atomically under the
        pool lock (:meth:`~repro.storage.buffer.BufferPool.free_page`),
        so a concurrent reader can never re-admit a stale frame for a
        freed page and eviction can never write one back.  A reader
        that races the drop may see ``StorageError: no such page`` —
        the documented outcome of scanning a relation while it is
        dropped — never silent corruption.

        Durability-ordering audit (transaction aborts): the pinned
        write cursor is released *first*, so a truncate racing an
        abort mid-``append_rows`` cannot leave ``free_page`` to discard
        a pin this file still believes it holds (a later
        ``close_writes`` would then unpin a page id that may have been
        recycled).  ``free_page`` itself drops the frame without
        writing it back, so no dirty-page accounting outlives the page.
        """
        self.close_writes()
        for page_id in self.page_ids:
            self.buffer.free_page(page_id)
        self.page_ids.clear()
        self._num_rows = 0

    def rollback_to(self, target_rows: int) -> None:
        """Undo appends past ``target_rows`` (transaction abort).

        The rows being removed are exactly the file's tail — writers
        are serialized by the transaction manager's commit lock, so an
        aborting transaction's appends are the most recent rows.  Tail
        pages emptied by the undo are freed (atomically, like
        :meth:`truncate`); a partially rolled-back boundary page is
        trimmed in place and marked dirty.  The write cursor is
        released first so no pinned or stale-dirty tail page survives
        an abort mid-``append_rows``.
        """
        if target_rows < 0:
            raise ValueError(f"cannot roll back to {target_rows} rows")
        self.close_writes()
        excess = self._num_rows - target_rows
        while excess > 0 and self.page_ids:
            page_id = self.page_ids[-1]
            page = self.buffer.get_page(page_id)
            if not page.rows:
                # Empty tail (allocation raced the abort): just free it.
                self.buffer.free_page(page_id)
                self.page_ids.pop()
                continue
            take = min(len(page.rows), excess)
            if take == len(page.rows):
                self.buffer.free_page(page_id)
                self.page_ids.pop()
            else:
                del page.rows[-take:]
                page.dirty = True
            self._num_rows -= take
            excess -= take

    def _unpin_tail(self) -> None:
        if self._tail_pinned is not None:
            self.buffer.unpin(self._tail_pinned)
            self._tail_pinned = None
        self._tail_page = None

    # -- partitioning ----------------------------------------------------

    def partition_pages(
        self, partitions: int, scheme: str = "range"
    ) -> list[list[tuple[int, int]]]:
        """Split the page list into ``partitions`` disjoint shards.

        Returns one list of ``(page_index, page_id)`` pairs per
        partition (the index is the page's position in the file, which
        fixes the global row offset of every tuple on it — see
        :meth:`rows_before`).  The shards partition the *page list*,
        never individual pages: a page is the unit of I/O, so any
        schedule that reads each shard once reads exactly the pages a
        serial scan reads — the paper's cost model is preserved by
        construction, not by accounting tricks.

        Schemes:

        * ``"range"`` — contiguous runs of nearly equal length; shard
          order concatenates back to scan order, so an ordered gather
          over range shards reproduces the serial scan's row order.
        * ``"hash"`` — page index modulo ``partitions`` (round-robin);
          balances shard sizes when page fill correlates with position.

        Partitions may be empty (``partitions`` > page count is legal).
        The split is computed over a snapshot of the page list, like
        every scan.
        """
        if partitions < 1:
            raise ValueError(f"partition count must be >= 1, got {partitions}")
        pages = list(enumerate(self.page_ids))
        shards: list[list[tuple[int, int]]] = [[] for _ in range(partitions)]
        if scheme == "range":
            base, extra = divmod(len(pages), partitions)
            start = 0
            for index in range(partitions):
                size = base + (1 if index < extra else 0)
                shards[index] = pages[start : start + size]
                start += size
        elif scheme == "hash":
            for position, pair in enumerate(pages):
                shards[position % partitions].append(pair)
        else:
            raise ValueError(f"unknown partition scheme {scheme!r}")
        return shards

    def rows_before(self, page_index: int) -> int:
        """Global row offset of the first tuple on page ``page_index``.

        Computable without I/O thanks to the append path's fill
        invariant: every page except the last is filled to
        ``rows_per_page`` before a new page is allocated, so page ``k``
        starts at row ``k * rows_per_page``.  Partitioned scans use
        this to enumerate stable rowids per shard without a serial
        prefix scan.
        """
        return page_index * self.rows_per_page

    def scan_pages_partition(
        self, shard: list[tuple[int, int]]
    ) -> Iterator[tuple[int, list[tuple]]]:
        """Yield ``(page_index, rows)`` for one shard of a partition map.

        Reads go through the buffer pool like any other scan; a shard
        reads exactly its own pages, so the union over one partition
        map's shards performs the serial scan's reads, just possibly
        interleaved across workers.  Under a pinned snapshot, pages
        wholly past the horizon are skipped without I/O and the
        boundary page is trimmed — exactly what a serial snapshot scan
        reads, sharded.
        """
        limit = self._scan_limit()
        for page_index, page_id in shard:
            if limit is None:
                yield page_index, list(self.buffer.get_page(page_id).rows)
                continue
            visible = limit - self.rows_before(page_index)
            if visible <= 0:
                continue
            rows = self.buffer.get_page(page_id).rows
            yield page_index, list(rows[:visible])

    # -- reading ---------------------------------------------------------

    # Scans iterate a snapshot of the page list: a concurrent truncate
    # clears ``page_ids``, and mutating a list mid-iteration would skip
    # pages silently; with the snapshot a racing scan instead fails
    # cleanly on the first freed page it touches.

    def _scan_limit(self) -> int | None:
        """Row horizon for this scan, or None for the whole file.

        Consults the active MVCC snapshot for versioned heaps.  The
        horizon is honored even when it equals the current row count:
        degenerating to the untrimmed path there would let a writer's
        mid-scan appends leak into a snapshot read (the tail page's
        row list is live).  The bounded path reads exactly the same
        pages, so the paper's page-I/O accounting is unaffected.
        """
        if not self.versioned:
            return None
        return visibility.visible_limit(self.name)

    def visible_rows(self) -> int:
        """Tuple count under the active snapshot (``num_rows`` if none)."""
        limit = self._scan_limit()
        return self._num_rows if limit is None else limit

    def visible_pages(self) -> int:
        """Page count a snapshot scan reads (``num_pages`` if no snapshot)."""
        limit = self._scan_limit()
        if limit is None:
            return self.num_pages
        return min(self.num_pages, -(-limit // self.rows_per_page))

    def scan(self) -> Iterator[tuple]:
        """Yield every visible tuple, reading pages sequentially."""
        limit = self._scan_limit()
        if limit is None:
            for page_id in list(self.page_ids):
                page = self.buffer.get_page(page_id)
                yield from page.rows
            return
        remaining = limit
        for page_id in list(self.page_ids):
            if remaining <= 0:
                break
            # Slice every page: a concurrent writer may be appending to
            # the tail, and yielding the live row list would hand its
            # uncommitted rows to this snapshot scan mid-iteration.
            taken = list(self.buffer.get_page(page_id).rows[:remaining])
            remaining -= len(taken)
            yield from taken

    def scan_pages(self) -> Iterator[list[tuple]]:
        """Yield the file page by page (external sort, batch execution)."""
        limit = self._scan_limit()
        if limit is None:
            for page_id in list(self.page_ids):
                yield list(self.buffer.get_page(page_id).rows)
            return
        remaining = limit
        for page_id in list(self.page_ids):
            if remaining <= 0:
                break
            rows = list(self.buffer.get_page(page_id).rows[:remaining])
            remaining -= len(rows)
            yield rows

    def scan_with_positions(self) -> Iterator[tuple[tuple[int, int], tuple]]:
        """Yield ``((page_id, slot), row)`` pairs — used by index builds."""
        limit = self._scan_limit()
        remaining = self._num_rows if limit is None else limit
        for page_id in list(self.page_ids):
            if remaining <= 0:
                break
            page = self.buffer.get_page(page_id)
            taken = list(page.rows[:remaining])
            for slot, row in enumerate(taken):
                yield (page_id, slot), row
            remaining -= len(taken)

    def fetch(self, page_id: int, slot: int) -> tuple:
        """Fetch one tuple by position (an index probe's heap access).

        Reads the page through the buffer pool, so probes are charged
        page I/O like every other access.
        """
        page = self.buffer.get_page(page_id)
        return page.rows[slot]

    # -- metadata --------------------------------------------------------

    @property
    def num_pages(self) -> int:
        """Page count — the paper's ``Pk`` for this relation."""
        return len(self.page_ids)

    @property
    def num_rows(self) -> int:
        """Tuple count — the paper's ``Nk`` for this relation."""
        return self._num_rows

    def __repr__(self) -> str:
        label = self.name or "?"
        return (
            f"HeapFile({label}, pages={self.num_pages}, rows={self.num_rows})"
        )
