"""Correlation analysis over query-block trees.

The paper's classification (section 2) hinges on one question per inner
block: *does it reference a relation of an outer query block?*  A
qualified reference like ``PARTS.PNUM`` inside a block whose FROM
clause does not mention PARTS is a correlated (join-predicate)
reference.  Unqualified references need schema knowledge to attribute,
which is why these functions take a resolver.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

from repro.errors import BindError
from repro.sql.ast import (
    ColumnRef,
    Exists,
    InSubquery,
    Node,
    Quantified,
    ScalarSubquery,
    Select,
    walk,
)

#: Maps a table binding to a "has column?" predicate.  The catalog
#: provides the real implementation; tests can pass plain dicts of sets.
ColumnResolver = Callable[[str, str], bool]


def resolver_from_columns(columns: Mapping[str, set[str]]) -> ColumnResolver:
    """Build a resolver from ``{binding: {column, ...}}`` (for tests)."""

    def resolver(binding: str, column: str) -> bool:
        return column in columns.get(binding, set())

    return resolver


def outer_references(
    select: Select,
    has_column: ColumnResolver,
    enclosing: tuple[str, ...] = (),
) -> list[ColumnRef]:
    """Column references in ``select``'s subtree that bind to an
    *enclosing* block's table rather than a local one.

    ``enclosing`` lists the bindings visible from outer blocks,
    outermost last; innermost-first resolution applies to unqualified
    names (a column is local if any local table has it).
    """
    local = select.table_bindings
    refs: list[ColumnRef] = []

    own_nodes: list[Node] = [*select.items, *select.group_by, *select.order_by]
    if select.where is not None:
        own_nodes.append(select.where)
    if select.having is not None:
        own_nodes.append(select.having)

    for node in own_nodes:
        for item in walk(node, into_subqueries=False):
            if isinstance(item, ColumnRef):
                ref = item
                if _binds_locally(ref, local, has_column):
                    continue
                if _binds_to(ref, enclosing, has_column):
                    refs.append(ref)
                else:
                    raise BindError(
                        f"cannot resolve column {ref.qualified()} in block"
                    )
            elif isinstance(item, Select):
                refs.extend(
                    outer_references(item, has_column, enclosing + local)
                )
    return refs


def _binds_locally(
    ref: ColumnRef, local: tuple[str, ...], has_column: ColumnResolver
) -> bool:
    if ref.table is not None:
        return ref.table in local
    return any(has_column(binding, ref.column) for binding in local)


def _binds_to(
    ref: ColumnRef, bindings: tuple[str, ...], has_column: ColumnResolver
) -> bool:
    if ref.table is not None:
        return ref.table in bindings
    return any(has_column(binding, ref.column) for binding in bindings)


def is_correlated(
    select: Select,
    has_column: ColumnResolver,
    enclosing: tuple[str, ...],
) -> bool:
    """True when the block (or any descendant) references an enclosing
    block's relation — the paper's type-J/JA condition."""
    return bool(outer_references(select, has_column, enclosing))


def direct_subqueries(select: Select) -> list[Select]:
    """The inner query blocks nested directly in this block's predicates."""
    result: list[Select] = []
    nodes: list[Node] = []
    if select.where is not None:
        nodes.append(select.where)
    if select.having is not None:
        nodes.append(select.having)
    for node in nodes:
        for item in walk(node, into_subqueries=False):
            if isinstance(item, (ScalarSubquery, InSubquery, Exists, Quantified)):
                result.append(item.query)
    return result


def nesting_depth(select: Select) -> int:
    """Depth of the query-block tree (1 for an unnested query)."""
    inner = direct_subqueries(select)
    if not inner:
        return 1
    return 1 + max(nesting_depth(block) for block in inner)
