"""SQL frontend: tokenizer, AST, recursive-descent parser, and printer.

The dialect is the one used throughout Ganski & Wong (1987) and Kim
(1982): `SELECT` blocks with arbitrary nesting in the `WHERE` clause,
scalar and set-membership nested predicates, aggregate functions,
`GROUP BY`/`HAVING`, and the extended predicates `EXISTS`, `NOT EXISTS`,
`ANY`, `ALL`.  The archaic forms that appear in the paper — ``IS IN``,
``IS NOT IN``, ``!>``, ``!<`` and ``=ANY`` — are accepted and normalized.
"""

from repro.sql.ast import (
    And,
    Between,
    BinaryArith,
    ColumnRef,
    Comparison,
    Exists,
    FuncCall,
    InList,
    InSubquery,
    IsNull,
    Literal,
    Not,
    Or,
    OrderItem,
    Parameter,
    Quantified,
    ScalarSubquery,
    Select,
    SelectItem,
    Star,
    TableRef,
    UnaryMinus,
)
from repro.sql.lexer import Lexer, Token, TokenType, tokenize
from repro.sql.parser import Parser, parse, parse_expression
from repro.sql.printer import to_sql, to_sql_pretty
from repro.sql.statements import parse_statement

__all__ = [
    "And",
    "Between",
    "BinaryArith",
    "ColumnRef",
    "Comparison",
    "Exists",
    "FuncCall",
    "InList",
    "InSubquery",
    "IsNull",
    "Lexer",
    "Literal",
    "Not",
    "Or",
    "OrderItem",
    "Parameter",
    "Parser",
    "Quantified",
    "ScalarSubquery",
    "Select",
    "SelectItem",
    "Star",
    "TableRef",
    "Token",
    "TokenType",
    "UnaryMinus",
    "parse",
    "parse_expression",
    "parse_statement",
    "to_sql",
    "to_sql_pretty",
    "tokenize",
]
