"""Tokenizer for the paper's SQL dialect.

The lexer is a single-pass scanner producing a list of :class:`Token`
objects.  Keywords are recognized case-insensitively and unquoted
identifiers are folded to upper case (standard SQL behaviour, and the
convention the paper's examples follow: ``PARTS``, ``SUPPLY``, ``QOH``).

The dialect includes the paper's archaic comparison operators ``!>``
(not greater, i.e. ``<=``) and ``!<`` (not less, i.e. ``>=``), plus
``!=`` as a synonym for ``<>``.  The lexer emits them verbatim; the
parser normalizes them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import LexError


class TokenType(enum.Enum):
    """Lexical categories produced by the tokenizer."""

    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    PARAM = "param"
    EOF = "eof"


#: Reserved words of the dialect.  Aggregate-function names are *not*
#: keywords — they lex as identifiers and the parser recognizes them by
#: the trailing parenthesis, which keeps column names like ``COUNT``
#: usable in principle.
KEYWORDS = frozenset(
    {
        "SELECT",
        "DISTINCT",
        "FROM",
        "WHERE",
        "GROUP",
        "ORDER",
        "BY",
        "HAVING",
        "AND",
        "OR",
        "NOT",
        "IN",
        "IS",
        "NULL",
        "EXISTS",
        "ANY",
        "ALL",
        "SOME",
        "BETWEEN",
        "AS",
        "ASC",
        "DESC",
    }
)

#: Multi-character operators, longest first so the scanner is greedy.
_MULTI_CHAR_OPERATORS = ("<=>", "<=", ">=", "<>", "!=", "!>", "!<", "=+", "+=")

#: Single-character operators.
_SINGLE_CHAR_OPERATORS = ("=", "<", ">", "+", "-", "*", "/")

#: Punctuation characters.
_PUNCT = ("(", ")", ",", ".", ";")


@dataclass(frozen=True)
class Token:
    """One lexical token.

    Attributes:
        type: the lexical category.
        value: the normalized text (keywords and identifiers upper-cased,
            strings with quotes stripped, numbers verbatim).
        position: character offset of the first character in the source.
    """

    type: TokenType
    value: str
    position: int

    def matches(self, type_: TokenType, value: str | None = None) -> bool:
        """Return True when this token has the given type (and value)."""
        if self.type is not type_:
            return False
        return value is None or self.value == value


class Lexer:
    """Scanner over a SQL source string."""

    def __init__(self, source: str) -> None:
        self._source = source
        self._pos = 0
        self._length = len(source)

    def tokens(self) -> list[Token]:
        """Scan the whole source and return the token list (with EOF)."""
        result: list[Token] = []
        while True:
            token = self._next_token()
            result.append(token)
            if token.type is TokenType.EOF:
                return result

    def _next_token(self) -> Token:
        self._skip_whitespace_and_comments()
        if self._pos >= self._length:
            return Token(TokenType.EOF, "", self._pos)

        start = self._pos
        ch = self._source[start]

        if ch.isalpha() or ch == "_":
            return self._scan_word(start)
        if ch.isdigit():
            return self._scan_number(start)
        if ch == "'":
            return self._scan_string(start)
        if ch == "?":
            # Positional bind-parameter marker; value is empty, the
            # parser assigns slots in parse order.
            self._pos = start + 1
            return Token(TokenType.PARAM, "", start)
        if ch == ":":
            return self._scan_named_param(start)

        for op in _MULTI_CHAR_OPERATORS:
            if self._source.startswith(op, start):
                self._pos = start + len(op)
                return Token(TokenType.OPERATOR, op, start)
        if ch in _SINGLE_CHAR_OPERATORS:
            self._pos = start + 1
            return Token(TokenType.OPERATOR, ch, start)
        if ch in _PUNCT:
            self._pos = start + 1
            return Token(TokenType.PUNCT, ch, start)

        raise LexError(f"unexpected character {ch!r}", start)

    def _skip_whitespace_and_comments(self) -> None:
        while self._pos < self._length:
            ch = self._source[self._pos]
            if ch.isspace():
                self._pos += 1
            elif self._source.startswith("--", self._pos):
                newline = self._source.find("\n", self._pos)
                self._pos = self._length if newline < 0 else newline + 1
            else:
                return

    def _scan_word(self, start: int) -> Token:
        end = start
        while end < self._length and (
            self._source[end].isalnum() or self._source[end] == "_"
        ):
            end += 1
        self._pos = end
        word = self._source[start:end].upper()
        if word in KEYWORDS:
            return Token(TokenType.KEYWORD, word, start)
        return Token(TokenType.IDENT, word, start)

    def _scan_number(self, start: int) -> Token:
        end = start
        seen_dot = False
        while end < self._length:
            ch = self._source[end]
            if ch.isdigit():
                end += 1
            elif ch == "." and not seen_dot:
                # A dot is part of the number only when a digit follows;
                # otherwise it is qualification punctuation (``R1.C1``).
                if end + 1 < self._length and self._source[end + 1].isdigit():
                    seen_dot = True
                    end += 1
                else:
                    break
            else:
                break
        self._pos = end
        return Token(TokenType.NUMBER, self._source[start:end], start)

    def _scan_named_param(self, start: int) -> Token:
        # ``:name`` — a named bind-parameter marker (name folded to
        # upper case like any other identifier).
        end = start + 1
        while end < self._length and (
            self._source[end].isalnum() or self._source[end] == "_"
        ):
            end += 1
        if end == start + 1:
            raise LexError("':' must introduce a named parameter", start)
        self._pos = end
        return Token(TokenType.PARAM, self._source[start + 1:end].upper(), start)

    def _scan_string(self, start: int) -> Token:
        # Single-quoted string; '' is an escaped quote.
        chars: list[str] = []
        pos = start + 1
        while pos < self._length:
            ch = self._source[pos]
            if ch == "'":
                if pos + 1 < self._length and self._source[pos + 1] == "'":
                    chars.append("'")
                    pos += 2
                    continue
                self._pos = pos + 1
                return Token(TokenType.STRING, "".join(chars), start)
            chars.append(ch)
            pos += 1
        raise LexError("unterminated string literal", start)


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source`` and return the token list (with trailing EOF)."""
    return Lexer(source).tokens()
