"""Render AST nodes back to SQL text.

The printer produces canonical, re-parseable SQL: normalized operators,
upper-case keywords, explicit parentheses around subqueries, and
``TEMP1.PNUM =+ TEMP2.PNUM`` for the outer-join comparison of section
5.2.  ``parse(to_sql(q))`` round-trips to an equal AST (tested by a
Hypothesis property in the test suite).
"""

from __future__ import annotations

from repro.sql.ast import (
    And,
    Between,
    BinaryArith,
    ColumnRef,
    Comparison,
    Exists,
    Expr,
    FuncCall,
    InList,
    InSubquery,
    IsNull,
    Literal,
    Node,
    Not,
    Or,
    OrderItem,
    Parameter,
    Quantified,
    ScalarSubquery,
    Select,
    SelectItem,
    Star,
    TableRef,
    UnaryMinus,
)


def to_sql(node: Node) -> str:
    """Render any AST node as SQL text."""
    if isinstance(node, Select):
        return _select(node)
    return _expr(node)


def to_sql_pretty(node: Node, indent: int = 0) -> str:
    """Render a query block as indented, multi-line SQL.

    Clauses start on their own lines and nested query blocks are
    indented under the predicate that embeds them — the layout the
    paper's listings use.  The output re-parses to the same AST.
    """
    if not isinstance(node, Select):
        return _expr(node)
    pad = "    " * indent
    lines: list[str] = []

    select = "SELECT DISTINCT" if node.distinct else "SELECT"
    lines.append(
        f"{pad}{select} " + ", ".join(_select_item(item) for item in node.items)
    )
    lines.append(
        f"{pad}FROM " + ", ".join(_table_ref(ref) for ref in node.from_tables)
    )
    if node.where is not None:
        from repro.sql.ast import And

        # Split only the *immediate* operands: recursively flattening
        # (``conjuncts``) would erase parenthesized nested ANDs and the
        # output would no longer re-parse to the same AST.  A nested
        # And operand is rendered parenthesized by ``_boolean_operand``.
        parts = (
            list(node.where.operands)
            if isinstance(node.where, And)
            else [node.where]
        )
        rendered = [_pretty_predicate(part, indent) for part in parts]
        lines.append(f"{pad}WHERE " + f"\n{pad}  AND ".join(rendered))
    if node.group_by:
        lines.append(
            f"{pad}GROUP BY " + ", ".join(_expr(e) for e in node.group_by)
        )
    if node.having is not None:
        lines.append(f"{pad}HAVING {_expr(node.having)}")
    if node.order_by:
        lines.append(
            f"{pad}ORDER BY " + ", ".join(_order_item(i) for i in node.order_by)
        )
    return "\n".join(lines)


def _pretty_predicate(expr: Expr, indent: int) -> str:
    """One WHERE conjunct, with any embedded block broken out."""
    from repro.sql.ast import InSubquery, ScalarSubquery

    inner: Select | None = None
    prefix: str | None = None
    if isinstance(expr, InSubquery):
        inner = expr.query
        keyword = "NOT IN" if expr.negated else "IN"
        prefix = f"{_operand(expr.operand)} {keyword}"
    elif isinstance(expr, Comparison) and isinstance(expr.right, ScalarSubquery):
        inner = expr.right.query
        op = expr.op if expr.outer is None else f"{expr.op}+"
        prefix = f"{_operand(expr.left)} {op}"
    if inner is None or prefix is None:
        # A disjunction on the conjunct line must keep its parentheses,
        # or joining with AND would change precedence on re-parse.
        return _boolean_operand(expr)
    block = to_sql_pretty(inner, indent + 1)
    pad = "    " * indent
    return f"{prefix} (\n{block}\n{pad})"


def _select(block: Select) -> str:
    parts = ["SELECT"]
    if block.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(_select_item(item) for item in block.items))
    parts.append("FROM")
    parts.append(", ".join(_table_ref(ref) for ref in block.from_tables))
    if block.where is not None:
        parts.append("WHERE")
        parts.append(_expr(block.where))
    if block.group_by:
        parts.append("GROUP BY")
        parts.append(", ".join(_expr(expr) for expr in block.group_by))
    if block.having is not None:
        parts.append("HAVING")
        parts.append(_expr(block.having))
    if block.order_by:
        parts.append("ORDER BY")
        parts.append(", ".join(_order_item(item) for item in block.order_by))
    return " ".join(parts)


def _select_item(item: SelectItem) -> str:
    text = _expr(item.expr)
    if item.alias:
        return f"{text} AS {item.alias}"
    return text


def _table_ref(ref: TableRef) -> str:
    if ref.alias:
        return f"{ref.name} {ref.alias}"
    return ref.name


def _order_item(item: OrderItem) -> str:
    text = _expr(item.expr)
    if item.descending:
        return f"{text} DESC"
    return text


def _expr(expr: Expr) -> str:
    if isinstance(expr, ColumnRef):
        return expr.qualified()
    if isinstance(expr, Literal):
        return _literal(expr.value)
    if isinstance(expr, Star):
        return f"{expr.table}.*" if expr.table else "*"
    if isinstance(expr, Parameter):
        return f":{expr.name}" if expr.name else "?"
    if isinstance(expr, FuncCall):
        inner = _expr(expr.arg)
        if expr.distinct:
            inner = f"DISTINCT {inner}"
        return f"{expr.name}({inner})"
    if isinstance(expr, UnaryMinus):
        return f"-{_operand(expr.operand)}"
    if isinstance(expr, BinaryArith):
        return f"{_operand(expr.left)} {expr.op} {_operand(expr.right)}"
    if isinstance(expr, ScalarSubquery):
        return f"({_select(expr.query)})"
    if isinstance(expr, Comparison):
        op = expr.op
        if expr.outer is not None:
            op = f"{op}+"
        elif expr.null_safe:
            op = "<=>"
        return f"{_operand(expr.left)} {op} {_operand(expr.right)}"
    if isinstance(expr, IsNull):
        middle = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"{_operand(expr.operand)} {middle}"
    if isinstance(expr, InList):
        items = ", ".join(_expr(item) for item in expr.items)
        keyword = "NOT IN" if expr.negated else "IN"
        return f"{_operand(expr.operand)} {keyword} ({items})"
    if isinstance(expr, InSubquery):
        keyword = "NOT IN" if expr.negated else "IN"
        return f"{_operand(expr.operand)} {keyword} ({_select(expr.query)})"
    if isinstance(expr, Exists):
        keyword = "NOT EXISTS" if expr.negated else "EXISTS"
        return f"{keyword} ({_select(expr.query)})"
    if isinstance(expr, Quantified):
        return (
            f"{_operand(expr.operand)} {expr.op} {expr.quantifier} "
            f"({_select(expr.query)})"
        )
    if isinstance(expr, Between):
        keyword = "NOT BETWEEN" if expr.negated else "BETWEEN"
        return (
            f"{_operand(expr.operand)} {keyword} "
            f"{_operand(expr.low)} AND {_operand(expr.high)}"
        )
    if isinstance(expr, And):
        return " AND ".join(_boolean_operand(op) for op in expr.operands)
    if isinstance(expr, Or):
        return " OR ".join(_boolean_operand(op) for op in expr.operands)
    if isinstance(expr, Not):
        return f"NOT {_boolean_operand(expr.operand)}"
    raise TypeError(f"cannot print {expr!r}")


def _literal(value: object) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return str(value)


def _operand(expr: Expr) -> str:
    """Print a comparison/arithmetic operand, parenthesizing compounds."""
    text = _expr(expr)
    if isinstance(expr, (BinaryArith, And, Or, Not, Comparison)):
        return f"({text})"
    return text


def _boolean_operand(expr: Expr) -> str:
    """Print an AND/OR operand, parenthesizing nested boolean operators."""
    text = _expr(expr)
    if isinstance(expr, (And, Or)):
        return f"({text})"
    return text
