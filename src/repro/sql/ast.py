"""Typed abstract syntax tree for the paper's SQL dialect.

All nodes are frozen dataclasses.  Transformations (NEST-N-J, NEST-JA2,
NEST-G, ...) never mutate a tree in place; they build rewritten copies
with :func:`dataclasses.replace` or the helpers at the bottom of this
module.  Frozen nodes give structural equality for free, which the test
suite leans on heavily when comparing transformed queries against the
paper's expected rewrites.

Naming follows the paper: a :class:`Select` is a *query block*; a
nested predicate is a :class:`Comparison`/:class:`InSubquery`/... whose
right-hand side is an inner query block.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, replace

#: Comparison operators after normalization (``!=`` → ``<>``,
#: ``!>`` → ``<=``, ``!<`` → ``>=``).
COMPARISON_OPS = ("=", "<>", "<", "<=", ">", ">=")

#: Mapping from the paper's archaic operator spellings to normal forms.
NORMALIZED_OPS = {"!=": "<>", "!>": "<=", "!<": ">="}

#: Negation of each comparison operator, used by NOT-pushdown and by the
#: ANY/ALL rewrites of section 8.
NEGATED_OPS = {"=": "<>", "<>": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}

#: Mirror image of each operator (``a op b``  ≡  ``b mirror(op) a``).
MIRRORED_OPS = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}

#: Aggregate function names recognized by the dialect.
AGGREGATE_FUNCTIONS = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})


class Node:
    """Marker base class for all AST nodes."""

    __slots__ = ()


class Expr(Node):
    """Marker base class for scalar expressions and predicates."""

    __slots__ = ()


# ---------------------------------------------------------------------------
# Scalar expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A (possibly qualified) column reference such as ``SP.ORIGIN``.

    Attributes:
        table: the qualifying table name or alias, or None when the
            reference is unqualified and must be bound by context.
        column: the column name.
    """

    table: str | None
    column: str

    def qualified(self) -> str:
        """Return the display form, e.g. ``"SP.ORIGIN"`` or ``"QOH"``."""
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class Literal(Expr):
    """A constant: int, float, string, or None (the SQL NULL)."""

    value: object


@dataclass(frozen=True)
class Parameter(Expr):
    """A bind-parameter placeholder: ``?`` (positional) or ``:name``.

    Parameters carry no value at plan time; the serving layer binds a
    concrete literal per execution.  ``index`` is the zero-based slot in
    the statement's parameter vector (positional markers are numbered in
    parse order; every occurrence of the same ``:name`` shares one slot).

    Attributes:
        index: zero-based position in the bound parameter vector.
        name: the name for ``:name`` markers, or None for ``?``.
    """

    index: int
    name: str | None = None


@dataclass(frozen=True)
class Star(Expr):
    """The ``*`` in ``SELECT *`` or ``COUNT(*)`` (optionally qualified)."""

    table: str | None = None


@dataclass(frozen=True)
class FuncCall(Expr):
    """A function application, e.g. ``MAX(PNO)`` or ``COUNT(*)``.

    Only the five SQL aggregates are meaningful to the engine; other
    names parse but fail at bind time.

    Attributes:
        name: upper-case function name.
        arg: the argument expression (a :class:`Star` for ``COUNT(*)``).
        distinct: True for ``COUNT(DISTINCT c)`` and friends.
    """

    name: str
    arg: Expr
    distinct: bool = False

    @property
    def is_aggregate(self) -> bool:
        return self.name in AGGREGATE_FUNCTIONS


@dataclass(frozen=True)
class UnaryMinus(Expr):
    """Arithmetic negation ``-x``."""

    operand: Expr


@dataclass(frozen=True)
class BinaryArith(Expr):
    """Arithmetic expression with op in ``+ - * /``."""

    left: Expr
    op: str
    right: Expr


@dataclass(frozen=True)
class ScalarSubquery(Expr):
    """A parenthesized query block used as a scalar value.

    The inner block is expected to yield exactly one column and at most
    one row (zero rows evaluate to NULL, the behaviour the paper assumes
    in section 5.3: ``MAX({}) = NULL``).
    """

    query: "Select"


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Comparison(Expr):
    """A comparison predicate ``left op right``.

    Either side may be a :class:`ScalarSubquery`, which is how the
    paper's scalar nested predicates (``Ri.Ch op Q``) are represented.

    Attributes:
        outer: None for an ordinary comparison; ``"left"``, ``"right"``
            or ``"full"`` for the outer-join comparison of section 5.2
            (the paper writes it ``R.X =+ S.Y``).  Only meaningful when
            the comparison is used as a join predicate.
        null_safe: True for the null-safe equality ``a <=> b`` (SQL's
            IS NOT DISTINCT FROM): NULL <=> NULL is *true* and never
            unknown.  NEST-JA2 emits it for the final COUNT-case join so
            the zero-count groups preserved by the outer join are not
            dropped again when the outer join column itself is NULL.
    """

    left: Expr
    op: str
    right: Expr
    outer: str | None = None
    null_safe: bool = False

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise ValueError(f"invalid comparison operator {self.op!r}")
        if self.outer not in (None, "left", "right", "full"):
            raise ValueError(f"invalid outer-join marker {self.outer!r}")
        if self.null_safe and self.op != "=":
            raise ValueError("null_safe is only valid for the = operator")


@dataclass(frozen=True)
class IsNull(Expr):
    """``expr IS [NOT] NULL``."""

    operand: Expr
    negated: bool = False


@dataclass(frozen=True)
class InList(Expr):
    """``expr [NOT] IN (v1, v2, ...)`` with literal values."""

    operand: Expr
    items: tuple[Expr, ...]
    negated: bool = False


@dataclass(frozen=True)
class InSubquery(Expr):
    """``expr [NOT] IN (SELECT ...)`` — the paper also writes ``IS IN``."""

    operand: Expr
    query: "Select"
    negated: bool = False


@dataclass(frozen=True)
class Exists(Expr):
    """``[NOT] EXISTS (SELECT ...)`` (section 8.1)."""

    query: "Select"
    negated: bool = False


@dataclass(frozen=True)
class Quantified(Expr):
    """``expr op ANY|ALL (SELECT ...)`` (section 8.2; SOME ≡ ANY)."""

    operand: Expr
    op: str
    quantifier: str
    query: "Select"

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise ValueError(f"invalid comparison operator {self.op!r}")
        if self.quantifier not in ("ANY", "ALL"):
            raise ValueError(f"invalid quantifier {self.quantifier!r}")


@dataclass(frozen=True)
class Between(Expr):
    """``expr [NOT] BETWEEN low AND high``."""

    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass(frozen=True)
class And(Expr):
    """N-ary conjunction."""

    operands: tuple[Expr, ...]


@dataclass(frozen=True)
class Or(Expr):
    """N-ary disjunction."""

    operands: tuple[Expr, ...]


@dataclass(frozen=True)
class Not(Expr):
    """Logical negation."""

    operand: Expr


# ---------------------------------------------------------------------------
# Query blocks
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TableRef(Node):
    """An entry in a FROM clause.

    Attributes:
        name: the catalog table name.
        alias: optional alias; when present, column references use it.
    """

    name: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        """The name columns are qualified with inside the block."""
        return self.alias or self.name


@dataclass(frozen=True)
class SelectItem(Node):
    """One item of a SELECT clause, with an optional output alias."""

    expr: Expr
    alias: str | None = None


@dataclass(frozen=True)
class OrderItem(Node):
    """One item of an ORDER BY clause."""

    expr: Expr
    descending: bool = False


@dataclass(frozen=True)
class Select(Node):
    """A SQL query block (the paper's unit of nesting).

    Attributes:
        items: the SELECT clause.
        from_tables: the FROM clause.
        where: the WHERE predicate, or None.
        group_by: GROUP BY expressions.
        having: HAVING predicate, or None.
        order_by: ORDER BY items.
        distinct: True for ``SELECT DISTINCT``.
    """

    items: tuple[SelectItem, ...]
    from_tables: tuple[TableRef, ...]
    where: Expr | None = None
    group_by: tuple[Expr, ...] = ()
    having: Expr | None = None
    order_by: tuple[OrderItem, ...] = ()
    distinct: bool = False

    @property
    def table_bindings(self) -> tuple[str, ...]:
        """Names that qualify columns of this block's own FROM clause."""
        return tuple(ref.binding for ref in self.from_tables)

    def has_aggregate_select(self) -> bool:
        """True when any SELECT item contains an aggregate function call.

        This is the test Kim's classification applies to the inner
        query block to separate type-A/JA from type-N/J nesting.
        """
        return any(contains_aggregate(item.expr) for item in self.items)


# ---------------------------------------------------------------------------
# Tree utilities
# ---------------------------------------------------------------------------


def children(node: Node) -> Iterator[Node]:
    """Yield the direct AST children of ``node`` (excluding None)."""
    if isinstance(node, (ColumnRef, Literal, Star, Parameter)):
        return
    elif isinstance(node, FuncCall):
        yield node.arg
    elif isinstance(node, UnaryMinus):
        yield node.operand
    elif isinstance(node, BinaryArith):
        yield node.left
        yield node.right
    elif isinstance(node, ScalarSubquery):
        yield node.query
    elif isinstance(node, Comparison):
        yield node.left
        yield node.right
    elif isinstance(node, IsNull):
        yield node.operand
    elif isinstance(node, InList):
        yield node.operand
        yield from node.items
    elif isinstance(node, InSubquery):
        yield node.operand
        yield node.query
    elif isinstance(node, Exists):
        yield node.query
    elif isinstance(node, Quantified):
        yield node.operand
        yield node.query
    elif isinstance(node, Between):
        yield node.operand
        yield node.low
        yield node.high
    elif isinstance(node, (And, Or)):
        yield from node.operands
    elif isinstance(node, Not):
        yield node.operand
    elif isinstance(node, SelectItem):
        yield node.expr
    elif isinstance(node, OrderItem):
        yield node.expr
    elif isinstance(node, TableRef):
        return
    elif isinstance(node, Select):
        yield from node.items
        yield from node.from_tables
        if node.where is not None:
            yield node.where
        yield from node.group_by
        if node.having is not None:
            yield node.having
        yield from node.order_by
    else:
        raise TypeError(f"not an AST node: {node!r}")


def walk(node: Node, *, into_subqueries: bool = True) -> Iterator[Node]:
    """Yield ``node`` and all its descendants in preorder.

    Args:
        into_subqueries: when False, do not descend into nested
            :class:`Select` blocks (their node is still yielded).  The
            classification code uses this to examine one block at a time.
    """
    yield node
    for child in children(node):
        if not into_subqueries and isinstance(child, Select):
            yield child
            continue
        yield from walk(child, into_subqueries=into_subqueries)


def column_refs(node: Node, *, into_subqueries: bool = False) -> Iterator[ColumnRef]:
    """Yield every :class:`ColumnRef` under ``node``.

    By default nested query blocks are *not* entered, so the result is
    the set of columns referenced by the current block itself.
    """
    for item in walk(node, into_subqueries=into_subqueries):
        if isinstance(item, ColumnRef):
            yield item


def contains_aggregate(expr: Expr) -> bool:
    """True when ``expr`` contains an aggregate call outside subqueries."""
    return any(
        isinstance(node, FuncCall) and node.is_aggregate
        for node in walk(expr, into_subqueries=False)
    )


def subquery_nodes(node: Node) -> Iterator[Expr]:
    """Yield the predicate nodes of ``node`` that embed a query block.

    Only the current block's own predicates are examined; blocks nested
    inside those subqueries are not entered.
    """
    for item in walk(node, into_subqueries=False):
        if isinstance(item, (ScalarSubquery, InSubquery, Exists, Quantified)):
            yield item


def conjuncts(predicate: Expr | None) -> list[Expr]:
    """Flatten a predicate into its top-level AND-ed conjuncts.

    ``None`` (no WHERE clause) flattens to the empty list.
    """
    if predicate is None:
        return []
    if isinstance(predicate, And):
        result: list[Expr] = []
        for operand in predicate.operands:
            result.extend(conjuncts(operand))
        return result
    return [predicate]


def make_and(predicates: Iterable[Expr | None]) -> Expr | None:
    """AND together predicates, flattening and dropping Nones.

    Returns None for an empty input, the single predicate for a
    singleton, and a flattened :class:`And` otherwise.
    """
    flat: list[Expr] = []
    for predicate in predicates:
        if predicate is not None:
            flat.extend(conjuncts(predicate))
    if not flat:
        return None
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def replace_where(block: Select, predicate: Expr | None) -> Select:
    """Return ``block`` with its WHERE clause replaced."""
    return replace(block, where=predicate)


def fresh_name_generator(prefix: str = "TEMP") -> Iterator[str]:
    """Yield an endless stream of distinct temp-table names."""
    for index in itertools.count(1):
        yield f"{prefix}{index}"
