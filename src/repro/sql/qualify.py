"""Qualification pass: make every column reference table-qualified.

NEST-N-J merges FROM clauses, so a column that was unambiguous inside
its own block (``SELECT SNO FROM S``) can become ambiguous in the
merged block (both S and SP have SNO).  Qualifying every reference
*before* transformation — each against its own block's tables first,
then the enclosing blocks', innermost first — makes all later AST
surgery safe.
"""

from __future__ import annotations

from dataclasses import replace

from repro.errors import BindError
from repro.sql.analysis import ColumnResolver
from repro.sql.ast import (
    And,
    Between,
    BinaryArith,
    ColumnRef,
    Comparison,
    Exists,
    Expr,
    FuncCall,
    InList,
    InSubquery,
    IsNull,
    Literal,
    Not,
    Or,
    OrderItem,
    Parameter,
    Quantified,
    ScalarSubquery,
    Select,
    SelectItem,
    Star,
    UnaryMinus,
)


from collections.abc import Callable

#: Enumerates a binding's columns; enables ``SELECT *`` expansion.
ColumnLister = Callable[[str], list[str] | None]


def qualify(
    select: Select,
    has_column: ColumnResolver,
    enclosing: tuple[tuple[str, ...], ...] = (),
    list_columns: ColumnLister | None = None,
) -> Select:
    """Return ``select`` with every column reference qualified.

    Args:
        select: the query block (descends into nested blocks).
        has_column: schema resolver for table bindings.
        enclosing: binding tuples of enclosing blocks, outermost first.
        list_columns: optional column enumerator; when provided, a
            ``SELECT *`` (or ``T.*``) item is expanded into explicit
            qualified references — which lets the transformation
            pipeline handle star queries.
    """
    local = select.table_bindings
    scopes = enclosing + (local,)

    def fix(expr: Expr) -> Expr:
        return _qualify_expr(expr, scopes, has_column, list_columns)

    items: list[SelectItem] = []
    for item in select.items:
        if isinstance(item.expr, Star) and list_columns is not None:
            items.extend(_expand_star(item.expr, local, list_columns))
        else:
            items.append(SelectItem(fix(item.expr), item.alias))

    return replace(
        select,
        items=tuple(items),
        where=fix(select.where) if select.where is not None else None,
        group_by=tuple(fix(expr) for expr in select.group_by),
        having=fix(select.having) if select.having is not None else None,
        order_by=tuple(
            OrderItem(fix(item.expr), item.descending) for item in select.order_by
        ),
    )


def _expand_star(
    star: Star, local: tuple[str, ...], list_columns: ColumnLister
) -> list[SelectItem]:
    bindings = local if star.table is None else (star.table,)
    expanded: list[SelectItem] = []
    for binding in bindings:
        columns = list_columns(binding)
        if columns is None:
            raise BindError(f"cannot expand {binding}.* (unknown binding)")
        expanded.extend(
            SelectItem(ColumnRef(binding, column)) for column in columns
        )
    return expanded


def _qualify_ref(
    ref: ColumnRef,
    scopes: tuple[tuple[str, ...], ...],
    has_column: ColumnResolver,
) -> ColumnRef:
    if ref.table is not None:
        return ref
    # Innermost scope first.
    for scope in reversed(scopes):
        owners = [b for b in scope if has_column(b, ref.column)]
        if len(owners) == 1:
            return ColumnRef(owners[0], ref.column)
        if len(owners) > 1:
            raise BindError(
                f"ambiguous column {ref.column!r} (candidates: {owners})"
            )
    raise BindError(f"cannot resolve column {ref.column!r}")


def _qualify_expr(
    expr: Expr,
    scopes: tuple[tuple[str, ...], ...],
    has_column: ColumnResolver,
    list_columns: ColumnLister | None = None,
) -> Expr:
    def fix(e: Expr) -> Expr:
        return _qualify_expr(e, scopes, has_column, list_columns)

    def fix_block(query: Select) -> Select:
        return qualify(query, has_column, scopes, list_columns)

    if isinstance(expr, ColumnRef):
        return _qualify_ref(expr, scopes, has_column)
    if isinstance(expr, (Literal, Star, Parameter)):
        return expr
    if isinstance(expr, FuncCall):
        if isinstance(expr.arg, Star):
            return expr
        return FuncCall(expr.name, fix(expr.arg), expr.distinct)
    if isinstance(expr, UnaryMinus):
        return UnaryMinus(fix(expr.operand))
    if isinstance(expr, BinaryArith):
        return BinaryArith(fix(expr.left), expr.op, fix(expr.right))
    if isinstance(expr, ScalarSubquery):
        return ScalarSubquery(fix_block(expr.query))
    if isinstance(expr, Comparison):
        return Comparison(
            fix(expr.left), expr.op, fix(expr.right), expr.outer, expr.null_safe
        )
    if isinstance(expr, IsNull):
        return IsNull(fix(expr.operand), expr.negated)
    if isinstance(expr, InList):
        return InList(
            fix(expr.operand), tuple(fix(i) for i in expr.items), expr.negated
        )
    if isinstance(expr, InSubquery):
        return InSubquery(fix(expr.operand), fix_block(expr.query), expr.negated)
    if isinstance(expr, Exists):
        return Exists(fix_block(expr.query), expr.negated)
    if isinstance(expr, Quantified):
        return Quantified(
            fix(expr.operand), expr.op, expr.quantifier, fix_block(expr.query)
        )
    if isinstance(expr, Between):
        return Between(
            fix(expr.operand), fix(expr.low), fix(expr.high), expr.negated
        )
    if isinstance(expr, And):
        return And(tuple(fix(op) for op in expr.operands))
    if isinstance(expr, Or):
        return Or(tuple(fix(op) for op in expr.operands))
    if isinstance(expr, Not):
        return Not(fix(expr.operand))
    raise TypeError(f"cannot qualify {expr!r}")
