"""Recursive-descent parser for the paper's SQL dialect.

Grammar (roughly, in precedence order)::

    select      := SELECT [DISTINCT] items FROM tables [WHERE pred]
                   [GROUP BY exprs] [HAVING pred] [ORDER BY order_items]
    pred        := or_expr
    or_expr     := and_expr (OR and_expr)*
    and_expr    := not_expr (AND not_expr)*
    not_expr    := NOT not_expr | predicate
    predicate   := EXISTS '(' select ')'
                 | addition (comparison | in | between | is-null)?
    comparison  := op (ANY|ALL|SOME)? (subquery | addition)
    in          := [IS] [NOT] IN '(' (select | literal-list) ')'
    addition    := multiplication (('+'|'-') multiplication)*
    multiplication := unary (('*'|'/') unary)*
    unary       := '-' unary | primary
    primary     := literal | funcall | column | '(' select ')' | '(' pred ')'

The paper's archaic spellings are normalized while parsing:

* ``IS IN`` / ``IS NOT IN`` → ``IN`` / ``NOT IN``;
* ``!=`` → ``<>``, ``!>`` → ``<=``, ``!<`` → ``>=``;
* ``= ANY`` → ``IN`` and ``<> ALL`` → ``NOT IN`` (section 8.2's
  "more simply" rules);
* ``SOME`` → ``ANY``;
* ``=+`` (the section 5.2 outer-join comparison) → an equality
  comparison with ``outer="left"`` (the left operand's relation is
  preserved, which is how algorithm NEST-JA2 uses it).
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.sql.ast import (
    AGGREGATE_FUNCTIONS,
    COMPARISON_OPS,
    NORMALIZED_OPS,
    And,
    Between,
    BinaryArith,
    ColumnRef,
    Comparison,
    Exists,
    Expr,
    FuncCall,
    InList,
    InSubquery,
    IsNull,
    Literal,
    Not,
    Or,
    OrderItem,
    Parameter,
    Quantified,
    ScalarSubquery,
    Select,
    SelectItem,
    Star,
    TableRef,
    UnaryMinus,
)
from repro.sql.lexer import Token, TokenType, tokenize


class Parser:
    """Parses one SQL statement from a token stream."""

    def __init__(self, source: str) -> None:
        self._tokens = tokenize(source)
        self._index = 0
        # Bind-parameter bookkeeping: positional ``?`` markers take the
        # next free slot in parse order; every occurrence of the same
        # ``:name`` shares one slot.
        self._param_count = 0
        self._named_params: dict[str, int] = {}

    # -- token-stream helpers ------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _peek(self, offset: int = 1) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._current
        if token.type is not TokenType.EOF:
            self._index += 1
        return token

    def _accept(self, type_: TokenType, value: str | None = None) -> Token | None:
        if self._current.matches(type_, value):
            return self._advance()
        return None

    def _expect(self, type_: TokenType, value: str | None = None) -> Token:
        token = self._accept(type_, value)
        if token is None:
            wanted = value or type_.value
            raise ParseError(
                f"expected {wanted}, found {self._current.value!r}",
                self._current.position,
            )
        return token

    def _accept_keyword(self, word: str) -> bool:
        return self._accept(TokenType.KEYWORD, word) is not None

    # -- entry points --------------------------------------------------------

    def parse_select(self) -> Select:
        """Parse a full SELECT statement (with optional trailing ``;``)."""
        select = self._select_block()
        self._accept(TokenType.PUNCT, ";")
        self._expect(TokenType.EOF)
        return select

    def parse_standalone_expression(self) -> Expr:
        """Parse a bare predicate/expression (used by tests and tools)."""
        expr = self._or_expr()
        self._expect(TokenType.EOF)
        return expr

    # -- query blocks --------------------------------------------------------

    def _select_block(self) -> Select:
        self._expect(TokenType.KEYWORD, "SELECT")
        distinct = self._accept_keyword("DISTINCT")
        items = self._select_items()
        self._expect(TokenType.KEYWORD, "FROM")
        from_tables = self._table_refs()

        where = None
        if self._accept_keyword("WHERE"):
            where = self._or_expr()

        group_by: tuple[Expr, ...] = ()
        if self._current.matches(TokenType.KEYWORD, "GROUP"):
            self._advance()
            self._expect(TokenType.KEYWORD, "BY")
            group_by = tuple(self._expression_list())

        having = None
        if self._accept_keyword("HAVING"):
            having = self._or_expr()

        order_by: tuple[OrderItem, ...] = ()
        if self._current.matches(TokenType.KEYWORD, "ORDER"):
            self._advance()
            self._expect(TokenType.KEYWORD, "BY")
            order_by = tuple(self._order_items())

        return Select(
            items=items,
            from_tables=from_tables,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            distinct=distinct,
        )

    def _select_items(self) -> tuple[SelectItem, ...]:
        items = [self._select_item()]
        while self._accept(TokenType.PUNCT, ","):
            items.append(self._select_item())
        return tuple(items)

    def _select_item(self) -> SelectItem:
        if self._current.matches(TokenType.OPERATOR, "*"):
            self._advance()
            return SelectItem(Star())
        # Qualified star: IDENT '.' '*'
        if (
            self._current.type is TokenType.IDENT
            and self._peek().matches(TokenType.PUNCT, ".")
            and self._peek(2).matches(TokenType.OPERATOR, "*")
        ):
            table = self._advance().value
            self._advance()
            self._advance()
            return SelectItem(Star(table))
        expr = self._addition()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect(TokenType.IDENT).value
        elif self._current.type is TokenType.IDENT:
            alias = self._advance().value
        return SelectItem(expr, alias)

    def _table_refs(self) -> tuple[TableRef, ...]:
        refs = [self._table_ref()]
        while self._accept(TokenType.PUNCT, ","):
            refs.append(self._table_ref())
        return tuple(refs)

    def _table_ref(self) -> TableRef:
        name = self._expect(TokenType.IDENT).value
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect(TokenType.IDENT).value
        elif self._current.type is TokenType.IDENT:
            alias = self._advance().value
        return TableRef(name, alias)

    def _order_items(self) -> list[OrderItem]:
        items = [self._order_item()]
        while self._accept(TokenType.PUNCT, ","):
            items.append(self._order_item())
        return items

    def _order_item(self) -> OrderItem:
        expr = self._addition()
        descending = False
        if self._accept_keyword("DESC"):
            descending = True
        else:
            self._accept_keyword("ASC")
        return OrderItem(expr, descending)

    def _expression_list(self) -> list[Expr]:
        exprs = [self._addition()]
        while self._accept(TokenType.PUNCT, ","):
            exprs.append(self._addition())
        return exprs

    # -- predicates ----------------------------------------------------------

    def _or_expr(self) -> Expr:
        operands = [self._and_expr()]
        while self._accept_keyword("OR"):
            operands.append(self._and_expr())
        if len(operands) == 1:
            return operands[0]
        return Or(tuple(operands))

    def _and_expr(self) -> Expr:
        operands = [self._not_expr()]
        while self._accept_keyword("AND"):
            operands.append(self._not_expr())
        if len(operands) == 1:
            return operands[0]
        return And(tuple(operands))

    def _not_expr(self) -> Expr:
        if self._accept_keyword("NOT"):
            return Not(self._not_expr())
        return self._predicate()

    def _predicate(self) -> Expr:
        if self._current.matches(TokenType.KEYWORD, "EXISTS"):
            self._advance()
            query = self._parenthesized_select()
            return Exists(query)

        left = self._addition()
        return self._predicate_tail(left)

    def _predicate_tail(self, left: Expr) -> Expr:
        # IS NULL / IS NOT NULL / the paper's "IS [NOT] IN".
        if self._current.matches(TokenType.KEYWORD, "IS"):
            saved = self._index
            self._advance()
            negated = self._accept_keyword("NOT")
            if self._accept_keyword("NULL"):
                return IsNull(left, negated)
            if self._current.matches(TokenType.KEYWORD, "IN"):
                return self._in_predicate(left, negated)
            # Not an IS-form we know; rewind and treat `left` as value.
            self._index = saved
            return left

        if self._current.matches(TokenType.KEYWORD, "IN"):
            return self._in_predicate(left, negated=False)

        # Infix NOT: ``x NOT IN (...)`` / ``x NOT BETWEEN a AND b``.
        if self._current.matches(TokenType.KEYWORD, "NOT"):
            if self._peek().matches(TokenType.KEYWORD, "IN"):
                self._advance()
                return self._in_predicate(left, negated=True)
            if self._peek().matches(TokenType.KEYWORD, "BETWEEN"):
                self._advance()
                self._advance()
                low = self._addition()
                self._expect(TokenType.KEYWORD, "AND")
                high = self._addition()
                return Between(left, low, high, negated=True)

        if self._current.matches(TokenType.KEYWORD, "BETWEEN"):
            self._advance()
            low = self._addition()
            self._expect(TokenType.KEYWORD, "AND")
            high = self._addition()
            return Between(left, low, high)

        if self._current.type is TokenType.OPERATOR:
            op_token = self._current.value
            if op_token == "=+":
                self._advance()
                right = self._addition()
                return Comparison(left, "=", right, outer="left")
            if op_token == "<=>":
                self._advance()
                right = self._addition()
                return Comparison(left, "=", right, null_safe=True)
            op = NORMALIZED_OPS.get(op_token, op_token)
            if op in COMPARISON_OPS:
                self._advance()
                return self._comparison_tail(left, op)

        return left

    def _comparison_tail(self, left: Expr, op: str) -> Expr:
        # Outer-join marker spelled with a space: ``= +`` is *not*
        # treated as outer join (it is unary plus, which we don't
        # support); only the fused ``=+`` token is.
        quantifier = None
        for word in ("ANY", "SOME", "ALL"):
            if self._current.matches(TokenType.KEYWORD, word):
                self._advance()
                quantifier = "ANY" if word == "SOME" else word
                break

        if quantifier is not None:
            query = self._parenthesized_select()
            # Section 8.2's direct simplifications.
            if op == "=" and quantifier == "ANY":
                return InSubquery(left, query, negated=False)
            if op == "<>" and quantifier == "ALL":
                return InSubquery(left, query, negated=True)
            return Quantified(left, op, quantifier, query)

        if self._is_select_ahead():
            query = self._parenthesized_select()
            return Comparison(left, op, ScalarSubquery(query))

        right = self._addition()
        return Comparison(left, op, right)

    def _in_predicate(self, left: Expr, negated: bool) -> Expr:
        self._expect(TokenType.KEYWORD, "IN")
        if not negated and self._accept_keyword("NOT"):
            # Tolerate "IN NOT" never; but accept "NOT IN" handled above.
            raise ParseError("misplaced NOT after IN", self._current.position)
        if self._is_select_ahead():
            query = self._parenthesized_select()
            return InSubquery(left, query, negated)
        self._expect(TokenType.PUNCT, "(")
        items = [self._addition()]
        while self._accept(TokenType.PUNCT, ","):
            items.append(self._addition())
        self._expect(TokenType.PUNCT, ")")
        return InList(left, tuple(items), negated)

    def _is_select_ahead(self) -> bool:
        return self._current.matches(TokenType.PUNCT, "(") and self._peek().matches(
            TokenType.KEYWORD, "SELECT"
        )

    def _parenthesized_select(self) -> Select:
        self._expect(TokenType.PUNCT, "(")
        query = self._select_block()
        self._expect(TokenType.PUNCT, ")")
        return query

    # -- scalar expressions --------------------------------------------------

    def _addition(self) -> Expr:
        left = self._multiplication()
        while self._current.type is TokenType.OPERATOR and self._current.value in (
            "+",
            "-",
        ):
            op = self._advance().value
            right = self._multiplication()
            left = BinaryArith(left, op, right)
        return left

    def _multiplication(self) -> Expr:
        left = self._unary()
        while self._current.type is TokenType.OPERATOR and self._current.value in (
            "*",
            "/",
        ):
            op = self._advance().value
            right = self._unary()
            left = BinaryArith(left, op, right)
        return left

    def _unary(self) -> Expr:
        if self._current.matches(TokenType.OPERATOR, "-"):
            self._advance()
            return UnaryMinus(self._unary())
        return self._primary()

    def _primary(self) -> Expr:
        token = self._current

        if token.type is TokenType.NUMBER:
            self._advance()
            if "." in token.value:
                return Literal(float(token.value))
            return Literal(int(token.value))

        if token.type is TokenType.STRING:
            self._advance()
            return Literal(token.value)

        if token.matches(TokenType.KEYWORD, "NULL"):
            self._advance()
            return Literal(None)

        if token.type is TokenType.PARAM:
            self._advance()
            if token.value:
                index = self._named_params.get(token.value)
                if index is None:
                    index = self._param_count
                    self._param_count += 1
                    self._named_params[token.value] = index
                return Parameter(index, token.value)
            index = self._param_count
            self._param_count += 1
            return Parameter(index)

        if token.matches(TokenType.PUNCT, "("):
            if self._is_select_ahead():
                return ScalarSubquery(self._parenthesized_select())
            self._advance()
            expr = self._or_expr()
            self._expect(TokenType.PUNCT, ")")
            return expr

        if token.type is TokenType.IDENT:
            return self._identifier_expr()

        raise ParseError(
            f"unexpected token {token.value!r}", token.position
        )

    def _identifier_expr(self) -> Expr:
        name = self._advance().value

        # Function call (aggregates and, syntactically, anything else).
        if self._current.matches(TokenType.PUNCT, "("):
            self._advance()
            distinct = self._accept_keyword("DISTINCT")
            if self._accept(TokenType.OPERATOR, "*"):
                arg: Expr = Star()
            else:
                arg = self._addition()
            self._expect(TokenType.PUNCT, ")")
            if name not in AGGREGATE_FUNCTIONS:
                raise ParseError(f"unknown function {name!r}")
            return FuncCall(name, arg, distinct)

        # Qualified column: IDENT '.' IDENT
        if self._current.matches(TokenType.PUNCT, "."):
            self._advance()
            column = self._expect(TokenType.IDENT).value
            return ColumnRef(name, column)

        return ColumnRef(None, name)


def parse(source: str) -> Select:
    """Parse a SELECT statement and return its AST."""
    return Parser(source).parse_select()


def parse_expression(source: str) -> Expr:
    """Parse a standalone predicate or scalar expression."""
    return Parser(source).parse_standalone_expression()
