"""DDL/DML statements beyond SELECT: CREATE TABLE, INSERT, DROP TABLE.

The paper only needs SELECT, but a usable library (and the interactive
shell, ``python -m repro``) wants to define and fill tables in SQL::

    CREATE TABLE PARTS (PNUM INT, QOH INT, PRIMARY KEY (PNUM));
    INSERT INTO PARTS VALUES (3, 6), (10, 1), (8, 0);
    DROP TABLE PARTS;

Statements are plain dataclasses; :func:`parse_statement` dispatches on
the leading keyword and returns a :class:`Select` for queries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParseError
from repro.sql.ast import Literal, Select, UnaryMinus
from repro.sql.lexer import TokenType
from repro.sql.parser import Parser

#: Column type names accepted by CREATE TABLE.
TYPE_NAMES = ("INT", "INTEGER", "FLOAT", "REAL", "TEXT", "STRING", "DATE")


@dataclass(frozen=True)
class CreateTable:
    """``CREATE TABLE name (col type, ..., [PRIMARY KEY (col, ...)])``."""

    name: str
    columns: tuple[tuple[str, str], ...]
    primary_key: tuple[str, ...] = ()


@dataclass(frozen=True)
class InsertValues:
    """``INSERT INTO name VALUES (v, ...), (v, ...) ...``."""

    table: str
    rows: tuple[tuple[object, ...], ...]


@dataclass(frozen=True)
class DropTable:
    """``DROP TABLE name``."""

    name: str


Statement = Select | CreateTable | InsertValues | DropTable


class StatementParser(Parser):
    """Extends the SELECT parser with DDL/DML statements."""

    def parse_statement(self) -> Statement:
        token = self._current
        if token.matches(TokenType.KEYWORD, "SELECT"):
            return self.parse_select()
        if token.type is TokenType.IDENT and token.value == "CREATE":
            return self._create_table()
        if token.type is TokenType.IDENT and token.value == "INSERT":
            return self._insert()
        if token.type is TokenType.IDENT and token.value == "DROP":
            return self._drop_table()
        raise ParseError(
            f"expected SELECT/CREATE/INSERT/DROP, found {token.value!r}",
            token.position,
        )

    # -- CREATE TABLE ------------------------------------------------------

    def _create_table(self) -> CreateTable:
        self._expect_ident("CREATE")
        self._expect_ident("TABLE")
        name = self._expect(TokenType.IDENT).value
        self._expect(TokenType.PUNCT, "(")

        columns: list[tuple[str, str]] = []
        primary_key: tuple[str, ...] = ()
        while True:
            if (
                self._current.type is TokenType.IDENT
                and self._current.value == "PRIMARY"
            ):
                self._advance()
                self._expect_ident("KEY")
                self._expect(TokenType.PUNCT, "(")
                keys = [self._expect(TokenType.IDENT).value]
                while self._accept(TokenType.PUNCT, ","):
                    keys.append(self._expect(TokenType.IDENT).value)
                self._expect(TokenType.PUNCT, ")")
                primary_key = tuple(keys)
            else:
                column = self._expect(TokenType.IDENT).value
                type_token = self._expect(TokenType.IDENT)
                if type_token.value not in TYPE_NAMES:
                    raise ParseError(
                        f"unknown column type {type_token.value!r}",
                        type_token.position,
                    )
                columns.append((column, type_token.value))
            if not self._accept(TokenType.PUNCT, ","):
                break
        self._expect(TokenType.PUNCT, ")")
        self._finish()
        if not columns:
            raise ParseError("CREATE TABLE needs at least one column")
        return CreateTable(name, tuple(columns), primary_key)

    # -- INSERT --------------------------------------------------------------

    def _insert(self) -> InsertValues:
        self._expect_ident("INSERT")
        self._expect_ident("INTO")
        table = self._expect(TokenType.IDENT).value
        self._expect_ident("VALUES")
        rows = [self._value_row()]
        while self._accept(TokenType.PUNCT, ","):
            rows.append(self._value_row())
        self._finish()
        return InsertValues(table, tuple(rows))

    def _value_row(self) -> tuple[object, ...]:
        self._expect(TokenType.PUNCT, "(")
        values = [self._literal_value()]
        while self._accept(TokenType.PUNCT, ","):
            values.append(self._literal_value())
        self._expect(TokenType.PUNCT, ")")
        return tuple(values)

    def _literal_value(self) -> object:
        expr = self._unary()
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, UnaryMinus) and isinstance(expr.operand, Literal):
            value = expr.operand.value
            if isinstance(value, (int, float)):
                return -value
        raise ParseError(
            "INSERT VALUES accepts literals only", self._current.position
        )

    # -- DROP ------------------------------------------------------------------

    def _drop_table(self) -> DropTable:
        self._expect_ident("DROP")
        self._expect_ident("TABLE")
        name = self._expect(TokenType.IDENT).value
        self._finish()
        return DropTable(name)

    # -- helpers -----------------------------------------------------------------

    def _expect_ident(self, word: str) -> None:
        token = self._current
        if token.type is TokenType.IDENT and token.value == word:
            self._advance()
            return
        raise ParseError(f"expected {word}, found {token.value!r}", token.position)

    def _finish(self) -> None:
        self._accept(TokenType.PUNCT, ";")
        self._expect(TokenType.EOF)


def parse_statement(source: str) -> Statement:
    """Parse one statement (SELECT, CREATE TABLE, INSERT, DROP TABLE)."""
    return StatementParser(source).parse_statement()
