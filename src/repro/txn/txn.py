"""Transactions: begin/commit/rollback over the WAL and snapshot manager.

Concurrency model — single writer, many snapshot readers:

* A transaction acquires the manager's **commit lock** at its first
  write and holds it until commit or rollback.  Writers are therefore
  serialized, which buys two structural guarantees: an in-flight
  transaction's rows are exactly the tail of each heap it wrote (so
  rollback is a tail trim, :meth:`HeapFile.rollback_to`), and WAL
  records of different transactions never interleave between a
  ``begin`` and its ``commit``.
* Readers never take the commit lock.  They pin an immutable snapshot
  (:class:`repro.txn.mvcc.Snapshot`) and scan under its row horizons;
  uncommitted rows sit past every published horizon, so isolation costs
  no read-path locking.

Commit ordering (the recovery contract)::

    1. WAL commit record + flush        <- durability point
    2. rebuild ISAM indexes             (only if a written table has any)
    3. snapshots.publish(...)           <- visibility point, one atomic swap
    4. bump data versions               (plan-cache memo flush)

A crash between 1 and 3 loses nothing: replay finds the commit record
and reapplies the inserts.  A crash before 1 loses the transaction
entirely — its records were never flushed — which is exactly rollback.

:func:`recover` rebuilds a :class:`~repro.api.Database` from a log:
replay applies schema records and the inserts of *committed*
transactions, in log order, through the normal code paths with logging
suppressed, then re-attaches the (torn-tail-truncated) log for new
writes.
"""

from __future__ import annotations

import os
from collections.abc import Iterable, Iterator
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any

from repro.errors import ReproError
from repro.storage.locks import make_lock
from repro.txn import monitors
from repro.txn.mvcc import TransactionSnapshot
from repro.txn.wal import WalError, WriteAheadLog, read_records

if TYPE_CHECKING:
    from repro.api import Database
    from repro.catalog.catalog import Catalog
    from repro.engine.nested_iteration import QueryResult


class TransactionError(ReproError):
    """Misuse of the transaction API (double commit, write after abort)."""


class Transaction:
    """One unit of atomic, isolated work.

    Usable as a context manager — commits on clean exit, rolls back on
    exception::

        with db.begin() as txn:
            txn.insert("PARTS", [(99, 5)])
            txn.query("SELECT COUNT(*) FROM PARTS")   # sees own insert
        # committed; other readers now see the row
    """

    def __init__(self, manager: "TransactionManager", database: "Database | None") -> None:
        self.manager = manager
        self.db = database
        self.txid = manager.next_txid()
        self.state = "active"
        # The commit point this transaction reads at (begin snapshot).
        self._base = manager.catalog.snapshots.current()
        #: table -> committed row count at first write (the undo point).
        self._pre_counts: dict[str, int] = {}
        self._write_order: list[str] = []
        self._holds_lock = False
        self._logged_begin = False

    # -- reads -----------------------------------------------------------

    def snapshot(self) -> TransactionSnapshot:
        """This transaction's view: begin snapshot + its own writes."""
        return TransactionSnapshot(self._base, set(self._pre_counts))

    def query(self, sql: str, method: str = "auto") -> "QueryResult":
        """Run a SELECT under this transaction's snapshot.

        Sees the state as of :meth:`begin <TransactionManager.begin>`
        plus this transaction's own uncommitted writes; concurrent
        commits by others stay invisible.
        """
        self._require_active()
        if self.db is None:
            raise TransactionError("transaction has no database attached")
        with self.manager.catalog.snapshots.pinned(self.snapshot()):
            return self.db.query(sql, method=method)

    # -- writes ----------------------------------------------------------

    def insert(self, table: str, rows: Iterable[tuple]) -> int:
        """Buffer rows into ``table``; visible to others only at commit."""
        self._require_active()
        catalog = self.manager.catalog
        name = table.upper()
        entry = catalog.get(name)
        tupled = [tuple(row) for row in rows]
        for row in tupled:
            entry.schema.validate_row(row)
        if not tupled:
            return 0
        self._acquire_write_lock()
        try:
            self._log_begin()
            if name not in self._pre_counts:
                self._pre_counts[name] = entry.heap.num_rows
                self._write_order.append(name)
            if not self.manager.suppressed:
                self.manager.wal.append(
                    "insert", self.txid, table=name, rows=[list(r) for r in tupled]
                )
        except WalError:
            self.rollback()
            raise
        for row in tupled:
            entry.heap.append(row)
        entry.heap.close_writes()
        return len(tupled)

    # -- lifecycle -------------------------------------------------------

    def commit(self) -> None:
        """Make the writes durable, then visible — in that order."""
        self._require_active()
        if not self._write_order:
            # Read-only transaction: nothing to log or publish.
            self.state = "committed"
            self.manager.note_commit(read_only=True)
            return
        catalog = self.manager.catalog
        horizons = {
            name: catalog.get(name).heap.num_rows for name in self._write_order
        }
        try:
            if not self.manager.suppressed:
                self.manager.wal.append("commit", self.txid, tables=horizons)
                self.manager.wal.flush()
        except WalError:
            # The commit never reached its durability point: the
            # transaction loses, exactly as a crash-then-replay would
            # conclude.
            self.rollback()
            raise
        # The commit record is durable: from here the transaction IS
        # committed (a crash-then-replay would reapply it), so whatever
        # the post-durability steps do, the transaction must end up
        # committed with the commit lock released.  Without the
        # try/finally, an index-rebuild or publish failure leaked the
        # commit lock and wedged every later writer (CC003 finding).
        try:
            # ISAM indexes are static structures rebuilt on write;
            # probes always see latest-committed (documented
            # limitation), so the rebuild happens under the exclusive
            # catalog lock.
            indexed = [
                name
                for name in self._write_order
                if any(key[0] == name for key in catalog.indexes)
            ]
            if indexed:
                with catalog.write_lock():
                    for (tbl, _col), index in catalog.indexes.items():
                        if tbl in indexed:
                            index.build()
            # TX002: durability before visibility — nothing may still
            # be staged when the snapshot swap makes the rows visible.
            if not self.manager.suppressed:
                monitors.check_flush_before_publish(
                    self.manager.wal.pending_records
                )
            # Visibility point: one atomic swap covers every written
            # table.
            catalog.snapshots.publish(horizons)
            for name in self._write_order:
                if not catalog.get(name).is_temp:
                    catalog.bump_version("insert", name)
        finally:
            self.state = "committed"
            self.manager.note_commit()
            self._release_write_lock()

    def rollback(self) -> None:
        """Undo every write: trim heap tails back to the pre-counts."""
        if self.state != "active":
            return
        catalog = self.manager.catalog
        for name in reversed(self._write_order):
            catalog.get(name).heap.rollback_to(self._pre_counts[name])
        if self._logged_begin and not self.manager.suppressed:
            try:
                self.manager.wal.append("abort", self.txid)
                self.manager.wal.flush()
            except WalError:
                # An abort record is advisory — replay ignores
                # uncommitted transactions either way.
                pass
        self.state = "aborted"
        self.manager.note_abort(wrote=bool(self._write_order))
        self._release_write_lock()

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        if exc_type is not None:
            self.rollback()
        elif self.state == "active":
            self.commit()

    # -- internals -------------------------------------------------------

    def _require_active(self) -> None:
        if self.state != "active":
            raise TransactionError(
                f"transaction {self.txid} is {self.state}, not active"
            )

    def _acquire_write_lock(self) -> None:
        if not self._holds_lock:
            self.manager.commit_lock.acquire()
            self._holds_lock = True

    def _release_write_lock(self) -> None:
        if self._holds_lock:
            self._holds_lock = False
            self.manager.commit_lock.release()

    def _log_begin(self) -> None:
        if not self._logged_begin:
            self._logged_begin = True
            if not self.manager.suppressed:
                self.manager.wal.append("begin", self.txid)


class TransactionManager:
    """Hands out transactions; owns the WAL, txid counter, and counters."""

    def __init__(self, catalog: "Catalog", wal: WriteAheadLog | None = None) -> None:
        self.catalog = catalog
        self.wal = wal if wal is not None else WriteAheadLog()
        #: Serializes writers (acquired at a transaction's first write).
        self.commit_lock = make_lock("txn.commit")
        self._txid_lock = make_lock("txn.txid")
        # Guards the outcome counters: read-only commits bump them
        # without holding the commit lock, so concurrent readers and a
        # writer can race on the increments (a CC004-style lost update).
        self._stats_lock = make_lock("txn.stats")
        self._next_txid = 1
        self.commits = 0
        self.aborts = 0
        self.read_only_commits = 0
        self._suppress = False

    @property
    def suppressed(self) -> bool:
        """True while recovery replays the log (no re-logging)."""
        return self._suppress

    def next_txid(self) -> int:
        with self._txid_lock:
            txid = self._next_txid
            self._next_txid += 1
            return txid

    def set_next_txid(self, txid: int) -> None:
        with self._txid_lock:
            self._next_txid = max(self._next_txid, txid)

    def begin(self, database: "Database | None" = None) -> Transaction:
        return Transaction(self, database)

    @contextmanager
    def replaying(self) -> Iterator[None]:
        """Suppress WAL logging while recovery drives the write paths."""
        self._suppress = True
        try:
            yield
        finally:
            self._suppress = False

    def log_schema(self, event: str, **payload: Any) -> None:
        """Log a DDL statement as its own committed mini-transaction.

        Schema records are self-committing: replay applies them
        unconditionally (they are flushed only after the operation
        succeeded locally), so no begin/commit framing is needed.
        """
        if self._suppress:
            return
        with self.commit_lock:
            self.wal.append(event, self.next_txid(), **payload)
            self.wal.flush()

    def note_commit(self, read_only: bool = False) -> None:
        with self._stats_lock:
            self.commits += 1
            if read_only:
                self.read_only_commits += 1

    def note_abort(self, wrote: bool = True) -> None:
        with self._stats_lock:
            self.aborts += 1

    def describe(self) -> str:
        snaps = self.catalog.snapshots
        return (
            f"txn: {self.commits} commit(s), {self.aborts} abort(s), "
            f"data v{snaps.data_version}, schema v{self.catalog.schema_version}, "
            f"{snaps.active_pins} pinned read(s)\n{self.wal.describe()}"
        )


def recover(wal_path: str | os.PathLike, **db_kwargs: Any) -> "Database":
    """Rebuild a :class:`~repro.api.Database` by replaying a WAL.

    Applies, in log order: every schema record, and the inserts of every
    transaction that reached its commit record.  Uncommitted tails (a
    crash mid-transaction) and aborted transactions are skipped — the
    recovered state is exactly the committed prefix.  The log file is
    torn-tail-truncated and re-attached, so the recovered database keeps
    journaling where the crashed one stopped.
    """
    from repro.api import Database

    db_kwargs.pop("wal_path", None)  # the log is re-attached below
    records, _valid = read_records(wal_path)
    committed = {r.txid for r in records if r.type == "commit"}
    db = Database(**db_kwargs)
    manager = db.txn
    max_txid = 0
    with manager.replaying():
        for record in records:
            max_txid = max(max_txid, record.txid)
            payload = record.payload
            if record.type == "create_table":
                db.create_table(
                    payload["table"],
                    [(name, ctype) for name, ctype in payload["columns"]],
                    primary_key=payload.get("primary_key", ()),
                    rows_per_page=payload.get("rows_per_page"),
                )
            elif record.type == "drop_table":
                db.drop_table(payload["table"])
            elif record.type == "create_index":
                db.create_index(payload["table"], payload["column"])
            elif record.type == "insert" and record.txid in committed:
                db.insert(
                    payload["table"], [tuple(row) for row in payload["rows"]]
                )
    wal = WriteAheadLog(wal_path)
    manager.wal = wal
    db.wal = wal
    manager.set_next_txid(max_txid + 1)
    return db
