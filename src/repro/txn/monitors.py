"""Always-on transaction invariant monitors (the TX rules).

Where the CC rules are *static* — they read the source — the TX rules
are cheap runtime assertions wired into the write path itself, checking
the contracts the recovery design depends on:

* **TX001** — WAL LSNs are strictly increasing per log.  LSN = byte
  offset, so a regression means staged records were reordered or the
  flushed counter went backwards; replay would truncate good records.
* **TX002** — durability before visibility: at the moment a commit
  publishes its snapshot, the WAL must have no staged-unflushed
  records.  Writers are serialized by the commit lock, so anything
  pending at publish time belongs to the committing transaction — and
  a crash right after the publish would lose a transaction that
  readers already observed.
* **TX003** — a ``publish()`` advances ``data_version`` by exactly one
  and never shrinks a horizon; ``register_table``/``forget_table``
  keep the version unchanged.  Horizons shrinking would un-commit rows
  under a pinned reader's feet.
* **TX004** — published snapshots are immutable: the horizon map of
  the current snapshot must be bit-identical (fingerprint) between the
  swap that installed it and the next swap.  Mutation in place would
  change what an already-pinned reader sees mid-query.

Violations raise :class:`TxnInvariantError`, a :class:`ReproError`
carrying a :class:`~repro.analysis.diagnostics.Diagnostic` with the
stable TX rule id — the same machinery the static analyses use, so CI
output looks identical across both layers.

This module is imported by :mod:`repro.txn.wal` and
:mod:`repro.txn.mvcc`; it must not import either (it sees their
objects duck-typed) to keep the dependency graph acyclic.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import TYPE_CHECKING

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.diagnostics import Diagnostic
    from repro.txn.mvcc import Snapshot


class TxnInvariantError(ReproError):
    """A transaction-layer invariant was violated at runtime."""

    def __init__(self, diagnostic: "Diagnostic") -> None:
        super().__init__(f"[{diagnostic.rule}] {diagnostic.message}")
        self.diagnostic = diagnostic


def _violation(rule: str, message: str, hint: str | None = None) -> TxnInvariantError:
    # Imported lazily: repro.analysis pulls in the catalog, which pulls
    # in repro.txn.mvcc — a module-level import here would be circular.
    from repro.analysis.diagnostics import Diagnostic

    return TxnInvariantError(
        Diagnostic(rule=rule, message=message, severity="error", hint=hint)
    )


def check_lsn_monotonic(last_lsn: int, lsn: int) -> None:
    """TX001: a freshly appended record's LSN must exceed the previous."""
    if lsn <= last_lsn:
        raise _violation(
            "TX001",
            f"WAL LSN regressed: appended lsn {lsn} after {last_lsn} "
            "(LSN = byte offset must be strictly increasing)",
            hint="staged records were reordered or _flushed moved backwards",
        )


def check_flush_before_publish(pending_records: int) -> None:
    """TX002: nothing may be staged-unflushed when a commit publishes."""
    if pending_records:
        raise _violation(
            "TX002",
            f"commit published its snapshot with {pending_records} WAL "
            "record(s) staged but not flushed — visibility preceded "
            "durability",
            hint="call wal.flush() (the durability point) before "
            "snapshots.publish() (the visibility point)",
        )


def check_publish(previous: "Snapshot", published: "Snapshot") -> None:
    """TX003: one commit advances the version by one, horizons only grow."""
    if published.data_version != previous.data_version + 1:
        raise _violation(
            "TX003",
            f"publish moved data_version {previous.data_version} -> "
            f"{published.data_version}; commits must advance it by "
            "exactly one",
        )
    before = previous.tables()
    after = published.tables()
    for name, horizon in before.items():
        if name in after and after[name] < horizon:
            raise _violation(
                "TX003",
                f"publish shrank the horizon of '{name}' from {horizon} "
                f"to {after[name]}; committed rows would disappear under "
                "pinned readers",
            )


def check_version_kept(previous: "Snapshot", swapped: "Snapshot") -> None:
    """TX003 (register/forget): the commit timestamp must not move."""
    if swapped.data_version != previous.data_version:
        raise _violation(
            "TX003",
            f"register/forget changed data_version "
            f"{previous.data_version} -> {swapped.data_version}; only "
            "publish() may advance the commit timestamp",
        )


def fingerprint_horizons(horizons: Mapping[str, int]) -> tuple[tuple[str, int], ...]:
    """A hashable, order-independent fingerprint of a horizon map."""
    return tuple(sorted(horizons.items()))


def check_snapshot_unchanged(
    expected: tuple[tuple[str, int], ...] | None,
    current: "Snapshot",
) -> None:
    """TX004: the installed snapshot must not have mutated since its swap."""
    if expected is None:
        return
    actual = fingerprint_horizons(current.tables())
    if actual != expected:
        raise _violation(
            "TX004",
            f"snapshot v{current.data_version} mutated in place since it "
            "was published (horizon map changed without a swap); pinned "
            "readers are seeing a moving state",
            hint="snapshots are immutable; build a new Snapshot and swap",
        )
