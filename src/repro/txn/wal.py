"""Write-ahead log: append-only, checksummed, torn-tail tolerant.

Record format (little-endian)::

    +----------+----------+------------------+
    | length:4 | crc32:4  | payload (JSON)   |
    +----------+----------+------------------+

The payload is one JSON object carrying ``type`` (begin / insert /
create_table / drop_table / commit / abort), ``txid``, and
record-specific fields (table name, row values, schema).  A record's
**LSN is its byte offset** in the log, so LSNs are monotone, sparse,
and double as truncation points.

Durability model.  ``append()`` only stages a record in the in-memory
pending buffer; ``flush()`` writes the pending bytes to the backing
store and (for file-backed logs) fsyncs — that is the explicit
durability point.  A crash between append and flush loses exactly the
pending suffix, which is how the tests simulate "the WAL writer died
at record boundary k": write a workload, reopen the file, and the
unflushed records are simply gone.  A crash *during* a flush leaves a
torn tail — a record whose header or body is incomplete, or whose CRC
does not match — which :func:`read_records` detects and truncates at
the last whole record.

The log is storage-agnostic: ``path=None`` gives an in-memory log
(byte-identical format, used by default so plain ``Database`` usage
writes no files), a path gives a real file opened for append.
"""

from __future__ import annotations

import json
import os
import pathlib
import struct
import zlib
from dataclasses import dataclass
from typing import Any

from repro.errors import ReproError
from repro.storage.locks import make_lock
from repro.txn import monitors

_HEADER = struct.Struct("<II")

#: Record types the replayer understands.
RECORD_TYPES = (
    "begin",
    "insert",
    "create_table",
    "drop_table",
    "create_index",
    "commit",
    "abort",
)


class WalError(ReproError):
    """A malformed log, or an I/O failure while writing it."""


class WalCrash(WalError):
    """Raised by an installed fault point — simulates the writer dying."""


@dataclass(frozen=True)
class WalRecord:
    """One decoded log record."""

    lsn: int
    type: str
    txid: int
    payload: dict[str, Any]

    def describe(self) -> str:
        extra = {
            k: v for k, v in self.payload.items() if k not in ("type", "txid")
        }
        return f"lsn={self.lsn} txid={self.txid} {self.type} {extra or ''}"


def _encode(payload: dict[str, Any]) -> bytes:
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode()
    return _HEADER.pack(len(body), zlib.crc32(body)) + body


def decode_records(data: bytes) -> tuple[list[WalRecord], int]:
    """Decode every whole record in ``data``; returns (records, valid_bytes).

    ``valid_bytes`` is the offset of the first torn or corrupt record
    (== ``len(data)`` for a clean log).  Everything from a truncated
    header, a short body, or a CRC mismatch onwards is discarded — the
    recovery contract is "replay the longest clean prefix".
    """
    records: list[WalRecord] = []
    offset = 0
    total = len(data)
    while offset + _HEADER.size <= total:
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        end = start + length
        if end > total:
            break  # torn body
        body = data[start:end]
        if zlib.crc32(body) != crc:
            break  # corrupt record (torn overwrite)
        try:
            payload = json.loads(body)
        except ValueError:
            break
        if (
            not isinstance(payload, dict)
            or payload.get("type") not in RECORD_TYPES
        ):
            break
        records.append(
            WalRecord(
                lsn=offset,
                type=payload["type"],
                txid=int(payload.get("txid", 0)),
                payload=payload,
            )
        )
        offset = end
    return records, offset


def read_records(path: str | os.PathLike) -> tuple[list[WalRecord], int]:
    """Decode a log file's clean prefix; returns (records, valid_bytes)."""
    data = pathlib.Path(path).read_bytes()
    return decode_records(data)


class WriteAheadLog:
    """An append-only record log with explicit flush durability points."""

    def __init__(self, path: str | os.PathLike | None = None) -> None:
        self.path = pathlib.Path(path) if path is not None else None
        self._lock = make_lock("wal")
        self._pending: list[bytes] = []
        self._crash_after: int | None = None
        self.flush_count = 0
        if self.path is not None and self.path.exists():
            # Reopening an existing log: truncate any torn tail so new
            # records append at a clean record boundary.
            records, valid = read_records(self.path)
            if valid != self.path.stat().st_size:
                with open(self.path, "r+b") as handle:
                    handle.truncate(valid)
            self._flushed = valid
            self._last_lsn = records[-1].lsn if records else -1
            self._memory = None
        elif self.path is not None:
            self.path.write_bytes(b"")
            self._flushed = 0
            self._last_lsn = -1
            self._memory = None
        else:
            self._memory = bytearray()
            self._flushed = 0
            self._last_lsn = -1
        self._last_durable_lsn = self._last_lsn

    # -- writing ---------------------------------------------------------

    def append(self, record_type: str, txid: int, **payload: Any) -> int:
        """Stage one record; returns its LSN.  Durable only after flush."""
        if record_type not in RECORD_TYPES:
            raise WalError(f"unknown WAL record type {record_type!r}")
        with self._lock:
            if self._crash_after is not None:
                if self._crash_after <= 0:
                    raise WalCrash(
                        f"injected crash before {record_type} record"
                    )
                self._crash_after -= 1
            body = dict(payload)
            body["type"] = record_type
            body["txid"] = txid
            encoded = _encode(body)
            lsn = self._flushed + sum(len(b) for b in self._pending)
            monitors.check_lsn_monotonic(self._last_lsn, lsn)
            self._pending.append(encoded)
            self._last_lsn = lsn
            return lsn

    def flush(self) -> None:
        """Durability point: persist every staged record, in order."""
        with self._lock:
            if not self._pending:
                return
            blob = b"".join(self._pending)
            if self._memory is not None:
                self._memory.extend(blob)
            else:
                with open(self.path, "ab") as handle:
                    handle.write(blob)
                    handle.flush()
                    os.fsync(handle.fileno())
            self._flushed += len(blob)
            self._pending.clear()
            self._last_durable_lsn = self._last_lsn
            self.flush_count += 1

    def discard_pending(self) -> int:
        """Drop staged-but-unflushed records (count returned).

        Used when a transaction aborts before ever reaching a
        durability point: its records need not survive, and dropping
        them keeps the log free of noise.
        """
        with self._lock:
            dropped = len(self._pending)
            self._pending.clear()
            # Rewind to the last *durable* record: the discarded suffix
            # never existed as far as replay is concerned, and the next
            # append legitimately reuses its byte offsets (TX001 checks
            # against this value).
            self._last_lsn = self._last_durable_lsn
            return dropped

    # -- fault injection -------------------------------------------------

    def install_crash(self, after_records: int) -> None:
        """Make the writer raise :class:`WalCrash` after N more appends.

        The crash fires *before* the (N+1)th record is staged, so the
        log's durable prefix ends at a record boundary — the scenario
        the recovery tests sweep exhaustively.
        """
        with self._lock:
            self._crash_after = after_records

    def clear_crash(self) -> None:
        with self._lock:
            self._crash_after = None

    # -- reading ---------------------------------------------------------

    def records(self) -> list[WalRecord]:
        """Decode the *durable* log (staged records are not included)."""
        with self._lock:
            if self._memory is not None:
                data = bytes(self._memory)
            else:
                data = self.path.read_bytes()
        return decode_records(data)[0]

    def snapshot_bytes(self) -> bytes:
        """The durable log bytes (for crash-simulation tests)."""
        with self._lock:
            if self._memory is not None:
                return bytes(self._memory)
            return self.path.read_bytes()

    # -- accounting ------------------------------------------------------

    @property
    def size(self) -> int:
        """Durable size in bytes."""
        with self._lock:
            return self._flushed

    @property
    def last_lsn(self) -> int:
        """LSN of the most recently appended record (-1 for empty)."""
        with self._lock:
            return self._last_lsn

    @property
    def pending_records(self) -> int:
        """Staged records not yet made durable."""
        with self._lock:
            return len(self._pending)

    def describe(self) -> str:
        return (
            f"wal: {self.size} byte(s) durable, last lsn {self.last_lsn}, "
            f"{self.pending_records} pending, {self.flush_count} flush(es)"
            + (f", file {self.path}" if self.path else ", in-memory")
        )
