"""MVCC snapshots: monotonic commit timestamps over row horizons.

Heap files are append-only, so the committed state of a base table at
any commit timestamp is fully described by *how many rows it had then*
— the "first N rows" horizon.  A :class:`Snapshot` is therefore an
immutable ``{table: row_count}`` map tagged with the commit timestamp
(``data_version``) that produced it; the per-table delta chain of a
general MVCC design degenerates to this one integer per table.

The :class:`SnapshotManager` is the single point of truth:

* every commit ``publish()``\\ es a new snapshot — one atomic swap
  covering all tables the transaction wrote, so no reader can observe
  a half-committed transaction;
* readers ``pinned()`` the current snapshot for the duration of a
  query (activating it in :mod:`repro.storage.visibility`, which the
  heap scans consult); pinning is reentrant — a pipeline stage that
  pins inside an already-pinned query reuses the outer snapshot, so
  one query never straddles two commit points;
* uncommitted rows live past every published horizon (writers append
  to the heap tail before committing), so in-flight writes are
  invisible to every reader without any locking on the read path.

:class:`TransactionSnapshot` overlays read-your-writes on a base
snapshot: the owning transaction's written tables become unrestricted
(its rows are the physical tail while it holds the commit lock), while
everything else stays at the begin snapshot.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from contextlib import contextmanager

from repro.storage import visibility
from repro.storage.locks import make_lock
from repro.txn import monitors


class Snapshot:
    """An immutable committed state: commit timestamp + row horizons."""

    __slots__ = ("data_version", "_horizons")

    def __init__(self, data_version: int, horizons: Mapping[str, int]) -> None:
        self.data_version = data_version
        self._horizons = dict(horizons)

    def limit_for(self, name: str) -> int | None:
        """Visible row count for table ``name``; None = untracked.

        Untracked names are temps or tables created after this
        snapshot (DDL excludes running readers via the catalog lock),
        both of which read unrestricted.
        """
        return self._horizons.get(name)

    def tables(self) -> dict[str, int]:
        """A copy of the horizon map (for diagnostics and tests)."""
        return dict(self._horizons)

    def __repr__(self) -> str:
        return (
            f"Snapshot(v{self.data_version}, "
            f"{len(self._horizons)} table(s))"
        )


class TransactionSnapshot:
    """Read-your-writes overlay for the transaction that owns it."""

    __slots__ = ("base", "_unrestricted")

    def __init__(self, base: Snapshot, unrestricted: set[str]) -> None:
        self.base = base
        self._unrestricted = set(unrestricted)

    @property
    def data_version(self) -> int:
        return self.base.data_version

    def limit_for(self, name: str) -> int | None:
        if name in self._unrestricted:
            # The owner's appends are the heap tail (writers are
            # serialized), so unrestricted = snapshot + own writes.
            return None
        return self.base.limit_for(name)


class SnapshotManager:
    """Publishes commit snapshots and tracks reader pins.

    All mutation happens under one small mutex; readers take the
    reference to the current (immutable) snapshot and never lock again.
    """

    def __init__(self) -> None:
        self._lock = make_lock("txn.snapshots")
        self._current = Snapshot(0, {})
        self._active_pins = 0
        # TX004: fingerprint of the current snapshot's horizon map,
        # taken at the swap that installed it; re-checked at the next
        # swap to prove no one mutated the "immutable" snapshot.
        self._installed_fp = monitors.fingerprint_horizons({})

    # -- state -----------------------------------------------------------

    @property
    def data_version(self) -> int:
        """The monotonic commit timestamp of the current snapshot."""
        return self._current.data_version

    @property
    def active_pins(self) -> int:
        """Number of currently pinned reads (diagnostics/shell)."""
        return self._active_pins

    def current(self) -> Snapshot:
        """The latest committed snapshot."""
        return self._current

    # -- publication -----------------------------------------------------

    def register_table(self, name: str, rows: int = 0) -> None:
        """Track a (newly created or loaded) table without a commit.

        Runs under the catalog's DDL lock; the snapshot is swapped at
        the *same* commit timestamp with the horizon added, so readers
        admitted afterwards see the table while already-pinned readers
        keep their (table-less, hence unrestricted-but-irrelevant) map.
        """
        with self._lock:
            monitors.check_snapshot_unchanged(self._installed_fp, self._current)
            horizons = self._current.tables()
            horizons[name] = rows
            swapped = Snapshot(self._current.data_version, horizons)
            monitors.check_version_kept(self._current, swapped)
            self._current = swapped
            self._installed_fp = monitors.fingerprint_horizons(horizons)

    def forget_table(self, name: str) -> None:
        """Stop tracking a dropped table."""
        with self._lock:
            monitors.check_snapshot_unchanged(self._installed_fp, self._current)
            horizons = self._current.tables()
            horizons.pop(name, None)
            swapped = Snapshot(self._current.data_version, horizons)
            monitors.check_version_kept(self._current, swapped)
            self._current = swapped
            self._installed_fp = monitors.fingerprint_horizons(horizons)

    def publish(self, updates: Mapping[str, int]) -> Snapshot:
        """Commit: advance the timestamp with new horizons, atomically.

        One swap covers every table in ``updates``, so a concurrent
        reader pins either the whole commit or none of it.
        """
        with self._lock:
            monitors.check_snapshot_unchanged(self._installed_fp, self._current)
            horizons = self._current.tables()
            horizons.update(updates)
            published = Snapshot(self._current.data_version + 1, horizons)
            monitors.check_publish(self._current, published)
            self._current = published
            self._installed_fp = monitors.fingerprint_horizons(horizons)
            return published

    # -- pinning ---------------------------------------------------------

    @contextmanager
    def pinned(
        self, snapshot: visibility.SnapshotLike | None = None
    ) -> Iterator[visibility.SnapshotLike]:
        """Pin a snapshot for the duration of the block.

        Without an explicit ``snapshot``, reuses the already-active one
        when the caller is nested inside a pinned region (one query =
        one commit point) and pins the current snapshot otherwise.  An
        explicit snapshot (a transaction's read-your-writes overlay)
        always activates, shadowing any outer pin.
        """
        if snapshot is None:
            active = visibility.active_snapshot()
            if active is not None:
                yield active
                return
            snapshot = self.current()
        token = visibility.activate(snapshot)
        with self._lock:
            self._active_pins += 1
        try:
            yield snapshot
        finally:
            with self._lock:
                self._active_pins -= 1
            visibility.deactivate(token)
