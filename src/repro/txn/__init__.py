"""Transactions: write-ahead logging + MVCC snapshot isolation.

The subsystem has three parts:

* :mod:`repro.txn.wal` — an append-only, checksummed write-ahead log
  with LSNs, explicit flush durability points, and torn-tail-tolerant
  replay reading;
* :mod:`repro.txn.mvcc` — the snapshot manager: monotonic commit
  timestamps and immutable per-table row horizons that readers pin so
  scans see one committed state while writers commit;
* :mod:`repro.txn.txn` — the transaction API
  (``Database.begin()/commit()/rollback()``, autocommit for plain
  inserts, WAL-logged undo on abort) and crash :func:`recovery
  <repro.txn.txn.recover>` by replaying committed log records.
"""

from repro.txn.mvcc import Snapshot, SnapshotManager, TransactionSnapshot
from repro.txn.txn import (
    Transaction,
    TransactionError,
    TransactionManager,
    recover,
)
from repro.txn.wal import (
    WalCrash,
    WalError,
    WalRecord,
    WriteAheadLog,
    read_records,
)

__all__ = [
    "Snapshot",
    "SnapshotManager",
    "Transaction",
    "TransactionError",
    "TransactionManager",
    "TransactionSnapshot",
    "WalCrash",
    "WalError",
    "WalRecord",
    "WriteAheadLog",
    "read_records",
    "recover",
]
