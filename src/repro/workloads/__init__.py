"""Workloads: the paper's exact example instances and synthetic generators."""

from repro.workloads.paper_data import (
    KIESSLING_Q2,
    QUERY_Q5,
    load_duplicates_instance,
    load_kiessling_instance,
    load_operator_bug_instance,
    load_supplier_parts,
)

__all__ = [
    "KIESSLING_Q2",
    "QUERY_Q5",
    "load_duplicates_instance",
    "load_kiessling_instance",
    "load_operator_bug_instance",
    "load_supplier_parts",
]
