"""The paper's example relations and queries, verbatim.

Three PARTS/SUPPLY instances appear in section 5, each crafted to
expose one bug in Kim's NEST-JA:

* :func:`load_kiessling_instance` — section 5.1 (Kiessling's COUNT bug);
* :func:`load_operator_bug_instance` — section 5.3 (non-equality join
  operator, query Q5);
* :func:`load_duplicates_instance` — section 5.4 (duplicates in the
  outer join column).

Dates are normalized to ISO strings (see DESIGN.md): the paper's
``1-1-80`` cutoff becomes ``'1980-01-01'`` and e.g. ``7-3-79``
becomes ``'1979-07-03'``.

The supplier/parts/shipments schema of the introduction (S, P, SP) is
provided with a small consistent instance for the worked examples and
the quickstart.
"""

from __future__ import annotations

from repro.catalog.catalog import Catalog
from repro.catalog.schema import ColumnType, schema
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager

# ---------------------------------------------------------------------------
# Schemas
# ---------------------------------------------------------------------------

PARTS_SCHEMA = schema("PARTS", "PNUM", "QOH", key=("PNUM",))
SUPPLY_SCHEMA = schema(
    "SUPPLY", "PNUM", "QUAN", ("SHIPDATE", ColumnType.DATE)
)

S_SCHEMA = schema(
    "S",
    ("SNO", ColumnType.TEXT),
    ("SNAME", ColumnType.TEXT),
    "STATUS",
    ("CITY", ColumnType.TEXT),
    key=("SNO",),
)
P_SCHEMA = schema(
    "P",
    ("PNO", ColumnType.TEXT),
    ("PNAME", ColumnType.TEXT),
    ("COLOR", ColumnType.TEXT),
    "WEIGHT",
    ("CITY", ColumnType.TEXT),
    key=("PNO",),
)
SP_SCHEMA = schema(
    "SP",
    ("SNO", ColumnType.TEXT),
    ("PNO", ColumnType.TEXT),
    "QTY",
    ("ORIGIN", ColumnType.TEXT),
    key=("SNO", "PNO"),
)

#: The cutoff date used by Kiessling's queries, in ISO form.
CUTOFF_1980 = "1980-01-01"

# ---------------------------------------------------------------------------
# Section 5.1 — the COUNT bug instance [KIE 84:2]
# ---------------------------------------------------------------------------

KIESSLING_PARTS = [(3, 6), (10, 1), (8, 0)]
KIESSLING_SUPPLY = [
    (3, 4, "1979-07-03"),
    (3, 2, "1978-10-01"),
    (10, 1, "1978-06-08"),
    (10, 2, "1981-08-10"),
    (8, 5, "1983-05-07"),
]

#: Kiessling's query Q2: "Find the part numbers of those parts whose
#: quantities on hand equal the number of shipments of those parts
#: before 1-1-80."  Nested-iteration result: {10, 8}.
KIESSLING_Q2 = f"""
    SELECT PNUM
    FROM PARTS
    WHERE QOH = (SELECT COUNT(SHIPDATE)
                 FROM SUPPLY
                 WHERE SUPPLY.PNUM = PARTS.PNUM AND
                       SHIPDATE < '{CUTOFF_1980}')
"""

#: Variant with COUNT(*) (section 5.2.1's sub-case).
KIESSLING_Q2_COUNT_STAR = f"""
    SELECT PNUM
    FROM PARTS
    WHERE QOH = (SELECT COUNT(*)
                 FROM SUPPLY
                 WHERE SUPPLY.PNUM = PARTS.PNUM AND
                       SHIPDATE < '{CUTOFF_1980}')
"""

# ---------------------------------------------------------------------------
# Section 5.3 — the non-equality-operator instance
# ---------------------------------------------------------------------------

OPERATOR_BUG_PARTS = [(3, 0), (10, 4), (8, 4)]
OPERATOR_BUG_SUPPLY = [
    (3, 4, "1979-07-03"),
    (3, 2, "1978-10-01"),
    (10, 1, "1978-06-08"),
    (9, 5, "1979-03-02"),
]

#: Query Q5: Kiessling's Q1 with ``<`` substituted for ``=`` in the
#: correlated join predicate.  Nested-iteration result: {8}.
QUERY_Q5 = f"""
    SELECT PNUM
    FROM PARTS
    WHERE QOH = (SELECT MAX(QUAN)
                 FROM SUPPLY
                 WHERE SUPPLY.PNUM < PARTS.PNUM AND
                       SHIPDATE < '{CUTOFF_1980}')
"""

# ---------------------------------------------------------------------------
# Section 5.4 — the duplicates instance
# ---------------------------------------------------------------------------

DUPLICATES_PARTS = [(3, 6), (3, 2), (10, 1), (10, 0), (8, 0)]
DUPLICATES_SUPPLY = [
    (3, 4, "1977-08-14"),
    (3, 2, "1978-11-11"),
    (10, 1, "1976-06-22"),
]

# ---------------------------------------------------------------------------
# Introduction — suppliers, parts, shipments
# ---------------------------------------------------------------------------

S_ROWS = [
    ("S1", "Smith", 20, "London"),
    ("S2", "Jones", 10, "Paris"),
    ("S3", "Blake", 30, "Paris"),
    ("S4", "Clark", 20, "London"),
    ("S5", "Adams", 30, "Athens"),
]
P_ROWS = [
    ("P1", "Nut", "Red", 12, "London"),
    ("P2", "Bolt", "Green", 17, "Paris"),
    ("P3", "Screw", "Blue", 17, "Oslo"),
    ("P4", "Screw", "Red", 14, "London"),
    ("P5", "Cam", "Blue", 12, "Paris"),
    ("P6", "Cog", "Red", 19, "London"),
]
SP_ROWS = [
    ("S1", "P1", 300, "London"),
    ("S1", "P2", 200, "Paris"),
    ("S1", "P3", 400, "Oslo"),
    ("S1", "P4", 200, "London"),
    ("S1", "P5", 100, "Paris"),
    ("S1", "P6", 100, "London"),
    ("S2", "P1", 300, "Paris"),
    ("S2", "P2", 400, "Paris"),
    ("S3", "P2", 200, "Paris"),
    ("S4", "P2", 200, "London"),
    ("S4", "P4", 300, "London"),
    ("S4", "P5", 400, "London"),
]

#: The paper's example (1): names of suppliers who supply part P2.
INTRO_QUERY_1 = """
    SELECT SNAME
    FROM S
    WHERE SNO IN (SELECT SNO
                  FROM SP
                  WHERE PNO = 'P2')
"""

#: Example (2): type-A nesting.
TYPE_A_QUERY = "SELECT SNO FROM SP WHERE PNO = (SELECT MAX(PNO) FROM P)"

#: Example (3): type-N nesting.
TYPE_N_QUERY = """
    SELECT SNO
    FROM SP
    WHERE PNO IN (SELECT PNO
                  FROM P
                  WHERE WEIGHT > 15)
"""

#: Example (4): type-J nesting.
TYPE_J_QUERY = """
    SELECT SNAME
    FROM S
    WHERE SNO IN (SELECT SNO
                  FROM SP
                  WHERE QTY > 100 AND
                        SP.ORIGIN = S.CITY)
"""

#: Example (5): type-JA nesting — "names of parts which have the highest
#: part number in the city from which they are supplied".
TYPE_JA_QUERY = """
    SELECT PNAME
    FROM P
    WHERE PNO = (SELECT MAX(PNO)
                 FROM SP
                 WHERE SP.ORIGIN = P.CITY)
"""


# ---------------------------------------------------------------------------
# Loaders
# ---------------------------------------------------------------------------


def fresh_catalog(buffer_pages: int = 8) -> Catalog:
    """A new catalog over a new simulated disk and buffer pool."""
    return Catalog(BufferPool(DiskManager(), capacity=buffer_pages))


def _load_parts_supply(
    parts_rows: list[tuple],
    supply_rows: list[tuple],
    buffer_pages: int,
    rows_per_page: int | None,
) -> Catalog:
    catalog = fresh_catalog(buffer_pages)
    catalog.create_table(PARTS_SCHEMA, rows_per_page=rows_per_page)
    catalog.create_table(SUPPLY_SCHEMA, rows_per_page=rows_per_page)
    catalog.insert("PARTS", parts_rows)
    catalog.insert("SUPPLY", supply_rows)
    return catalog


def load_kiessling_instance(
    buffer_pages: int = 8, rows_per_page: int | None = None
) -> Catalog:
    """The section 5.1 instance (Kiessling's COUNT-bug tables)."""
    return _load_parts_supply(
        KIESSLING_PARTS, KIESSLING_SUPPLY, buffer_pages, rows_per_page
    )


def load_operator_bug_instance(
    buffer_pages: int = 8, rows_per_page: int | None = None
) -> Catalog:
    """The section 5.3 instance (query Q5's tables)."""
    return _load_parts_supply(
        OPERATOR_BUG_PARTS, OPERATOR_BUG_SUPPLY, buffer_pages, rows_per_page
    )


def load_duplicates_instance(
    buffer_pages: int = 8, rows_per_page: int | None = None
) -> Catalog:
    """The section 5.4 instance (duplicate PNUMs in PARTS)."""
    return _load_parts_supply(
        DUPLICATES_PARTS, DUPLICATES_SUPPLY, buffer_pages, rows_per_page
    )


def load_supplier_parts(
    buffer_pages: int = 8, rows_per_page: int | None = None
) -> Catalog:
    """The introduction's S / P / SP database."""
    catalog = fresh_catalog(buffer_pages)
    catalog.create_table(S_SCHEMA, rows_per_page=rows_per_page)
    catalog.create_table(P_SCHEMA, rows_per_page=rows_per_page)
    catalog.create_table(SP_SCHEMA, rows_per_page=rows_per_page)
    catalog.insert("S", S_ROWS)
    catalog.insert("P", P_ROWS)
    catalog.insert("SP", SP_ROWS)
    return catalog
