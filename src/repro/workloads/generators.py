"""Synthetic workload generators for the benchmarks.

The paper's evaluation is parameterized by relation sizes in pages
(``Pi``, ``Pj``), buffer size ``B``, and selectivities.  These
generators build scalable PARTS/SUPPLY-style instances with controlled
page geometry so the measured page I/O can be compared against the
section 7 formulas.

Determinism: every generator takes a ``seed`` and uses its own
:class:`random.Random`, so benchmark runs are reproducible.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass

from repro.catalog.catalog import Catalog
from repro.catalog.schema import ColumnType, schema
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager

#: The date cutoff used by generated correlated queries.
CUTOFF = "1980-01-01"

_DATES_BEFORE = ["1975-03-01", "1977-08-14", "1978-06-08", "1979-12-30"]
_DATES_AFTER = ["1981-08-10", "1983-05-07", "1985-01-15"]


@dataclass(frozen=True)
class PartsSupplySpec:
    """Shape of a synthetic PARTS/SUPPLY instance.

    Attributes:
        num_parts: rows in PARTS (one per distinct PNUM unless
            ``duplicate_fraction`` > 0).
        num_supply: rows in SUPPLY.
        rows_per_page: page geometry for both tables.
        buffer_pages: buffer pool size ``B``.
        match_fraction: fraction of SUPPLY rows whose PNUM exists in
            PARTS (the rest dangle — they exercise outer-join paths).
        before_cutoff_fraction: fraction of SHIPDATEs before the cutoff.
        duplicate_fraction: fraction of extra duplicate-PNUM rows to
            append to PARTS (the section 5.4 scenario).
        seed: RNG seed.
        io_delay: simulated per-page-read latency in seconds, passed to
            the instance's :class:`DiskManager` (used by the parallel
            benchmark to model I/O-bound scans — reads sleep outside
            all locks, so concurrent shards overlap their waits).
        skew: when > 0, draw SUPPLY's matching PNUMs from a zipf-ish
            distribution instead of uniformly (see :func:`skewed_keys`);
            higher values concentrate shipments on a few hot parts,
            which stresses partition balance and hash-join build
            chains.
    """

    num_parts: int = 50
    num_supply: int = 200
    rows_per_page: int = 10
    buffer_pages: int = 6
    match_fraction: float = 0.9
    before_cutoff_fraction: float = 0.7
    duplicate_fraction: float = 0.0
    seed: int = 0
    io_delay: float = 0.0
    skew: float = 0.0


def skewed_keys(
    rng: random.Random, universe: list, count: int, skew: float
) -> list:
    """Draw ``count`` keys from ``universe`` with zipf-ish skew.

    ``skew`` is the Zipf exponent ``s``: key rank ``r`` (1-based) gets
    weight ``1 / r**s``.  ``s = 0`` is uniform; ``s = 1`` is classic
    Zipf (the hottest key drawn ~``H_n`` times more often than the
    coldest); larger ``s`` concentrates harder.  Uses inverse-CDF
    sampling over the precomputed cumulative weights, so it needs no
    external dependencies and stays deterministic under the caller's
    ``rng``.
    """
    if not universe:
        return []
    if skew <= 0.0:
        return [rng.choice(universe) for _ in range(count)]
    weights = [1.0 / (rank**skew) for rank in range(1, len(universe) + 1)]
    cumulative = []
    total = 0.0
    for weight in weights:
        total += weight
        cumulative.append(total)
    picks = []
    for _ in range(count):
        point = rng.random() * total
        picks.append(universe[bisect.bisect_left(cumulative, point)])
    return picks


def build_parts_supply(spec: PartsSupplySpec) -> Catalog:
    """Materialize a PARTS/SUPPLY instance per the spec.

    QOH values are drawn to match plausible per-part shipment counts so
    that COUNT-style correlated queries return non-trivial results
    (including zero-count parts).
    """
    rng = random.Random(spec.seed)
    catalog = Catalog(
        BufferPool(
            DiskManager(io_delay=spec.io_delay), capacity=spec.buffer_pages
        )
    )
    catalog.create_table(
        schema("PARTS", "PNUM", "QOH", key=("PNUM",)),
        rows_per_page=spec.rows_per_page,
    )
    catalog.create_table(
        schema("SUPPLY", "PNUM", "QUAN", ("SHIPDATE", ColumnType.DATE)),
        rows_per_page=spec.rows_per_page,
    )

    pnums = list(range(1, spec.num_parts + 1))
    expected = spec.num_supply / max(1, spec.num_parts)
    parts_rows = [
        (pnum, rng.randint(0, max(2, int(2 * expected)))) for pnum in pnums
    ]
    extra = int(spec.duplicate_fraction * spec.num_parts)
    for _ in range(extra):
        pnum = rng.choice(pnums)
        parts_rows.append((pnum, rng.randint(0, max(2, int(2 * expected)))))
    catalog.insert("PARTS", parts_rows)

    # Skewed draws are pre-sampled (skew=0 keeps the legacy call order,
    # so existing seeds reproduce byte-identical instances).
    hot = (
        iter(skewed_keys(rng, pnums, spec.num_supply, spec.skew))
        if spec.skew > 0
        else None
    )
    supply_rows = []
    for _ in range(spec.num_supply):
        if rng.random() < spec.match_fraction:
            pnum = next(hot) if hot is not None else rng.choice(pnums)
        else:
            pnum = spec.num_parts + rng.randint(1, 10)  # dangling
        quan = rng.randint(1, 9)
        if rng.random() < spec.before_cutoff_fraction:
            date = rng.choice(_DATES_BEFORE)
        else:
            date = rng.choice(_DATES_AFTER)
        supply_rows.append((pnum, quan, date))
    catalog.insert("SUPPLY", supply_rows)
    return catalog


#: The type-JA query the generated instances are benchmarked with —
#: Kiessling's Q2 shape at scale.
GENERATED_JA_QUERY = f"""
    SELECT PNUM FROM PARTS
    WHERE QOH = (SELECT COUNT(SHIPDATE) FROM SUPPLY
                 WHERE SUPPLY.PNUM = PARTS.PNUM AND
                       SHIPDATE < '{CUTOFF}')
"""

#: A type-JA query with MAX (Kim's Q3 shape, the section 7.4 example).
GENERATED_JA_MAX_QUERY = f"""
    SELECT PNUM FROM PARTS
    WHERE QOH = (SELECT MAX(QUAN) FROM SUPPLY
                 WHERE SUPPLY.PNUM = PARTS.PNUM AND
                       SHIPDATE < '{CUTOFF}')
"""

#: A type-N query over the same schema.
GENERATED_N_QUERY = f"""
    SELECT PNUM FROM PARTS
    WHERE PNUM IN (SELECT PNUM FROM SUPPLY
                   WHERE SHIPDATE < '{CUTOFF}')
"""

#: A type-J query over the same schema (correlated, no aggregate).
GENERATED_J_QUERY = """
    SELECT PNUM FROM PARTS
    WHERE QOH IN (SELECT QUAN FROM SUPPLY
                  WHERE SUPPLY.PNUM = PARTS.PNUM)
"""


@dataclass(frozen=True)
class SupplierSpec:
    """Shape of a scaled S/P/SP (suppliers-parts-shipments) instance."""

    num_suppliers: int = 30
    num_parts: int = 40
    num_shipments: int = 150
    rows_per_page: int = 8
    buffer_pages: int = 8
    seed: int = 0


_CITIES = ["London", "Paris", "Oslo", "Athens", "Rome", "Madrid"]


def build_supplier_parts(spec: SupplierSpec) -> Catalog:
    """A scaled version of the introduction's S/P/SP database."""
    rng = random.Random(spec.seed)
    catalog = Catalog(BufferPool(DiskManager(), capacity=spec.buffer_pages))
    catalog.create_table(
        schema(
            "S",
            ("SNO", ColumnType.TEXT),
            ("SNAME", ColumnType.TEXT),
            "STATUS",
            ("CITY", ColumnType.TEXT),
            key=("SNO",),
        ),
        rows_per_page=spec.rows_per_page,
    )
    catalog.create_table(
        schema(
            "P",
            ("PNO", ColumnType.TEXT),
            ("PNAME", ColumnType.TEXT),
            "WEIGHT",
            ("CITY", ColumnType.TEXT),
            key=("PNO",),
        ),
        rows_per_page=spec.rows_per_page,
    )
    catalog.create_table(
        schema(
            "SP",
            ("SNO", ColumnType.TEXT),
            ("PNO", ColumnType.TEXT),
            "QTY",
            ("ORIGIN", ColumnType.TEXT),
        ),
        rows_per_page=spec.rows_per_page,
    )

    suppliers = [
        (f"S{i}", f"Supplier{i}", rng.choice([10, 20, 30]), rng.choice(_CITIES))
        for i in range(1, spec.num_suppliers + 1)
    ]
    parts = [
        (f"P{i:04d}", f"Part{i}", rng.randint(5, 30), rng.choice(_CITIES))
        for i in range(1, spec.num_parts + 1)
    ]
    shipments = [
        (
            rng.choice(suppliers)[0],
            rng.choice(parts)[0],
            rng.randrange(50, 500, 50),
            rng.choice(_CITIES),
        )
        for _ in range(spec.num_shipments)
    ]
    catalog.insert("S", suppliers)
    catalog.insert("P", parts)
    catalog.insert("SP", shipments)
    return catalog
