"""Command-line entry point: ``python -m repro [difftest|check ...]``.

Without arguments, an interactive SQL REPL over a fresh
:class:`~repro.api.Database`.  With the ``difftest`` subcommand, the
differential tester against SQLite; with ``check``, the static plan
verifier + Kim-bug lint::

    python -m repro difftest --examples 500 --seed 0
    python -m repro check --figure1
    python -m repro check --instance kiessling --ja kim "SELECT ..."
    python -m repro serve                 # REPL with the plan cache on
    python -m repro bench-throughput --smoke

In the REPL, statements end with ``;``.  Backslash commands control
the session::

    \\load kiessling        load a paper instance (kiessling | operator |
                            duplicates | suppliers)
    \\method M              nested_iteration | transform | auto | cost
    \\join M                merge | nested (for transformed plans)
    \\explain SELECT ...;   show the NEST-G transformation plan
    \\plan SELECT ...;      show the cost-based planner's estimates
    \\analyze [TABLE]       collect optimizer statistics
    \\index TABLE COLUMN    build an index (used by nested iteration)
    \\tables                list tables
    \\cache                 plan-cache counters (hits/misses/...,
                            snapshot-pin hits, memo flushes, shared
                            materializations / cross-query hits /
                            shared purges)
    \\txn                   transaction/WAL status (commits, aborts,
                            versions, pinned reads, log size)
    \\txn begin             open a transaction: INSERTs buffer in it,
                            SELECTs read your writes
    \\txn commit            publish the open transaction's rows
    \\txn rollback          undo the open transaction
    \\io                    cumulative page-I/O counters
    \\reset                 zero the counters and cool the cache
    \\help                  this text
    \\quit                  exit

Example session::

    $ python -m repro
    repro> \\load kiessling
    repro> SELECT PNUM FROM PARTS
    .....> WHERE QOH = (SELECT COUNT(SHIPDATE) FROM SUPPLY
    .....>              WHERE SUPPLY.PNUM = PARTS.PNUM
    .....>                AND SHIPDATE < '1980-01-01');
"""

from __future__ import annotations

import sys

from repro.api import Database
from repro.bench.reporting import format_table
from repro.errors import ReproError
from repro.workloads import paper_data

BANNER = (
    "repro — Optimization of Nested SQL Queries Revisited (SIGMOD 1987)\n"
    "Type \\help for commands; statements end with ';'."
)

PROMPT = "repro> "
CONTINUATION = ".....> "

_LOADERS = {
    "kiessling": (
        paper_data.load_kiessling_instance,
        "section 5.1 PARTS/SUPPLY (the COUNT-bug instance)",
    ),
    "operator": (
        paper_data.load_operator_bug_instance,
        "section 5.3 PARTS/SUPPLY (query Q5's instance)",
    ),
    "duplicates": (
        paper_data.load_duplicates_instance,
        "section 5.4 PARTS/SUPPLY (duplicate outer PNUMs)",
    ),
    "suppliers": (
        paper_data.load_supplier_parts,
        "the introduction's S / P / SP database",
    ),
}


class Shell:
    """State and command dispatch for the REPL.

    With ``serve=True`` (the ``python -m repro serve`` subcommand),
    SELECT statements run through the plan cache: repeated queries —
    even with different predicate literals — replay an already-verified
    plan instead of re-planning.  ``\\cache`` shows the counters.
    """

    def __init__(self, out=sys.stdout, serve: bool = False) -> None:
        self.db = Database(buffer_pages=8)
        self.method = "auto"
        self.out = out
        self.done = False
        self.serve = serve
        self.txn_handle = None  # open \txn begin transaction, if any

    # -- I/O helpers ---------------------------------------------------------

    def say(self, text: str = "") -> None:
        print(text, file=self.out)

    # -- dispatch --------------------------------------------------------------

    def handle(self, line: str) -> None:
        stripped = line.strip()
        if not stripped:
            return
        if stripped.startswith("\\"):
            self._command(stripped)
        else:
            self._statement(stripped)

    def _command(self, line: str) -> None:
        parts = line.split(None, 1)
        name = parts[0][1:].lower()
        argument = parts[1].strip() if len(parts) > 1 else ""
        handler = getattr(self, f"_cmd_{name}", None)
        if handler is None:
            self.say(f"unknown command \\{name}; try \\help")
            return
        handler(argument)

    # -- commands --------------------------------------------------------------

    def _cmd_help(self, _argument: str) -> None:
        self.say(__doc__.replace("\\\\", "\\"))

    def _cmd_quit(self, _argument: str) -> None:
        self.done = True

    def _cmd_exit(self, _argument: str) -> None:
        self.done = True

    def _cmd_load(self, argument: str) -> None:
        loader = _LOADERS.get(argument.lower())
        if loader is None:
            self.say(f"unknown instance {argument!r}; "
                     f"options: {', '.join(sorted(_LOADERS))}")
            return
        if self.txn_handle is not None:
            self.say("an open transaction holds the old instance; "
                     "\\txn commit or \\txn rollback first")
            return
        factory, description = loader
        catalog = factory(buffer_pages=self.db.buffer.capacity)
        # Rebind the session database to the loaded catalog — including
        # the transaction manager and the plan cache's change hook,
        # which would otherwise keep watching the abandoned catalog.
        from repro.txn import TransactionManager, WriteAheadLog

        self.db.catalog = catalog
        self.db.buffer = catalog.buffer
        self.db.disk = catalog.buffer.disk
        self.db.engine.catalog = catalog
        self.db.wal = WriteAheadLog(None)
        self.db.txn = TransactionManager(catalog, self.db.wal)
        self.db.plan_cache.clear()
        self.db.plan_cache.attach(catalog)
        self.say(f"loaded {description}")
        self.say(f"tables: {', '.join(catalog.table_names())}")

    def _cmd_method(self, argument: str) -> None:
        if argument not in ("nested_iteration", "transform", "auto", "cost"):
            self.say("method must be nested_iteration | transform | auto | cost")
            return
        self.method = argument
        self.say(f"evaluation method: {argument}")

    def _cmd_join(self, argument: str) -> None:
        if argument not in ("merge", "nested"):
            self.say("join method must be merge | nested")
            return
        self.db.engine.join_method = argument
        self.say(f"transformed-plan join method: {argument}")

    def _cmd_tables(self, _argument: str) -> None:
        names = self.db.tables()
        if not names:
            self.say("(no tables; try \\load kiessling)")
            return
        for name in names:
            entry = self.db.catalog.get(name)
            self.say(
                f"{name}({', '.join(entry.schema.column_names)}) — "
                f"{entry.heap.num_rows} rows, {entry.heap.num_pages} pages"
            )

    def _cmd_index(self, argument: str) -> None:
        parts = argument.split()
        if len(parts) != 2:
            self.say("usage: \\index TABLE COLUMN")
            return
        try:
            self.db.create_index(parts[0], parts[1])
        except ReproError as error:
            self.say(f"error: {error}")
            return
        self.say(f"index built on {parts[0].upper()}.{parts[1].upper()}")

    def _cmd_analyze(self, argument: str) -> None:
        try:
            self.db.analyze(argument or None)
        except ReproError as error:
            self.say(f"error: {error}")
            return
        analyzed = argument.upper() if argument else "all tables"
        self.say(f"statistics collected for {analyzed}")

    def _cmd_io(self, _argument: str) -> None:
        self.say(self.db.io_stats().format())

    def _cmd_reset(self, _argument: str) -> None:
        self.db.cold_cache()
        self.db.reset_io_stats()
        self.say("counters zeroed, cache cold")

    def _cmd_explain(self, argument: str) -> None:
        if not argument:
            self.say("usage: \\explain SELECT ...;")
            return
        try:
            self.say(self.db.explain(argument.rstrip(";")))
        except ReproError as error:
            self.say(f"error: {error}")

    def _cmd_plan(self, argument: str) -> None:
        """Show the cost-based planner's estimates for a query."""
        if not argument:
            self.say("usage: \\plan SELECT ...;")
            return
        from repro.optimizer.planner import Planner

        try:
            choice = Planner(self.db.catalog).choose(argument.rstrip(";"))
        except ReproError as error:
            self.say(f"error: {error}")
            return
        self.say(choice.describe())

    def _cmd_cache(self, _argument: str) -> None:
        self.say(self.db.cache_stats().format())

    def _cmd_txn(self, argument: str) -> None:
        action = argument.strip().lower()
        if not action:
            self.say(self.db.txn_stats())
            if self.txn_handle is not None:
                self.say(
                    f"open transaction: txid {self.txn_handle.txid} "
                    f"({self.txn_handle.state})"
                )
            return
        if action == "begin":
            if self.txn_handle is not None:
                self.say(
                    f"transaction {self.txn_handle.txid} already open; "
                    "\\txn commit or \\txn rollback first"
                )
                return
            self.txn_handle = self.db.begin()
            self.say(
                f"transaction {self.txn_handle.txid} open: INSERTs "
                "buffer until \\txn commit, SELECTs read your writes"
            )
            return
        if action in ("commit", "rollback"):
            if self.txn_handle is None:
                self.say("no open transaction; \\txn begin starts one")
                return
            txn, self.txn_handle = self.txn_handle, None
            try:
                getattr(txn, action)()
            except ReproError as error:
                self.say(f"error: {error}")
                return
            if action == "commit":
                self.say(f"transaction {txn.txid} committed")
            else:
                self.say(f"transaction {txn.txid} rolled back")
            return
        self.say("usage: \\txn [begin | commit | rollback]")

    # -- statements ------------------------------------------------------------

    def _execute(self, sql: str):
        """Run one statement, via the plan cache in serve mode.

        While a ``\\txn begin`` transaction is open, INSERTs buffer in
        it and SELECTs run against its read-your-writes snapshot; DDL
        is rejected until the transaction closes.
        """
        from repro.sql.ast import Select
        from repro.sql.statements import InsertValues, parse_statement

        if self.txn_handle is not None:
            statement = parse_statement(sql)
            if isinstance(statement, Select):
                return self.txn_handle.query(sql, method=self.method)
            if isinstance(statement, InsertValues):
                count = self.txn_handle.insert(
                    statement.table, statement.rows
                )
                return (
                    f"buffered {count} row(s) in transaction "
                    f"{self.txn_handle.txid} (\\txn commit publishes)"
                )
            return "DDL inside an open transaction is not supported; " \
                   "\\txn commit or \\txn rollback first"
        if self.serve:
            if isinstance(parse_statement(sql), Select):
                return self.db.execute_cached(sql, method=self.method).result
        return self.db.execute(sql, method=self.method)

    def _statement(self, sql: str) -> None:
        try:
            before = self.db.io_stats()
            outcome = self._execute(sql)
            delta = self.db.io_stats() - before
        except ReproError as error:
            self.say(f"error: {error}")
            return
        if isinstance(outcome, str):
            self.say(outcome)
            return
        if outcome.rows:
            self.say(format_table(outcome.columns,
                                  [list(row) for row in outcome.rows]))
        self.say(f"({len(outcome.rows)} row(s), {delta.format()})")


def repl(stdin=sys.stdin, stdout=sys.stdout, serve: bool = False) -> int:
    """Run the interactive loop; returns the process exit code."""
    shell = Shell(out=stdout, serve=serve)
    shell.say(BANNER)
    if serve:
        shell.say("serving mode: SELECTs run through the plan cache "
                  "(\\cache shows counters)")
    buffer: list[str] = []
    interactive = stdin.isatty()

    while not shell.done:
        prompt = CONTINUATION if buffer else PROMPT
        if interactive:
            try:
                line = input(prompt)
            except (EOFError, KeyboardInterrupt):
                shell.say()
                break
        else:
            line = stdin.readline()
            if not line:
                break
            line = line.rstrip("\n")

        stripped = line.strip()
        if not buffer and stripped.startswith("\\"):
            shell.handle(stripped)
            continue
        buffer.append(line)
        if stripped.endswith(";"):
            shell.handle(" ".join(buffer))
            buffer.clear()

    if buffer:
        shell.handle(" ".join(buffer))
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "difftest":
        from repro.difftest.runner import main as difftest_main

        return difftest_main(argv[1:])
    if argv and argv[0] == "check":
        from repro.analysis.check import main as check_main

        return check_main(argv[1:])
    if argv and argv[0] == "serve":
        return repl(serve=True)
    if argv and argv[0] == "bench-throughput":
        from repro.bench.throughput import main as throughput_main

        return throughput_main(argv[1:])
    if argv:
        print(f"unknown subcommand {argv[0]!r}; usage: python -m repro "
              "[difftest --examples N --seed S | check QUERY ... | "
              "serve | bench-throughput ...]",
              file=sys.stderr)
        return 2
    return repl()


if __name__ == "__main__":
    sys.exit(main())
