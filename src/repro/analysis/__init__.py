"""Static analysis: plan verification, nullability inference, Kim-bug lint.

Public API:

* :func:`verify_nested` / :func:`verify_single_level` /
  :func:`verify_transform` — the plan invariant verifier (PV0xx rules);
* :func:`lint_transform` — the Kim-bug lint (KB001–KB003);
* :class:`NullabilityInference` / :func:`infer_query_nullability` —
  3VL-aware type and nullability inference;
* :class:`Diagnostic` / :class:`Findings` / :class:`Span` — what the
  analyses report;
* :class:`SourceMap` — best-effort AST-to-source span recovery.
"""

from repro.analysis.diagnostics import Diagnostic, Findings, Span
from repro.analysis.lint import lint_transform
from repro.analysis.nullability import (
    Inferred,
    NullabilityInference,
    catalog_provider,
    infer_query_nullability,
)
from repro.analysis.spans import SourceMap
from repro.analysis.verifier import (
    TempInfo,
    collect_temp_infos,
    verify_nested,
    verify_single_level,
    verify_transform,
)

__all__ = [
    "Diagnostic",
    "Findings",
    "Span",
    "SourceMap",
    "Inferred",
    "NullabilityInference",
    "catalog_provider",
    "infer_query_nullability",
    "TempInfo",
    "collect_temp_infos",
    "lint_transform",
    "verify_nested",
    "verify_single_level",
    "verify_transform",
]
