"""Type and nullability inference over expression trees (3VL-aware).

For every column and expression the pass infers ``(type, nullable)``
*without executing anything*, from three sources of truth:

* **schema constraints** — a primary-key column of a stored base table
  can never be NULL (the catalog enforces this on insert);
* **outer-join padding** — any column of the null-padded side of an
  outer join (section 5.2's ``=+`` comparison) is nullable in the join
  output even when its base column is not;
* **aggregate semantics** — ``COUNT`` never yields NULL (an empty
  group counts 0), while ``SUM``/``AVG``/``MIN``/``MAX`` over an empty
  or all-NULL group yield NULL, the distinction sections 5.1–5.2 of
  the paper turn on.

The inference is *sound*, not complete: ``nullable=True`` means "may
be NULL", and a column inferred ``nullable=False`` must never produce
NULL at runtime (a hypothesis property test holds the pass to exactly
that claim).  When in doubt the pass says nullable.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass

from repro.catalog.catalog import Catalog
from repro.catalog.schema import ColumnType
from repro.sql.ast import (
    And,
    Between,
    BinaryArith,
    ColumnRef,
    Comparison,
    Exists,
    Expr,
    FuncCall,
    InList,
    InSubquery,
    IsNull,
    Literal,
    Not,
    Or,
    Quantified,
    ScalarSubquery,
    Select,
    Star,
    UnaryMinus,
    conjuncts,
)


@dataclass(frozen=True)
class Inferred:
    """What static analysis knows about one expression's value."""

    ctype: ColumnType
    nullable: bool

    def describe(self) -> str:
        suffix = "NULL" if self.nullable else "NOT NULL"
        return f"{self.ctype.value} {suffix}"


#: The fallback when nothing is known: any type, may be NULL.
UNKNOWN = Inferred(ColumnType.ANY, True)

#: ``binding -> {column: Inferred}``, or None for an unknown binding.
SchemaProvider = Callable[[str], "Mapping[str, Inferred] | None"]


def catalog_provider(
    catalog: Catalog,
    temps: Mapping[str, Mapping[str, Inferred]] | None = None,
) -> SchemaProvider:
    """Schema provider over a catalog plus not-yet-built temp tables.

    Base-table primary-key columns are NOT NULL (the catalog rejects
    NULL key values on insert); all other stored columns are nullable.
    ``temps`` lets the plan verifier chain inference through temp-table
    definitions before they are materialized.
    """

    def provide(binding: str) -> Mapping[str, Inferred] | None:
        if temps is not None and binding in temps:
            return temps[binding]
        if not catalog.has_table(binding):
            return None
        schema = catalog.schema_of(binding)
        return {
            column.name: Inferred(
                column.ctype, column.name not in schema.primary_key
            )
            for column in schema.columns
        }

    return provide


class Scope:
    """Name resolution for inference: bindings chained to outer scopes."""

    def __init__(
        self,
        bindings: dict[str, Mapping[str, Inferred]],
        padded: frozenset[str] = frozenset(),
        parent: "Scope | None" = None,
    ) -> None:
        self.bindings = bindings
        self.padded = padded
        self.parent = parent

    def resolve(self, ref: ColumnRef) -> Inferred | None:
        """Innermost-scope-first resolution; None when unresolvable."""
        scope: Scope | None = self
        while scope is not None:
            found = scope._resolve_local(ref)
            if found is not None:
                return found
            scope = scope.parent
        return None

    def _resolve_local(self, ref: ColumnRef) -> Inferred | None:
        if ref.table is not None:
            columns = self.bindings.get(ref.table)
            if columns is None or ref.column not in columns:
                return None
            return self._pad(ref.table, columns[ref.column])
        owners = [
            binding
            for binding, columns in self.bindings.items()
            if ref.column in columns
        ]
        if len(owners) != 1:
            return None
        return self._pad(owners[0], self.bindings[owners[0]][ref.column])

    def _pad(self, binding: str, inferred: Inferred) -> Inferred:
        if binding in self.padded and not inferred.nullable:
            return Inferred(inferred.ctype, True)
        return inferred


def padded_bindings(select: Select) -> frozenset[str]:
    """Bindings on the null-padded side of the block's outer joins.

    ``Comparison.outer == "left"`` preserves the relation of the left
    *operand*, padding the right operand's relation with NULLs for
    unmatched rows (and vice versa); ``"full"`` pads both sides.
    """
    padded: set[str] = set()
    for conjunct in conjuncts(select.where):
        if not isinstance(conjunct, Comparison) or conjunct.outer is None:
            continue
        sides = {"left": conjunct.left, "right": conjunct.right}
        if conjunct.outer == "full":
            victims = list(sides.values())
        elif conjunct.outer == "left":
            victims = [sides["right"]]
        else:
            victims = [sides["left"]]
        for victim in victims:
            if isinstance(victim, ColumnRef) and victim.table is not None:
                padded.add(victim.table)
    return frozenset(padded)


class NullabilityInference:
    """Infers :class:`Inferred` facts for expressions and query blocks."""

    def __init__(self, provider: SchemaProvider) -> None:
        self.provider = provider

    # -- query blocks ------------------------------------------------------

    def scope_for(self, select: Select, parent: Scope | None = None) -> Scope:
        bindings: dict[str, Mapping[str, Inferred]] = {}
        for ref in select.from_tables:
            columns = self.provider(ref.name)
            if columns is not None:
                bindings[ref.binding] = columns
        return Scope(bindings, padded_bindings(select), parent)

    def infer_output(
        self, select: Select, parent: Scope | None = None
    ) -> list[tuple[str, Inferred]]:
        """``(output name, Inferred)`` per SELECT item of the block."""
        scope = self.scope_for(select, parent)
        outputs: list[tuple[str, Inferred]] = []
        for index, item in enumerate(select.items):
            if item.alias:
                name = item.alias
            elif isinstance(item.expr, ColumnRef):
                name = item.expr.column
            else:
                name = f"C{index + 1}"
            outputs.append((name, self.infer_expr(item.expr, scope)))
        return outputs

    # -- expressions -------------------------------------------------------

    def infer_expr(self, expr: Expr, scope: Scope) -> Inferred:
        if isinstance(expr, ColumnRef):
            return scope.resolve(expr) or UNKNOWN
        if isinstance(expr, Literal):
            return Inferred(_literal_type(expr.value), expr.value is None)
        if isinstance(expr, Star):
            return UNKNOWN
        if isinstance(expr, FuncCall):
            return self._infer_aggregate(expr, scope)
        if isinstance(expr, UnaryMinus):
            operand = self.infer_expr(expr.operand, scope)
            return Inferred(_numeric(operand.ctype), operand.nullable)
        if isinstance(expr, BinaryArith):
            left = self.infer_expr(expr.left, scope)
            right = self.infer_expr(expr.right, scope)
            ctype = _arith_type(expr.op, left.ctype, right.ctype)
            return Inferred(ctype, left.nullable or right.nullable)
        if isinstance(expr, ScalarSubquery):
            return self._infer_scalar_subquery(expr.query, scope)
        # -- predicates used as values (three-valued booleans) -------------
        if isinstance(expr, Comparison):
            if expr.null_safe:
                return Inferred(ColumnType.INT, False)
            left = self.infer_expr(expr.left, scope)
            right = self.infer_expr(expr.right, scope)
            return Inferred(ColumnType.INT, left.nullable or right.nullable)
        if isinstance(expr, IsNull):
            # IS [NOT] NULL is never unknown.
            return Inferred(ColumnType.INT, False)
        if isinstance(expr, Exists):
            return Inferred(ColumnType.INT, False)
        if isinstance(expr, Between):
            parts = [
                self.infer_expr(expr.operand, scope),
                self.infer_expr(expr.low, scope),
                self.infer_expr(expr.high, scope),
            ]
            return Inferred(ColumnType.INT, any(p.nullable for p in parts))
        if isinstance(expr, InList):
            parts = [self.infer_expr(expr.operand, scope)] + [
                self.infer_expr(item, scope) for item in expr.items
            ]
            return Inferred(ColumnType.INT, any(p.nullable for p in parts))
        if isinstance(expr, (InSubquery, Quantified)):
            # Depends on the inner rows; conservatively unknown-able.
            return Inferred(ColumnType.INT, True)
        if isinstance(expr, (And, Or)):
            parts = [self.infer_expr(op, scope) for op in expr.operands]
            return Inferred(ColumnType.INT, any(p.nullable for p in parts))
        if isinstance(expr, Not):
            operand = self.infer_expr(expr.operand, scope)
            return Inferred(ColumnType.INT, operand.nullable)
        return UNKNOWN

    # -- helpers -----------------------------------------------------------

    def _infer_aggregate(self, call: FuncCall, scope: Scope) -> Inferred:
        if call.name == "COUNT":
            # COUNT is never NULL: an empty group counts 0.  This is
            # the section 5.1/5.2 distinction the whole paper hangs on.
            return Inferred(ColumnType.INT, False)
        if not call.is_aggregate:
            return UNKNOWN
        if isinstance(call.arg, Star):
            arg = UNKNOWN
        else:
            arg = self.infer_expr(call.arg, scope)
        # SUM/AVG/MIN/MAX of an empty (or all-NULL) group is NULL, so
        # they are nullable regardless of their argument.
        if call.name == "AVG":
            return Inferred(ColumnType.FLOAT, True)
        if call.name == "SUM":
            return Inferred(_numeric(arg.ctype), True)
        return Inferred(arg.ctype, True)

    def _infer_scalar_subquery(self, query: Select, scope: Scope) -> Inferred:
        """A scalar subquery: zero rows evaluate to NULL (section 5.3).

        The one shape guaranteed to yield exactly one row is a single
        aggregate item without GROUP BY — there the aggregate's own
        nullability applies (COUNT stays NOT NULL; ``SUM`` of an empty
        group is still NULL).
        """
        inner_scope = self.scope_for(query, scope)
        if not query.items:
            return UNKNOWN
        item = self.infer_expr(query.items[0].expr, inner_scope)
        guaranteed_row = (
            len(query.items) == 1
            and not query.group_by
            and query.has_aggregate_select()
            and query.having is None
        )
        if guaranteed_row:
            return item
        return Inferred(item.ctype, True)


def _literal_type(value: object) -> ColumnType:
    if isinstance(value, bool):
        return ColumnType.ANY
    if isinstance(value, int):
        return ColumnType.INT
    if isinstance(value, float):
        return ColumnType.FLOAT
    if isinstance(value, str):
        return ColumnType.TEXT
    return ColumnType.ANY


def _numeric(ctype: ColumnType) -> ColumnType:
    if ctype in (ColumnType.INT, ColumnType.FLOAT):
        return ctype
    return ColumnType.ANY


def _arith_type(op: str, left: ColumnType, right: ColumnType) -> ColumnType:
    if op == "/":
        # The engine divides true (DESIGN.md): 3 / 2 == 1.5.
        return ColumnType.FLOAT
    if left is ColumnType.FLOAT or right is ColumnType.FLOAT:
        return ColumnType.FLOAT
    if left is ColumnType.INT and right is ColumnType.INT:
        return ColumnType.INT
    return ColumnType.ANY


def infer_query_nullability(
    select: Select,
    catalog: Catalog,
    temps: Mapping[str, Mapping[str, Inferred]] | None = None,
) -> list[tuple[str, Inferred]]:
    """Convenience wrapper: output nullability of a query's columns."""
    inference = NullabilityInference(catalog_provider(catalog, temps))
    return inference.infer_output(select)
