"""Concurrency correctness toolkit.

Three cooperating layers over the concurrent parts of the codebase
(the serving read path, the buffer pool, the exchange pool, and the
WAL/MVCC commit path):

* :mod:`repro.analysis.concurrency.lockgraph` — a **static lock-order
  lint** (rules ``CC001``–``CC004``): an AST pass over ``src/repro``
  that recognizes lock objects, builds an interprocedural
  lock-acquisition graph, and reports order cycles, I/O under latches,
  non-guaranteed releases, and unguarded shared module state.
* :mod:`repro.analysis.concurrency.witness` — a **runtime lock
  witness**: an opt-in shim (``REPRO_WITNESS=1`` or
  :func:`witness.enable`) that wraps every recognized lock, records
  per-thread acquisition order into a process-wide graph, and raises on
  the first observed order cycle or reader→writer upgrade.
* :mod:`repro.txn.monitors` — **transaction invariant monitors**
  (rules ``TX001``–``TX004``): cheap always-on assertions on the
  WAL/MVCC commit path (LSN monotonicity, flush-before-publish,
  horizon monotonicity, snapshot immutability).

``python -m repro check --concurrency`` runs the static rules over the
source tree against a curated-clean baseline; ``--selftest`` addition
ally proves each analyzer detects its seeded-bug fixture.
"""

from repro.analysis.concurrency.lockgraph import (
    FileFinding,
    analyze_paths,
    analyze_tree,
)
from repro.analysis.concurrency.witness import (
    LockOrderError,
    LockWitness,
    witness,
)

__all__ = [
    "FileFinding",
    "LockOrderError",
    "LockWitness",
    "analyze_paths",
    "analyze_tree",
    "witness",
]
