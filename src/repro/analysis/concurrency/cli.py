"""Command-line entry points for the concurrency toolkit.

``python -m repro check --concurrency`` runs the static CC rules over
the installed ``repro`` package (fixtures excluded), applies the
curated baseline, and finishes with a TX-monitor smoke: a real
begin/insert/commit cycle against an in-memory database with the
always-on invariant monitors doing their checks.  Exit status 0 means
"no unbaselined findings and the smoke committed cleanly".

``python -m repro check --selftest`` proves the toolkit can still
detect what it claims to detect: every seeded-bug fixture (see
:mod:`repro.analysis.concurrency.fixtures`) must trigger its rule, the
TX monitors must reject hand-built invariant violations, and the
runtime witness must flag a reversed acquisition order.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.concurrency.baseline import apply_baseline
from repro.analysis.concurrency.lockgraph import analyze_paths, analyze_tree
from repro.analysis.concurrency.witness import LockOrderError, witness


def run_concurrency_check(verbose: bool = True) -> int:
    """Static scan + baseline + TX monitor smoke; 0 when clean."""
    findings = analyze_tree()
    kept, suppressed, stale = apply_baseline(findings)
    exit_code = 0
    if verbose:
        print("== concurrency lint (CC rules) ==")
    for finding in kept:
        print(finding.format())
        exit_code = 1
    for fingerprint in stale:
        print(f"warning: stale baseline entry (matched nothing): {fingerprint}")
    if verbose:
        print(
            f"  {len(findings)} finding(s): {len(kept)} violation(s), "
            f"{len(suppressed)} baselined"
        )
    smoke_failures = _tx_monitor_smoke()
    for message in smoke_failures:
        print(f"TX monitor smoke failed: {message}")
        exit_code = 1
    if verbose and not smoke_failures:
        print("== TX monitor smoke == ok (commit path ran with monitors on)")
    return exit_code


def _tx_monitor_smoke() -> list[str]:
    """Drive the monitored commit path once; failures returned as text."""
    from repro.api import Database
    from repro.txn.monitors import TxnInvariantError

    failures: list[str] = []
    try:
        db = Database()
        db.create_table("SMOKE", [("A", "int")])
        with db.begin() as txn:
            txn.insert("SMOKE", [(1,), (2,)])
        with db.begin() as txn:
            txn.insert("SMOKE", [(3,)])
            txn.rollback()
        count = db.query("SELECT COUNT(*) FROM SMOKE").rows[0][0]
        if count != 2:
            failures.append(f"expected 2 committed rows, saw {count}")
    except TxnInvariantError as error:
        failures.append(f"monitors rejected a correct commit: {error}")
    return failures


def run_selftest(verbose: bool = True) -> int:
    """Require every seeded bug to be detected; 0 when all are."""
    failures: list[str] = []
    failures.extend(_selftest_static())
    failures.extend(_selftest_monitors())
    failures.extend(_selftest_witness())
    if failures:
        for message in failures:
            print(f"selftest FAILED: {message}")
        return 1
    if verbose:
        print(
            "== concurrency selftest == ok "
            "(CC001-CC004, TX001-TX004, witness cycle all detected)"
        )
    return 0


def _selftest_static() -> list[str]:
    fixtures_dir = Path(__file__).parent / "fixtures"
    paths = [
        path
        for path in fixtures_dir.glob("*.py")
        if path.name != "__init__.py"
    ]
    findings = analyze_paths(paths)
    seen = {finding.diagnostic.rule for finding in findings}
    failures = []
    for rule in ("CC001", "CC002", "CC003", "CC004"):
        if rule not in seen:
            failures.append(
                f"{rule} missed its seeded fixture (found rules: "
                f"{sorted(seen) or 'none'})"
            )
    return failures


def _selftest_monitors() -> list[str]:
    from collections.abc import Callable

    from repro.analysis.concurrency.fixtures.seeded_skipped_flush import (
        commit_skipping_flush,
    )
    from repro.txn import monitors
    from repro.txn.monitors import TxnInvariantError
    from repro.txn.mvcc import Snapshot

    failures: list[str] = []

    def expect(rule: str, action: Callable[[], object]) -> None:
        try:
            action()
        except TxnInvariantError as error:
            if error.diagnostic.rule != rule:
                failures.append(
                    f"{rule} violation reported as {error.diagnostic.rule}"
                )
        else:
            failures.append(f"{rule} violation was not detected")

    expect("TX001", lambda: monitors.check_lsn_monotonic(5, 5))
    expect("TX002", commit_skipping_flush)
    expect(
        "TX003",
        lambda: monitors.check_publish(
            Snapshot(3, {"T": 2}), Snapshot(5, {"T": 2})
        ),
    )
    expect(
        "TX003",
        lambda: monitors.check_publish(
            Snapshot(3, {"T": 2}), Snapshot(4, {"T": 1})
        ),
    )
    expect(
        "TX004",
        lambda: monitors.check_snapshot_unchanged(
            monitors.fingerprint_horizons({"T": 2}), Snapshot(3, {"T": 9})
        ),
    )
    return failures


def _selftest_witness() -> list[str]:
    from repro.storage.locks import make_lock

    was_active = witness.active
    witness.reset()
    if not was_active:
        witness.enable()
    try:
        first = make_lock("selftest.first")
        second = make_lock("selftest.second")
        with first:
            with second:
                pass
        try:
            with second:
                with first:
                    pass
        except LockOrderError:
            return []
        return ["witness missed a reversed acquisition order"]
    finally:
        witness.reset()
        if not was_active:
            witness.disable()
