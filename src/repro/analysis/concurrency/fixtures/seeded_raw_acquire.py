"""Seeded CC003: a raw acquire whose release is not guaranteed."""

from __future__ import annotations

from repro.storage.locks import make_lock

GATE = make_lock("fixture.gate")


def update_unsafely(values: list[int]) -> int:
    # BUG: no try/finally — if the loop raises, the lock stays held
    # forever and every later caller deadlocks.
    GATE.acquire()
    total = 0
    for value in values:
        total += 10 // value
    GATE.release()
    return total
