"""Seeded TX002: a commit that publishes visibility before durability.

This is a *runtime* fixture: it drives real WAL and snapshot-manager
objects through the buggy ordering — append the commit record, skip
``flush()``, publish — with the same monitor call the production
commit path uses.  The selftest requires the monitor to raise.
"""

from __future__ import annotations

from repro.txn import monitors
from repro.txn.mvcc import SnapshotManager
from repro.txn.wal import WriteAheadLog


def commit_skipping_flush() -> None:
    wal = WriteAheadLog()
    snapshots = SnapshotManager()
    snapshots.register_table("T", rows=0)
    wal.append("begin", 1)
    wal.append("insert", 1, table="T", rows=[[1]])
    wal.append("commit", 1, tables={"T": 1})
    # BUG: wal.flush() belongs here — the durability point must precede
    # the visibility point.  The monitor below is the same check the
    # real Transaction.commit performs before publishing.
    monitors.check_flush_before_publish(wal.pending_records)
    snapshots.publish({"T": 1})
