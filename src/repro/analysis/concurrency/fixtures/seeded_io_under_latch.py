"""Seeded CC002: simulated I/O performed while holding a latch."""

from __future__ import annotations

import time

from repro.storage.locks import make_lock

LATCH = make_lock("fixture.latch")


def transfer_under_latch(delay: float) -> None:
    # BUG: the simulated transfer sleeps *inside* the latch, so every
    # concurrent fault serializes on it instead of overlapping.
    with LATCH:
        time.sleep(delay)
