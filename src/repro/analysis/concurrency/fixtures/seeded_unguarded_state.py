"""Seeded CC004: shared module state written without a lock."""

from __future__ import annotations

RESULT_CACHE: dict[str, int] = {}


def remember(key: str, value: int) -> None:
    # BUG: worker threads share this dict; unsynchronized writes race
    # (check-then-act on the same key loses updates).
    RESULT_CACHE[key] = value


def forget(key: str) -> None:
    RESULT_CACHE.pop(key, None)
