"""Seeded-bug fixtures for the concurrency toolkit's selftest.

Each module here contains exactly the defect class one analyzer layer
exists to catch — a reversed lock order (CC001), I/O under a latch
(CC002), a leak-prone raw acquire (CC003), unguarded shared module
state (CC004), and a commit that publishes before flushing (TX002).
``python -m repro check --selftest`` runs every analyzer over these
and fails unless *all* seeded bugs are detected; that is the guard
against the lint rotting into a tool that reports nothing because it
matches nothing.

The package is excluded from the default ``--concurrency`` scan (and
the fixtures are never imported by production code), so the seeded
bugs cannot leak into the curated-clean baseline.
"""
