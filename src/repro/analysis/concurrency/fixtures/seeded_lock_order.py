"""Seeded CC001: two locks acquired in opposite orders (ABBA deadlock)."""

from __future__ import annotations

from repro.storage.locks import make_lock

LOCK_ALPHA = make_lock("fixture.alpha")
LOCK_BETA = make_lock("fixture.beta")


def alpha_then_beta() -> None:
    with LOCK_ALPHA:
        with LOCK_BETA:
            pass


def beta_then_alpha() -> None:
    # BUG: the reverse nesting of alpha_then_beta — two threads running
    # these concurrently can each hold one lock and wait on the other.
    with LOCK_BETA:
        with LOCK_ALPHA:
            pass
