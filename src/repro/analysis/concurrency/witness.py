"""Runtime lock witness: observed-order deadlock detection.

An opt-in instrumentation shim for the engine's recognized locks (the
catalog :class:`~repro.storage.locks.RWLock`, the buffer pool's pool
lock and stripe latches, the disk lock, the WAL/snapshot/commit locks,
the exchange pool lock, the plan-cache locks).  When enabled — via the
``REPRO_WITNESS=1`` environment variable or :func:`LockWitness.enable`
— every lock created through :func:`repro.storage.locks.make_lock` is
wrapped in a :class:`WitnessLock`, and the ``RWLock`` notifies the
witness from its acquire/release paths.

The witness maintains, per thread, the stack of currently held locks,
and process-wide, a directed **order graph** over lock *names*: an edge
``A -> B`` means some thread attempted to acquire ``B`` while holding
``A``.  Violations raise :class:`LockOrderError` at the acquisition
site *before blocking*:

* **order cycle** — acquiring ``B`` under ``A`` when the graph already
  shows a path ``B -> ... -> A`` (the classic ABBA deadlock, caught
  even when the interleaving that would actually deadlock never
  happens in the run);
* **self deadlock** — re-acquiring a non-reentrant lock the thread
  already holds;
* **read→write upgrade** — acquiring an ``RWLock``'s write side while
  holding only its read side (writer priority makes two upgrading
  readers deadlock each other).

Edges are recorded at *attempt* time, so an interleaving that would
truly deadlock is reported rather than hung.  Disabled, the witness
costs one module-level ``None`` check per RWLock transition and
nothing at all for ``make_lock`` locks (they are only wrapped when the
witness was active at creation time).

This module deliberately imports nothing from the storage or txn
layers; :mod:`repro.storage.locks` registers the witness factory at
enable time, keeping the dependency direction analysis → storage.
"""

from __future__ import annotations

import sys
import threading
from types import TracebackType
from typing import Any

from repro.errors import ReproError

__all__ = ["LockOrderError", "LockWitness", "WitnessLock", "witness"]


class LockOrderError(ReproError):
    """An observed lock-order cycle, self deadlock, or upgrade."""


class _Held:
    """One entry in a thread's held-lock stack."""

    __slots__ = ("name", "obj_id", "mode", "reentrant", "depth", "site")

    def __init__(
        self, name: str, obj_id: int, mode: str, reentrant: bool, site: str
    ) -> None:
        self.name = name
        self.obj_id = obj_id
        self.mode = mode
        self.reentrant = reentrant
        self.depth = 1
        self.site = site


def _acquire_site() -> str:
    """``file:line`` of the innermost frame outside the witness/locks."""
    frame = sys._getframe(1)
    while frame is not None:
        filename = frame.f_code.co_filename
        if not filename.endswith(("witness.py", "locks.py", "contextlib.py")):
            short = filename.rsplit("/", 1)[-1]
            return f"{short}:{frame.f_lineno}"
        frame = frame.f_back  # type: ignore[assignment]
    return "<unknown>"


class LockWitness:
    """Process-wide acquisition-order graph with per-thread stacks."""

    def __init__(self) -> None:
        self.active = False
        # Guards the graph and violation list; a raw lock, never
        # witnessed (it is always a leaf: held only inside the witness).
        self._mutex = threading.Lock()
        self._local = threading.local()
        #: name -> {successor name -> provenance string}.
        self._edges: dict[str, dict[str, str]] = {}
        #: Violations recorded (and raised) so far.
        self.violations: list[str] = []
        #: Count of acquisitions observed while active (diagnostics).
        self.acquisitions = 0

    # -- lifecycle -------------------------------------------------------

    def enable(self) -> "LockWitness":
        """Activate the witness and register the lock factory."""
        from repro.storage import locks

        self.active = True
        locks.set_lock_factory(self._make_lock)
        locks.set_rwlock_hook(self)
        return self

    def disable(self) -> None:
        """Deactivate; already-wrapped locks become pass-through."""
        from repro.storage import locks

        self.active = False
        locks.set_lock_factory(None)
        locks.set_rwlock_hook(None)

    def reset(self) -> None:
        """Forget the observed graph and violations (between tests)."""
        with self._mutex:
            self._edges.clear()
            self.violations.clear()
            self.acquisitions = 0

    def _make_lock(self, name: str, reentrant: bool) -> "WitnessLock":
        return WitnessLock(name, self, reentrant=reentrant)

    # -- per-thread stack ------------------------------------------------

    def _stack(self) -> list[_Held]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    # -- the witness protocol --------------------------------------------

    def before_acquire(
        self, name: str, obj_id: int, mode: str, reentrant: bool
    ) -> None:
        """Record the attempt; raise on a violation *before blocking*."""
        if not self.active:
            return
        stack = self._stack()
        same = [h for h in stack if h.obj_id == obj_id]
        if same:
            if mode == "exclusive" and not reentrant:
                self._violate(
                    f"self deadlock on {name!r}: non-reentrant lock "
                    f"re-acquired at {_acquire_site()}; first held at "
                    f"{same[0].site}"
                )
            if mode == "write" and all(h.mode == "read" for h in same):
                self._violate(
                    f"read->write upgrade on {name!r}: write requested at "
                    f"{_acquire_site()} while the read side is held at "
                    f"{same[0].site} (writer priority deadlocks two "
                    f"upgrading readers)"
                )
            return  # legitimate re-entrancy; counted in after_acquire
        if not stack:
            return
        site = _acquire_site()
        held_names = {h.name for h in stack if h.name != name}
        with self._mutex:
            self.acquisitions += 1
            for held in stack:
                if held.name == name:
                    continue
                edges = self._edges.setdefault(held.name, {})
                edges.setdefault(
                    name,
                    f"{held.name}@{held.site} -> {name}@{site} "
                    f"[{threading.current_thread().name}]",
                )
            cycle = self._find_path(name, held_names)
            if cycle is not None:
                provenance = [
                    self._edges[a][b] for a, b in zip(cycle, cycle[1:])
                ]
                back = next(h for h in stack if h.name == cycle[-1])
                detail = "; ".join(provenance)
                self._violate_locked(
                    f"lock-order cycle: acquiring {name!r} at {site} while "
                    f"holding {back.name!r} (acquired at {back.site}), but "
                    f"the observed order already requires {detail}"
                )

    def after_acquire(
        self, name: str, obj_id: int, mode: str, reentrant: bool
    ) -> None:
        """Push the now-held lock onto the thread's stack."""
        if not self.active:
            return
        stack = self._stack()
        for held in stack:
            if held.obj_id == obj_id and (
                held.mode == mode or held.mode == "write"
            ):
                held.depth += 1
                return
        stack.append(_Held(name, obj_id, mode, reentrant, _acquire_site()))

    def after_release(self, name: str, obj_id: int, mode: str) -> None:
        """Pop (or decrement) the released lock from the stack."""
        if not self.active:
            return
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            held = stack[index]
            if held.obj_id == obj_id and (
                held.mode == mode or held.mode == "write"
            ):
                held.depth -= 1
                if held.depth == 0:
                    del stack[index]
                return

    # -- violations and queries ------------------------------------------

    def _violate(self, message: str) -> None:
        with self._mutex:
            self._violate_locked(message)

    def _violate_locked(self, message: str) -> None:
        self.violations.append(message)
        raise LockOrderError(f"lock witness: {message}")

    def _find_path(self, start: str, targets: set[str]) -> list[str] | None:
        """A path ``start -> ... -> t`` for some ``t`` in ``targets``."""
        parents: dict[str, str | None] = {start: None}
        queue = [start]
        while queue:
            node = queue.pop(0)
            if node in targets:
                path = [node]
                while True:
                    parent = parents[path[-1]]
                    if parent is None:
                        break
                    path.append(parent)
                path.reverse()
                return path
            for succ in self._edges.get(node, ()):
                if succ not in parents:
                    parents[succ] = node
                    queue.append(succ)
        return None

    def check(self) -> None:
        """Raise if any violation was recorded during the run."""
        if self.violations:
            raise LockOrderError(
                "lock witness recorded "
                f"{len(self.violations)} violation(s):\n  "
                + "\n  ".join(self.violations)
            )

    def edge_count(self) -> int:
        with self._mutex:
            return sum(len(v) for v in self._edges.values())

    def report(self) -> str:
        """Human-readable dump of the observed order graph."""
        with self._mutex:
            if not self._edges:
                return "lock witness: no nested acquisitions observed"
            lines = ["lock witness: observed acquisition order"]
            for name in sorted(self._edges):
                for succ in sorted(self._edges[name]):
                    lines.append(f"  {name} -> {succ}")
            if self.violations:
                lines.append(f"  {len(self.violations)} violation(s)!")
            return "\n".join(lines)


class WitnessLock:
    """A mutex/rlock proxy that reports transitions to the witness.

    Mirrors the :class:`threading.Lock` interface (``acquire`` /
    ``release`` / context manager), so it drops into every ``with
    self._lock:`` site unchanged.  When the witness is inactive the
    proxy forwards with a single flag check.
    """

    __slots__ = ("name", "_inner", "_witness", "_reentrant")

    def __init__(
        self, name: str, witness: LockWitness, *, reentrant: bool = False
    ) -> None:
        self.name = name
        self._witness = witness
        self._reentrant = reentrant
        # threading.Lock/RLock are factories, not types; keep this Any.
        self._inner: Any = (
            threading.RLock() if reentrant else threading.Lock()
        )

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        if self._witness.active:
            self._witness.before_acquire(
                self.name, id(self), "exclusive", self._reentrant
            )
        acquired = self._inner.acquire(blocking, timeout)
        if acquired and self._witness.active:
            self._witness.after_acquire(
                self.name, id(self), "exclusive", self._reentrant
            )
        return acquired

    def release(self) -> None:
        self._inner.release()
        if self._witness.active:
            self._witness.after_release(self.name, id(self), "exclusive")

    def locked(self) -> bool:
        if not self._reentrant:
            return bool(self._inner.locked())
        # RLock has no locked() before 3.12; try-acquire probes it.
        if self._inner.acquire(blocking=False):
            self._inner.release()
            return False
        return True

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.release()

    def __repr__(self) -> str:
        kind = "rlock" if self._reentrant else "lock"
        return f"<WitnessLock {self.name!r} ({kind})>"


#: The process-wide witness instance.
witness = LockWitness()
