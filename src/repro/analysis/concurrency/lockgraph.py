"""Static lock-order lint: the CC rules over an interprocedural lock graph.

The analysis parses a set of Python modules, recognizes every lock
declaration (see :mod:`repro.analysis.concurrency.model`), and walks
each function body with a simulated *held-lock stack*: ``with`` blocks
on recognized lock expressions push and pop, and every acquisition,
call, I/O operation, and shared-global write is recorded together with
the locks held at that point.  A second, interprocedural pass closes
the records over the call graph (``self.wal.flush()`` resolves through
the attribute type-hint table) and emits:

* **CC001** — lock-order cycles.  Every ``held → acquired`` pair is an
  edge in a directed graph over lock *names*; any edge inside a
  non-trivial strongly connected component is a potential ABBA
  deadlock.  Same-lock re-acquisition of a non-reentrant kind is the
  degenerate one-node cycle (self-deadlock) and is reported directly.
* **CC002** — simulated I/O (``time.sleep``, ``os.fsync``, ``open``,
  ``read_bytes``/``write_bytes``) performed while holding a lock,
  attributed to the *innermost* held lock.  Interprocedural: calling a
  function whose I/O is not covered by one of its own locks counts at
  the call site.
* **CC003** — a raw ``lock.acquire()`` whose matching ``release()`` is
  not guaranteed by a ``try/finally`` in the same block (the
  context-manager form never triggers this).
* **CC004** — writes to module-level mutable state with no recognized
  lock held.  ``ContextVar`` and ``threading.local`` values are exempt,
  as are import-time (module scope) writes.

Findings reuse the :class:`~repro.analysis.diagnostics.Diagnostic`
machinery — stable rule ids, caret snippets — and carry a *fingerprint*
(``rule:path:function:subject``) so the curated baseline in
:mod:`repro.analysis.concurrency.baseline` can exempt the handful of
intentional exceptions (the WAL's fsync-under-lock durability point,
the buffer pool's read-under-stripe-latch single-flight).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.concurrency.model import (
    LOCK_RETURNING_METHODS,
    MUTABLE_FACTORIES,
    MUTATING_METHODS,
    THREAD_LOCAL_FACTORIES,
    TYPE_HINTS,
    LockDecl,
)
from repro.analysis.diagnostics import Diagnostic, Span

#: (module, class-or-None, function) — the global function key.
FuncId = tuple[str, str | None, str]

#: A held-lock stack entry: (declaration, mode). Mode is "read"/"write"
#: for RWLocks and "exclusive" for everything else.
Held = tuple[LockDecl, str]


@dataclass(frozen=True)
class FileFinding:
    """One concurrency finding, located in a source file."""

    path: str
    function: str
    diagnostic: Diagnostic
    fingerprint: str
    source: str = field(repr=False, compare=False, default="")

    def format(self) -> str:
        return f"{self.path}:{self.diagnostic.format(self.source)}"


@dataclass
class _AcqEvent:
    decl: LockDecl
    mode: str
    node: ast.AST
    held: tuple[Held, ...]


@dataclass
class _CallEvent:
    callee: FuncId
    node: ast.AST
    held: tuple[Held, ...]


@dataclass
class _IOEvent:
    desc: str
    node: ast.AST
    held: tuple[Held, ...]


@dataclass
class _RawAcquire:
    decl: LockDecl
    node: ast.AST
    released_in_finally: bool


@dataclass
class _GlobalWrite:
    var: str
    node: ast.AST
    held: tuple[Held, ...]


@dataclass
class _FuncSummary:
    fid: FuncId
    module: "_ModuleInfo"
    qualname: str
    acquires: list[_AcqEvent] = field(default_factory=list)
    calls: list[_CallEvent] = field(default_factory=list)
    ios: list[_IOEvent] = field(default_factory=list)
    raw_acquires: list[_RawAcquire] = field(default_factory=list)
    global_writes: list[_GlobalWrite] = field(default_factory=list)


@dataclass
class _ModuleInfo:
    name: str
    path: str
    source: str
    tree: ast.Module
    #: local name → dotted target module for ``from X import name``.
    imports: dict[str, str] = field(default_factory=dict)
    #: class names defined here.
    classes: set[str] = field(default_factory=set)
    #: module-level mutable globals (CC004 candidates).
    mutable_globals: set[str] = field(default_factory=set)
    #: module-level names exempt from CC004 (ContextVar, threading.local).
    exempt_globals: set[str] = field(default_factory=set)
    _line_offsets: list[int] = field(default_factory=list)

    def span_of(self, node: ast.AST) -> Span | None:
        lineno = getattr(node, "lineno", None)
        if lineno is None:
            return None
        if not self._line_offsets:
            offset = 0
            for line in self.source.splitlines(keepends=True):
                self._line_offsets.append(offset)
                offset += len(line)
            self._line_offsets.append(offset)
        offsets = self._line_offsets
        start = offsets[min(lineno - 1, len(offsets) - 1)] + node.col_offset
        end_lineno = getattr(node, "end_lineno", lineno) or lineno
        end_col = getattr(node, "end_col_offset", node.col_offset + 1)
        end = offsets[min(end_lineno - 1, len(offsets) - 1)] + (end_col or 0)
        return Span(start, max(end, start + 1))


class LockGraphAnalyzer:
    """Whole-tree analyzer: collect, then resolve, then report."""

    def __init__(self) -> None:
        self.modules: dict[str, _ModuleInfo] = {}
        #: (module, class-or-None, attr) → declaration.
        self.decls: dict[tuple[str, str | None, str], LockDecl] = {}
        self.functions: dict[FuncId, ast.FunctionDef] = {}
        self.summaries: dict[FuncId, _FuncSummary] = {}
        self._closure_memo: dict[FuncId, frozenset[str]] = {}
        self._exposed_memo: dict[FuncId, frozenset[str]] = {}

    # -- loading ---------------------------------------------------------

    def add_module(self, name: str, path: str, source: str) -> None:
        tree = ast.parse(source, filename=path)
        info = _ModuleInfo(name=name, path=path, source=source, tree=tree)
        self.modules[name] = info
        self._collect(info)

    def _collect(self, info: _ModuleInfo) -> None:
        for stmt in info.tree.body:
            if isinstance(stmt, ast.ImportFrom) and stmt.module:
                for alias in stmt.names:
                    info.imports[alias.asname or alias.name] = stmt.module
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    self._classify_global(info, target.id, stmt.value)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                if isinstance(stmt.target, ast.Name):
                    self._classify_global(info, stmt.target.id, stmt.value)
            elif isinstance(stmt, ast.FunctionDef):
                self.functions[(info.name, None, stmt.name)] = stmt
            elif isinstance(stmt, ast.ClassDef):
                info.classes.add(stmt.name)
                for item in stmt.body:
                    if isinstance(item, ast.FunctionDef):
                        self.functions[(info.name, stmt.name, item.name)] = item
                        self._collect_attr_decls(info, stmt.name, item)

    def _classify_global(self, info: _ModuleInfo, name: str, value: ast.expr) -> None:
        decl = self._lock_decl_from(info, None, name, value)
        if decl is not None:
            self.decls[(info.name, None, name)] = decl
            return
        if isinstance(value, ast.Call):
            callee = _call_name(value.func)
            if callee in THREAD_LOCAL_FACTORIES:
                info.exempt_globals.add(name)
                return
            if callee in MUTABLE_FACTORIES:
                info.mutable_globals.add(name)
                return
        if isinstance(value, (ast.Dict, ast.List, ast.Set)):
            info.mutable_globals.add(name)

    def _collect_attr_decls(
        self, info: _ModuleInfo, cls: str, func: ast.FunctionDef
    ) -> None:
        for node in ast.walk(func):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            decl = self._lock_decl_from(info, cls, target.attr, node.value)
            if decl is not None:
                self.decls[(info.name, cls, target.attr)] = decl

    def _lock_decl_from(
        self, info: _ModuleInfo, cls: str | None, attr: str, value: ast.expr
    ) -> LockDecl | None:
        if not isinstance(value, ast.Call):
            return None
        callee = _call_name(value.func)
        if callee == "make_lock":
            name = _str_arg(value, 0, "name")
            if name is None:
                name = _default_name(info.name, cls, attr)
            reentrant = _bool_kwarg(value, "reentrant")
            return LockDecl(
                name=name,
                kind="rlock" if reentrant else "lock",
                module=info.name,
                cls=cls,
                attr=attr,
            )
        if callee == "RWLock":
            name = _str_arg(value, 0, "name")
            if name is None:
                name = _default_name(info.name, cls, attr)
            return LockDecl(
                name=name, kind="rwlock", module=info.name, cls=cls, attr=attr
            )
        if callee in ("Lock", "RLock", "Condition") and _is_threading(value.func):
            kind = {"Lock": "lock", "RLock": "rlock", "Condition": "condition"}[callee]
            return LockDecl(
                name=_default_name(info.name, cls, attr),
                kind=kind,
                module=info.name,
                cls=cls,
                attr=attr,
            )
        if callee in ("tuple", "list") and value.args:
            inner = value.args[0]
            if isinstance(inner, ast.GeneratorExp) and isinstance(
                inner.elt, ast.Call
            ):
                elt = self._lock_decl_from(info, cls, attr, inner.elt)
                if elt is not None:
                    return LockDecl(
                        name=elt.name,
                        kind=elt.kind,
                        module=info.name,
                        cls=cls,
                        attr=attr,
                        collection=True,
                    )
        return None

    # -- resolution ------------------------------------------------------

    def _resolve_instance(
        self, info: _ModuleInfo, cls: str | None, expr: ast.expr
    ) -> tuple[str, str] | None:
        """(module, class) an expression evaluates to, by naming convention."""
        if isinstance(expr, ast.Name):
            if expr.id == "self" and cls is not None:
                return (info.name, cls)
            hint = TYPE_HINTS.get(expr.id)
            if hint is not None and hint[0] in self.modules:
                return hint
            return None
        if isinstance(expr, ast.Attribute):
            hint = TYPE_HINTS.get(expr.attr)
            if hint is not None and hint[0] in self.modules:
                return hint
        return None

    def _resolve_lock(
        self, info: _ModuleInfo, cls: str | None, expr: ast.expr
    ) -> tuple[LockDecl, str] | None:
        """Resolve an expression to (lock declaration, acquisition mode)."""
        if isinstance(expr, ast.Name):
            decl = self.decls.get((info.name, None, expr.id))
            if decl is not None:
                return (decl, "exclusive")
            return None
        if isinstance(expr, ast.Subscript):
            resolved = self._resolve_lock(info, cls, expr.value)
            if resolved is not None and resolved[0].collection:
                return resolved
            return None
        if isinstance(expr, ast.Attribute):
            owner = self._resolve_instance(info, cls, expr.value)
            if owner is not None:
                decl = self.decls.get((owner[0], owner[1], expr.attr))
                if decl is not None:
                    return (decl, "write" if decl.kind == "rwlock" else "exclusive")
            return None
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
            method = expr.func.attr
            spec = LOCK_RETURNING_METHODS.get(method)
            if spec is None:
                return None
            attr, mode = spec
            base = expr.func.value
            if attr:
                # catalog.read_lock() → the catalog's rwlock attribute.
                owner = self._resolve_instance(info, cls, base)
                if owner is not None:
                    decl = self.decls.get((owner[0], owner[1], attr))
                    if decl is not None and decl.kind == "rwlock":
                        return (decl, mode)
                return None
            # rwlock.read() / rwlock.write() on a lock-valued expression.
            resolved = self._resolve_lock(info, cls, base)
            if resolved is not None and resolved[0].kind == "rwlock":
                return (resolved[0], mode)
            return None
        return None

    def _resolve_call(
        self, info: _ModuleInfo, cls: str | None, func: ast.expr
    ) -> FuncId | None:
        if isinstance(func, ast.Name):
            name = func.id
            fid = (info.name, None, name)
            if fid in self.functions:
                return fid
            target = info.imports.get(name)
            if target is not None:
                imported = (target, None, name)
                if imported in self.functions:
                    return imported
                ctor: FuncId = (target, name, "__init__")
                if ctor in self.functions:
                    return ctor
            if name in info.classes:
                ctor = (info.name, name, "__init__")
                if ctor in self.functions:
                    return ctor
            return None
        if isinstance(func, ast.Attribute):
            owner = self._resolve_instance(info, cls, func.value)
            if owner is not None:
                fid = (owner[0], owner[1], func.attr)
                if fid in self.functions:
                    return fid
            return None
        return None

    # -- per-function scan -----------------------------------------------

    def scan(self) -> None:
        for fid, node in self.functions.items():
            module, cls, name = fid
            info = self.modules[module]
            qual = f"{cls}.{name}" if cls else name
            summary = _FuncSummary(fid=fid, module=info, qualname=qual)
            self.summaries[fid] = summary
            self._scan_block(summary, cls, node.body, (), _global_decls(node))

    def _scan_block(
        self,
        summary: _FuncSummary,
        cls: str | None,
        block: list[ast.stmt],
        held: tuple[Held, ...],
        global_names: frozenset[str],
    ) -> None:
        info = summary.module
        for index, stmt in enumerate(block):
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                new_held = held
                for item in stmt.items:
                    resolved = self._resolve_lock(info, cls, item.context_expr)
                    if resolved is not None:
                        decl, mode = resolved
                        summary.acquires.append(
                            _AcqEvent(decl, mode, item.context_expr, new_held)
                        )
                        new_held = new_held + ((decl, mode),)
                    else:
                        self._scan_expr(
                            summary, cls, item.context_expr, new_held, global_names
                        )
                self._scan_block(summary, cls, stmt.body, new_held, global_names)
            elif isinstance(stmt, ast.Try):
                self._scan_block(summary, cls, stmt.body, held, global_names)
                for handler in stmt.handlers:
                    self._scan_block(summary, cls, handler.body, held, global_names)
                self._scan_block(summary, cls, stmt.orelse, held, global_names)
                self._scan_block(summary, cls, stmt.finalbody, held, global_names)
            elif isinstance(stmt, ast.If):
                self._scan_expr(summary, cls, stmt.test, held, global_names)
                self._scan_block(summary, cls, stmt.body, held, global_names)
                self._scan_block(summary, cls, stmt.orelse, held, global_names)
            elif isinstance(stmt, ast.While):
                self._scan_expr(summary, cls, stmt.test, held, global_names)
                self._scan_block(summary, cls, stmt.body, held, global_names)
                self._scan_block(summary, cls, stmt.orelse, held, global_names)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._scan_expr(summary, cls, stmt.iter, held, global_names)
                self._scan_block(summary, cls, stmt.body, held, global_names)
                self._scan_block(summary, cls, stmt.orelse, held, global_names)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Nested functions execute later (task bodies, hooks):
                # scan with an empty held stack; their acquisitions still
                # contribute to this function's transitive closure.
                self._scan_block(
                    summary, cls, stmt.body, (), _global_decls(stmt)
                )
            else:
                self._scan_stmt(
                    summary, cls, stmt, held, global_names, block, index
                )

    def _scan_stmt(
        self,
        summary: _FuncSummary,
        cls: str | None,
        stmt: ast.stmt,
        held: tuple[Held, ...],
        global_names: frozenset[str],
        block: list[ast.stmt],
        index: int,
    ) -> None:
        info = summary.module
        # CC003: a bare `lock.acquire()` expression statement.
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Call)
            and isinstance(stmt.value.func, ast.Attribute)
            and stmt.value.func.attr == "acquire"
        ):
            resolved = self._resolve_lock(info, cls, stmt.value.func.value)
            if resolved is not None:
                released = self._release_guaranteed(
                    info, cls, resolved[0], block, index
                )
                summary.raw_acquires.append(
                    _RawAcquire(resolved[0], stmt.value, released)
                )
                summary.acquires.append(
                    _AcqEvent(resolved[0], resolved[1], stmt.value, held)
                )
                return
        # CC004: writes to tracked module globals.
        if isinstance(stmt, (ast.Assign, ast.AugAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            for target in targets:
                var = _global_write_target(target, info, global_names)
                if var is not None:
                    summary.global_writes.append(_GlobalWrite(var, stmt, held))
            self._scan_expr(summary, cls, stmt.value, held, global_names)
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._scan_expr(summary, cls, child, held, global_names)

    def _scan_expr(
        self,
        summary: _FuncSummary,
        cls: str | None,
        expr: ast.expr,
        held: tuple[Held, ...],
        global_names: frozenset[str],
    ) -> None:
        info = summary.module
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            desc = _io_desc(node)
            if desc is not None:
                summary.ios.append(_IOEvent(desc, node, held))
                continue
            if isinstance(node.func, ast.Attribute):
                # Mutating-method writes on tracked globals.
                base = node.func.value
                if (
                    isinstance(base, ast.Name)
                    and base.id in info.mutable_globals
                    and node.func.attr in MUTATING_METHODS
                ):
                    summary.global_writes.append(
                        _GlobalWrite(base.id, node, held)
                    )
            callee = self._resolve_call(info, cls, node.func)
            if callee is not None:
                summary.calls.append(_CallEvent(callee, node, held))

    def _release_guaranteed(
        self,
        info: _ModuleInfo,
        cls: str | None,
        decl: LockDecl,
        block: list[ast.stmt],
        index: int,
    ) -> bool:
        """True when a try/finally later in the block releases ``decl``."""
        for stmt in block[index + 1 :]:
            if not isinstance(stmt, ast.Try):
                continue
            for node in ast.walk(ast.Module(body=stmt.finalbody, type_ignores=[])):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "release"
                ):
                    resolved = self._resolve_lock(info, cls, node.func.value)
                    if resolved is not None and resolved[0].name == decl.name:
                        return True
        return False

    # -- interprocedural closures ----------------------------------------

    def acquired_closure(self, fid: FuncId) -> frozenset[str]:
        """Lock names possibly acquired during ``fid``, transitively."""
        return self._closure(fid, set())

    def _closure(self, fid: FuncId, active: set[FuncId]) -> frozenset[str]:
        memo = self._closure_memo.get(fid)
        if memo is not None:
            return memo
        if fid in active:
            return frozenset()
        active.add(fid)
        summary = self.summaries.get(fid)
        names: set[str] = set()
        if summary is not None:
            names.update(event.decl.name for event in summary.acquires)
            for call in summary.calls:
                names.update(self._closure(call.callee, active))
        active.discard(fid)
        result = frozenset(names)
        self._closure_memo[fid] = result
        return result

    def exposed_io(self, fid: FuncId) -> frozenset[str]:
        """I/O descriptions in ``fid`` not covered by any of its own locks."""
        return self._exposed(fid, set())

    def _exposed(self, fid: FuncId, active: set[FuncId]) -> frozenset[str]:
        memo = self._exposed_memo.get(fid)
        if memo is not None:
            return memo
        if fid in active:
            return frozenset()
        active.add(fid)
        summary = self.summaries.get(fid)
        descs: set[str] = set()
        if summary is not None:
            for event in summary.ios:
                if not event.held:
                    descs.add(event.desc)
            for call in summary.calls:
                if not call.held:
                    descs.update(self._exposed(call.callee, active))
        active.discard(fid)
        result = frozenset(descs)
        self._exposed_memo[fid] = result
        return result

    # -- findings --------------------------------------------------------

    def findings(self) -> list[FileFinding]:
        out: list[FileFinding] = []
        edges = self._order_edges(out)
        self._cc001_cycles(edges, out)
        self._cc002_io(out)
        self._cc003_raw(out)
        self._cc004_globals(out)
        out.sort(key=lambda f: (f.path, f.diagnostic.rule, f.fingerprint))
        return out

    def _finding(
        self,
        rule: str,
        summary: _FuncSummary,
        node: ast.AST,
        message: str,
        subject_key: str,
        hint: str | None = None,
    ) -> FileFinding:
        info = summary.module
        diag = Diagnostic(
            rule=rule,
            message=message,
            severity="error",
            subject=f"{summary.qualname} in {info.name}",
            span=info.span_of(node),
            hint=hint,
        )
        fingerprint = f"{rule}:{info.path}:{summary.qualname}:{subject_key}"
        return FileFinding(
            path=info.path,
            function=summary.qualname,
            diagnostic=diag,
            fingerprint=fingerprint,
            source=info.source,
        )

    def _order_edges(
        self, out: list[FileFinding]
    ) -> dict[tuple[str, str], list[tuple[_FuncSummary, ast.AST, str]]]:
        """held → acquired edges; emits self-deadlock findings inline."""
        edges: dict[tuple[str, str], list[tuple[_FuncSummary, ast.AST, str]]] = {}
        reported: set[str] = set()

        def add_edge(
            source: str,
            target: str,
            summary: _FuncSummary,
            node: ast.AST,
            via: str,
            reentrant_target: bool,
        ) -> None:
            if source == target:
                if reentrant_target:
                    return
                finding = self._finding(
                    "CC001",
                    summary,
                    node,
                    f"non-reentrant lock '{source}' may be re-acquired "
                    f"while already held{via}",
                    f"{source}->{source}",
                    hint="use make_lock(..., reentrant=True) or restructure "
                    "so the lock is acquired once",
                )
                if finding.fingerprint not in reported:
                    reported.add(finding.fingerprint)
                    out.append(finding)
                return
            edges.setdefault((source, target), []).append((summary, node, via))

        for summary in self.summaries.values():
            for event in summary.acquires:
                for decl, _mode in event.held:
                    add_edge(
                        decl.name,
                        event.decl.name,
                        summary,
                        event.node,
                        "",
                        event.decl.reentrant,
                    )
            for call in summary.calls:
                if not call.held:
                    continue
                for name in self.acquired_closure(call.callee):
                    reentrant = any(
                        d.name == name and d.reentrant
                        for d in self.decls.values()
                    )
                    for decl, _mode in call.held:
                        add_edge(
                            decl.name,
                            name,
                            summary,
                            call.node,
                            f" (via call to {call.callee[2]})",
                            reentrant,
                        )
        return edges

    def _cc001_cycles(
        self,
        edges: dict[tuple[str, str], list[tuple[_FuncSummary, ast.AST, str]]],
        out: list[FileFinding],
    ) -> None:
        graph: dict[str, set[str]] = {}
        for source, target in edges:
            graph.setdefault(source, set()).add(target)
            graph.setdefault(target, set())
        component = _tarjan_components(graph)
        reported: set[str] = set()
        for (source, target), sites in edges.items():
            if component[source] != component[target]:
                continue
            for summary, node, via in sites:
                finding = self._finding(
                    "CC001",
                    summary,
                    node,
                    f"lock-order cycle: acquiring '{target}' while holding "
                    f"'{source}'{via} participates in a cycle "
                    f"({source} -> {target} -> ... -> {source})",
                    f"{source}->{target}",
                    hint="pick one global order for these locks and acquire "
                    "in that order everywhere",
                )
                if finding.fingerprint not in reported:
                    reported.add(finding.fingerprint)
                    out.append(finding)

    def _cc002_io(self, out: list[FileFinding]) -> None:
        reported: set[str] = set()

        def report(
            summary: _FuncSummary, node: ast.AST, lock: str, desc: str, via: str
        ) -> None:
            finding = self._finding(
                "CC002",
                summary,
                node,
                f"simulated I/O ({desc}) while holding lock '{lock}'{via}",
                f"{lock}:{desc}",
                hint="move the I/O outside the lock, or record the "
                "exception in the baseline with a justification",
            )
            if finding.fingerprint not in reported:
                reported.add(finding.fingerprint)
                out.append(finding)

        for summary in self.summaries.values():
            for event in summary.ios:
                if event.held:
                    innermost = event.held[-1][0].name
                    report(summary, event.node, innermost, event.desc, "")
            for call in summary.calls:
                if not call.held:
                    continue
                innermost = call.held[-1][0].name
                for desc in self.exposed_io(call.callee):
                    report(
                        summary,
                        call.node,
                        innermost,
                        desc,
                        f" (via call to {call.callee[2]})",
                    )

    def _cc003_raw(self, out: list[FileFinding]) -> None:
        for summary in self.summaries.values():
            for raw in summary.raw_acquires:
                if raw.released_in_finally:
                    continue
                out.append(
                    self._finding(
                        "CC003",
                        summary,
                        raw.node,
                        f"raw acquire of '{raw.decl.name}' without a "
                        "try/finally release in the same block",
                        raw.decl.name,
                        hint="prefer `with lock:`; cross-function "
                        "release protocols belong in the baseline",
                    )
                )

    def _cc004_globals(self, out: list[FileFinding]) -> None:
        reported: set[str] = set()
        for summary in self.summaries.values():
            info = summary.module
            for write in summary.global_writes:
                if write.var in info.exempt_globals:
                    continue
                if write.held:
                    continue
                finding = self._finding(
                    "CC004",
                    summary,
                    write.node,
                    f"module-level mutable '{write.var}' written without "
                    "a recognized lock held",
                    write.var,
                    hint="guard the write with a make_lock(...) lock, or "
                    "make the state per-thread (threading.local/ContextVar)",
                )
                if finding.fingerprint not in reported:
                    reported.add(finding.fingerprint)
                    out.append(finding)


# -- helpers -------------------------------------------------------------


def _call_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_threading(func: ast.expr) -> bool:
    if isinstance(func, ast.Attribute):
        return isinstance(func.value, ast.Name) and func.value.id == "threading"
    return isinstance(func, ast.Name)


def _str_arg(call: ast.Call, position: int, keyword: str) -> str | None:
    for kw in call.keywords:
        if kw.arg == keyword and isinstance(kw.value, ast.Constant):
            if isinstance(kw.value.value, str):
                return kw.value.value
    if len(call.args) > position:
        arg = call.args[position]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
    return None


def _bool_kwarg(call: ast.Call, keyword: str) -> bool:
    for kw in call.keywords:
        if kw.arg == keyword and isinstance(kw.value, ast.Constant):
            return bool(kw.value.value)
    return False


def _default_name(module: str, cls: str | None, attr: str) -> str:
    short = module.rsplit(".", 1)[-1]
    owner = f"{short}.{cls}" if cls else short
    return f"{owner}.{attr.lstrip('_')}"


def _global_decls(func: ast.FunctionDef | ast.AsyncFunctionDef) -> frozenset[str]:
    names: set[str] = set()
    for stmt in func.body:
        if isinstance(stmt, ast.Global):
            names.update(stmt.names)
    return frozenset(names)


def _global_write_target(
    target: ast.expr, info: _ModuleInfo, global_names: frozenset[str]
) -> str | None:
    if isinstance(target, ast.Name):
        if target.id in global_names and (
            target.id in info.mutable_globals
            or target.id in info.exempt_globals
        ):
            return target.id if target.id not in info.exempt_globals else None
        return None
    if isinstance(target, ast.Subscript) and isinstance(target.value, ast.Name):
        if target.value.id in info.mutable_globals:
            return target.value.id
    if isinstance(target, ast.Tuple):
        for element in target.elts:
            found = _global_write_target(element, info, global_names)
            if found is not None:
                return found
    return None


def _io_desc(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Name) and func.id == "open":
        return "open"
    if isinstance(func, ast.Attribute):
        if isinstance(func.value, ast.Name):
            if func.value.id == "time" and func.attr == "sleep":
                return "time.sleep"
            if func.value.id == "os" and func.attr == "fsync":
                return "os.fsync"
        if func.attr in ("read_bytes", "write_bytes"):
            return f".{func.attr}"
    return None


def _tarjan_components(graph: dict[str, set[str]]) -> dict[str, int]:
    """Strongly connected components, iteratively (no recursion limit)."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    component: dict[str, int] = {}
    counter = 0
    comp_id = 0

    for root in graph:
        if root in index:
            continue
        work: list[tuple[str, Iterator[str]]] = [(root, iter(graph[root]))]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(graph[succ])))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component[member] = comp_id
                    if member == node:
                        break
                comp_id += 1
    return component


# -- entry points --------------------------------------------------------


def _module_name(path: Path, src_root: Path | None) -> str:
    if src_root is not None:
        try:
            relative = path.resolve().relative_to(src_root.resolve())
        except ValueError:
            return path.stem
        parts = list(relative.with_suffix("").parts)
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts) if parts else path.stem
    return path.stem


def _display_path(path: Path, src_root: Path | None) -> str:
    if src_root is not None:
        try:
            return str(path.resolve().relative_to(src_root.resolve()))
        except ValueError:
            pass
    return str(path)


def analyze_paths(
    paths: list[Path], src_root: Path | None = None
) -> list[FileFinding]:
    """Analyze an explicit set of Python files as one program."""
    analyzer = LockGraphAnalyzer()
    for path in sorted(paths):
        analyzer.add_module(
            _module_name(path, src_root),
            _display_path(path, src_root),
            path.read_text(),
        )
    analyzer.scan()
    return analyzer.findings()


def analyze_tree(
    root: Path | None = None,
    src_root: Path | None = None,
    exclude: tuple[str, ...] = ("fixtures",),
) -> list[FileFinding]:
    """Analyze a package tree (default: the installed ``repro`` package)."""
    if root is None:
        import repro

        root = Path(repro.__file__).parent
        src_root = root.parent
    if src_root is None:
        src_root = root.parent
    paths = [
        path
        for path in root.rglob("*.py")
        if not any(part in exclude for part in path.parts)
    ]
    return analyze_paths(paths, src_root=src_root)
