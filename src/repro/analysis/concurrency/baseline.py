"""Curated exemptions for the concurrency lint.

Each entry maps a finding fingerprint (``rule:path:function:subject``)
to the justification for keeping the code as it is.  The baseline is
*closed*: a finding not listed here fails ``check --concurrency``, and
a listed fingerprint that no longer matches anything produces a
warning so stale entries cannot accumulate silently.

The bar for an entry is a written argument that the pattern is correct
— not merely tolerated.  Everything here is an intentional part of the
storage/txn design, documented in DESIGN.md.
"""

from __future__ import annotations

from repro.analysis.concurrency.lockgraph import FileFinding

#: fingerprint → justification.
BASELINE: dict[str, str] = {
    "CC002:repro/storage/buffer.py:BufferPool.get_page:buffer.stripe:time.sleep": (
        "The simulated disk read happens under the per-page *stripe* "
        "latch only (the pool lock is released first).  Holding the "
        "stripe across the read is the single-flight guarantee: two "
        "threads missing on the same page fetch it once, while faults "
        "on other pages overlap their transfer time on other stripes."
    ),
    "CC003:repro/txn/txn.py:Transaction._acquire_write_lock:txn.commit": (
        "The commit lock is deliberately held *across* calls — from a "
        "transaction's first write until commit() or rollback() — so "
        "no intra-function try/finally can exist.  The `_holds_lock` "
        "flag plus the commit/rollback paths (both of which release in "
        "their own try/finally) form the release protocol; the "
        "commit-lock leak test pins it."
    ),
    "CC002:repro/txn/wal.py:WriteAheadLog.flush:wal:open": (
        "flush() IS the durability point: the file append must be "
        "atomic with respect to concurrent append()/flush() staging, "
        "so the write happens under the wal lock by design."
    ),
    "CC002:repro/txn/wal.py:WriteAheadLog.flush:wal:os.fsync": (
        "Same durability point as the open/write above: fsync under "
        "the wal lock orders the on-disk log exactly like the "
        "in-memory staging order.  Releasing the lock between write "
        "and fsync could interleave a concurrent flush and tear the "
        "LSN = byte-offset invariant."
    ),
    "CC002:repro/txn/wal.py:WriteAheadLog.records:wal:.read_bytes": (
        "Reading the durable log under the wal lock serializes "
        "against a concurrent flush's append-then-fsync; records() is "
        "a diagnostic/replay path where a torn read would produce a "
        "spurious truncated-tail verdict."
    ),
    "CC002:repro/txn/wal.py:WriteAheadLog.snapshot_bytes:wal:.read_bytes": (
        "Crash-simulation tests snapshot the durable bytes; the lock "
        "guarantees the snapshot lands on a record boundary (never "
        "mid-flush)."
    ),
}


def apply_baseline(
    findings: list[FileFinding],
) -> tuple[list[FileFinding], list[str], list[str]]:
    """Split findings into (kept, suppressed fingerprints, stale entries).

    ``kept`` are real violations (not in the baseline); ``stale`` are
    baseline fingerprints that matched nothing — candidates for
    deletion, reported as warnings by the CLI.
    """
    kept: list[FileFinding] = []
    suppressed: list[str] = []
    seen: set[str] = set()
    for finding in findings:
        seen.add(finding.fingerprint)
        if finding.fingerprint in BASELINE:
            suppressed.append(finding.fingerprint)
        else:
            kept.append(finding)
    stale = sorted(set(BASELINE) - seen)
    return kept, suppressed, stale
