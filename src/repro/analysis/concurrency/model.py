"""The lock model the static lint reasons over.

A *lock declaration* is a place in the source that creates a lock-like
object: a ``make_lock("name")`` call (the canonical factory from
:mod:`repro.storage.locks`), an ``RWLock(name=...)`` construction, or a
bare ``threading.Lock()`` / ``RLock()`` / ``Condition()``.  Every
declaration gets a stable dotted *lock name* — the same name the
runtime witness sees — so static findings and runtime violations speak
the same vocabulary ("buffer.pool", "txn.commit", "catalog.rwlock").

Because the lint is AST-based and the codebase passes collaborators
positionally, attribute *names* stand in for types: ``self.disk`` is a
``DiskManager`` wherever it appears.  :data:`TYPE_HINTS` is that
curated attribute → class table; it is how the interprocedural pass
resolves ``self.wal.flush()`` to ``WriteAheadLog.flush`` without a
type checker.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Lock kinds, in order of how much reentrancy they permit.
LOCK_KINDS = ("lock", "rlock", "condition", "rwlock")


@dataclass(frozen=True)
class LockDecl:
    """One lock-creating site in the analyzed source.

    Attributes:
        name: stable dotted lock name (shared with the runtime witness).
        kind: ``"lock"``, ``"rlock"``, ``"condition"``, or ``"rwlock"``.
        module: dotted module the declaration lives in.
        cls: class name for ``self.attr`` declarations, None for
            module-level lock globals.
        attr: the attribute or global variable name bound to the lock.
        collection: True for a tuple/list of striped locks sharing one
            name (``self._stripes``); acquisition happens via
            subscription.
    """

    name: str
    kind: str
    module: str
    cls: str | None
    attr: str
    collection: bool = False

    @property
    def reentrant(self) -> bool:
        """Whether same-thread re-acquisition is safe.

        ``threading.Condition`` wraps an RLock by default, and our
        RWLock's read/write sides are reentrant per thread.
        """
        return self.kind in ("rlock", "condition", "rwlock")


#: Attribute (or parameter) name → (module, class) the value holds.
#: The codebase is consistent about these names, which is what lets a
#: name-based table substitute for type inference.
TYPE_HINTS: dict[str, tuple[str, str]] = {
    "buffer": ("repro.storage.buffer", "BufferPool"),
    "disk": ("repro.storage.disk", "DiskManager"),
    "wal": ("repro.txn.wal", "WriteAheadLog"),
    "snapshots": ("repro.txn.mvcc", "SnapshotManager"),
    "heap": ("repro.storage.heap", "HeapFile"),
    "catalog": ("repro.catalog.catalog", "Catalog"),
    "manager": ("repro.txn.txn", "TransactionManager"),
    "rwlock": ("repro.storage.locks", "RWLock"),
    "txn": ("repro.txn.txn", "Transaction"),
}

#: Methods that *return* a lock (context manager) for some class:
#: method name → (attribute holding the lock on that class, mode).
LOCK_RETURNING_METHODS: dict[str, tuple[str, str]] = {
    "read_lock": ("rwlock", "read"),
    "write_lock": ("rwlock", "write"),
    "read": ("", "read"),
    "write": ("", "write"),
}

#: Call/constructor names whose module-level assignment creates shared
#: mutable state the CC004 rule tracks.
MUTABLE_FACTORIES = frozenset(
    {"dict", "list", "set", "bytearray", "OrderedDict", "defaultdict", "deque", "Counter"}
)

#: Module-level values exempt from CC004: per-thread or per-context by
#: construction, so unsynchronized writes are fine.
THREAD_LOCAL_FACTORIES = frozenset({"local", "ContextVar"})

#: Mutating method names on tracked globals that count as writes.
MUTATING_METHODS = frozenset(
    {
        "append",
        "add",
        "update",
        "pop",
        "popitem",
        "extend",
        "insert",
        "remove",
        "discard",
        "clear",
        "setdefault",
        "appendleft",
    }
)
