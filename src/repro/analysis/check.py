"""``python -m repro check`` — static analysis of queries and plans.

For each query (SQL text on the command line, a ``.sql`` file, or the
built-in ``--figure1`` paper workload) the command:

1. parses and qualifies the query, running the nested-scope verifier
   over the original AST (diagnostics carry source spans);
2. runs NEST-G with the chosen JA algorithm and verifies the resulting
   plan — schema chaining through the temp chain, join shape, rejoin
   coverage;
3. runs the Kim-bug lint (KB001–KB003) over the transformed plan;
4. prints the inferred type + nullability of every output column.

Exit status 0 when no error-severity diagnostics were found, 1
otherwise.  ``--ja kim`` / ``--ja kim-outer`` analyze the deliberately
buggy algorithms — the expected outcome there *is* a finding::

    python -m repro check --figure1
    python -m repro check --instance kiessling --ja kim "SELECT ..."
    python -m repro check queries/q2.sql
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.analysis.diagnostics import Findings
from repro.analysis.lint import lint_transform
from repro.analysis.nullability import infer_query_nullability
from repro.analysis.spans import SourceMap
from repro.analysis.verifier import verify_nested, verify_transform
from repro.core.pipeline import Engine, prepare_query
from repro.errors import ReproError
from repro.sql.parser import parse
from repro.workloads import paper_data

#: instance name -> catalog loader.
INSTANCES = {
    "kiessling": paper_data.load_kiessling_instance,
    "operator": paper_data.load_operator_bug_instance,
    "duplicates": paper_data.load_duplicates_instance,
    "suppliers": paper_data.load_supplier_parts,
}

#: The paper's workload queries (Figure 1 and section 5), each with the
#: instance it runs against.
FIGURE1_WORKLOAD: tuple[tuple[str, str, str], ...] = (
    ("Kiessling Q2 (section 5.1)", "kiessling", paper_data.KIESSLING_Q2),
    (
        "Kiessling Q2 with COUNT(*) (section 5.2.1)",
        "kiessling",
        paper_data.KIESSLING_Q2_COUNT_STAR,
    ),
    ("query Q5 (section 5.3)", "operator", paper_data.QUERY_Q5),
    ("Kiessling Q2 on duplicates (section 5.4)", "duplicates", paper_data.KIESSLING_Q2),
    ("introduction example (1)", "suppliers", paper_data.INTRO_QUERY_1),
    ("type-A example (2)", "suppliers", paper_data.TYPE_A_QUERY),
    ("type-N example (3)", "suppliers", paper_data.TYPE_N_QUERY),
    ("type-J example (4)", "suppliers", paper_data.TYPE_J_QUERY),
    ("type-JA example (5)", "suppliers", paper_data.TYPE_JA_QUERY),
)


def check_query(
    sql: str,
    instance: str = "kiessling",
    ja_algorithm: str = "ja2",
    join_method: str = "merge",
) -> tuple[Findings, list[str]]:
    """Statically analyze one query; returns (findings, report lines)."""
    lines: list[str] = []
    findings = Findings()
    catalog = INSTANCES[instance]()
    source_map = SourceMap(sql)

    select = parse(sql)
    # Verify the raw AST first: binding errors found here carry source
    # spans, where the qualification pass would just raise.
    findings.extend(verify_nested(select, catalog, source_map=source_map))
    if findings.errors:
        return findings, lines

    prepared = prepare_query(select, catalog)
    findings.extend(
        verify_nested(
            prepared, catalog, require_qualified=True, source_map=source_map
        )
    )
    if findings.errors:
        return findings, lines

    for name, inferred in infer_query_nullability(prepared, catalog):
        lines.append(f"  output {name}: {inferred.describe()}")

    engine = Engine(
        catalog,
        join_method=join_method,
        ja_algorithm=ja_algorithm,
        verify=False,  # we verify explicitly below, reporting all findings
    )
    try:
        transform = engine.transform(prepared)
    except ReproError as error:
        lines.append(f"  transform not applicable: {error}")
        return findings, lines
    finally:
        catalog.drop_temp_tables()

    plan_findings, temps = verify_transform(
        transform, catalog, join_method=join_method
    )
    findings.extend(plan_findings)
    findings.extend(lint_transform(transform, catalog, temps))

    for info in temps.values():
        described = ", ".join(
            f"{name} {inferred.describe()}"
            for name, inferred in info.outputs.items()
        )
        lines.append(f"  temp {info.name}: {described}")
    return findings, lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro check",
        description="Statically verify and lint queries without executing them.",
    )
    parser.add_argument(
        "queries",
        nargs="*",
        help="SQL strings or .sql files (omit with --figure1)",
    )
    parser.add_argument(
        "--instance",
        default="kiessling",
        choices=sorted(INSTANCES),
        help="schema/data instance to resolve against (default: kiessling)",
    )
    parser.add_argument(
        "--ja",
        default="ja2",
        choices=("ja2", "kim", "kim-outer"),
        help="JA algorithm for the transformed plan (default: ja2)",
    )
    parser.add_argument(
        "--join",
        default="merge",
        choices=("merge", "nested", "hash"),
        help="join method assumed by the plan checks (default: merge)",
    )
    parser.add_argument(
        "--figure1",
        action="store_true",
        help="check the paper's workload queries on their instances",
    )
    parser.add_argument(
        "--concurrency",
        action="store_true",
        help="run the CC lock-order lint over src/repro (baseline-"
        "filtered) plus a TX monitor smoke",
    )
    parser.add_argument(
        "--selftest",
        action="store_true",
        help="prove the concurrency analyzers detect their seeded-bug "
        "fixtures",
    )
    args = parser.parse_args(argv)

    if args.concurrency or args.selftest:
        from repro.analysis.concurrency.cli import (
            run_concurrency_check,
            run_selftest,
        )

        exit_code = 0
        if args.concurrency:
            exit_code = max(exit_code, run_concurrency_check())
        if args.selftest:
            exit_code = max(exit_code, run_selftest())
        if not args.queries and not args.figure1:
            return exit_code
        if exit_code:
            return exit_code

    jobs: list[tuple[str, str, str]] = []
    if args.figure1:
        jobs.extend(FIGURE1_WORKLOAD)
    for entry in args.queries:
        path = Path(entry)
        if entry.lower().endswith(".sql"):
            jobs.append((entry, args.instance, path.read_text()))
        else:
            jobs.append(("query", args.instance, entry))
    if not jobs:
        parser.error("no queries given (pass SQL, .sql files, or --figure1)")

    exit_code = 0
    for title, instance, sql in jobs:
        print(f"== {title} [{instance}, ja={args.ja}] ==")
        try:
            findings, lines = check_query(
                sql,
                instance=instance,
                ja_algorithm=args.ja,
                join_method=args.join,
            )
        except ReproError as error:
            print(f"  error: {error}")
            exit_code = 1
            continue
        for line in lines:
            print(line)
        if findings:
            print(findings.format(sql))
        else:
            print("  no findings")
        if findings.errors:
            exit_code = 1
    return exit_code
