"""Mapping AST nodes back to source spans.

The AST is built from frozen dataclasses compared structurally, so the
nodes carry no positions (adding them would complicate the equality the
transformation tests rely on).  Instead, diagnostics that concern the
*original* query text recover spans by re-lexing the source and looking
for the token sequence that spells the node — ``SP . ORIGIN`` for a
qualified :class:`ColumnRef`, a bare identifier for an unqualified one.

This is a best-effort mapping: when the same reference occurs several
times, occurrences are handed out in source order (callers ask for the
``occurrence``-th match), and synthetic nodes produced by the
transformations simply have no span — their diagnostics carry the
rendered SQL of the offending plan fragment instead.
"""

from __future__ import annotations

from repro.analysis.diagnostics import Span
from repro.errors import LexError
from repro.sql.ast import ColumnRef
from repro.sql.lexer import Token, TokenType, tokenize


class SourceMap:
    """Finds source spans for identifiers and column references."""

    def __init__(self, source: str) -> None:
        self.source = source
        try:
            self._tokens: list[Token] = tokenize(source)
        except LexError:  # pragma: no cover - parse would have failed
            self._tokens = []

    # -- lookups -----------------------------------------------------------

    def column_span(self, ref: ColumnRef, occurrence: int = 0) -> Span | None:
        """Span of the ``occurrence``-th appearance of ``ref``.

        A qualified reference matches both its dotted spelling and, as
        a fallback, the bare column name — qualification is usually the
        *result* of the qualify pass, while the user wrote the bare
        name.
        """
        if ref.table is not None:
            span = self._dotted_span(ref.table, ref.column, occurrence)
            if span is not None:
                return span
        return self.ident_span(ref.column, occurrence)

    def ident_span(self, name: str, occurrence: int = 0) -> Span | None:
        """Span of the ``occurrence``-th identifier token named ``name``."""
        seen = 0
        for index, token in enumerate(self._tokens):
            if not token.matches(TokenType.IDENT, name):
                continue
            # Skip the column part of dotted references; the dotted
            # lookup handles those (a bare "C" should not land on the
            # "C" of "T.C" belonging to another table).
            if index > 0 and self._tokens[index - 1].matches(
                TokenType.PUNCT, "."
            ):
                continue
            if seen == occurrence:
                return Span(token.position, token.position + len(name))
            seen += 1
        return None

    def _dotted_span(
        self, table: str, column: str, occurrence: int
    ) -> Span | None:
        seen = 0
        for index in range(len(self._tokens) - 2):
            first, dot, third = self._tokens[index : index + 3]
            if (
                first.matches(TokenType.IDENT, table)
                and dot.matches(TokenType.PUNCT, ".")
                and third.matches(TokenType.IDENT, column)
            ):
                if seen == occurrence:
                    return Span(
                        first.position, third.position + len(column)
                    )
                seen += 1
        return None
