"""Static plan verifier: invariants checked without executing anything.

Three entry points, matched to the three places plans exist:

* :func:`verify_nested` — a (possibly nested) query AST, as the
  nested-iteration executor receives it: every column reference must
  resolve against its own block's FROM bindings or an enclosing
  block's (correlation), innermost scope first, exactly mirroring
  ``EvalContext.resolve``;
* :func:`verify_single_level` — one canonical/temp-table query, as the
  physical executor receives it: schema chaining (every reference
  resolves against its input row schema), grouped-output coverage,
  ORDER BY resolution, and join-shape invariants (outer joins must
  preserve the accumulated left input, hash joins key on equality
  only);
* :func:`verify_transform` — a whole NEST-G result: each temp-table
  definition is verified in build order against the catalog plus the
  temps defined so far, the canonical query must be nest-free, and
  grouped temps must be rejoined on *all* of their GROUP BY keys
  (section 6.1's rejoin shape — missing keys would match one outer
  row to many groups).

Rule ids are stable (``PV001`` ...); see ``diagnostics.py``.  The
verifier is deliberately no stricter than the executors on valid
plans: everything it rejects would fail (or worse, silently
mis-execute) at runtime.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.analysis.diagnostics import Diagnostic, Findings
from repro.analysis.nullability import (
    Inferred,
    NullabilityInference,
    catalog_provider,
)
from repro.catalog.catalog import Catalog
from repro.engine.relation import ROWID_COLUMN
from repro.sql.ast import (
    ColumnRef,
    Comparison,
    Expr,
    FuncCall,
    Select,
    column_refs,
    conjuncts,
    contains_aggregate,
    walk,
)
from repro.sql.printer import to_sql


# ---------------------------------------------------------------------------
# Temp-table metadata (shared with the Kim-bug lint)
# ---------------------------------------------------------------------------


@dataclass
class TempInfo:
    """What the verifier learned about one temp-table definition."""

    name: str
    query: Select
    #: output column name -> Inferred (type + nullability).
    outputs: dict[str, Inferred] = field(default_factory=dict)
    #: output names whose item expr is one of the GROUP BY expressions.
    group_keys: tuple[str, ...] = ()
    #: output names whose item contains an aggregate call.
    agg_outputs: tuple[str, ...] = ()
    #: aggregate function names, in item order.
    agg_funcs: tuple[str, ...] = ()
    #: True when the definition joins with an outer-preserving marker.
    has_outer_join: bool = False
    #: True for SELECT DISTINCT definitions.
    distinct: bool = False

    @property
    def grouped(self) -> bool:
        return bool(self.query.group_by)


def output_names(select: Select) -> list[str]:
    """Output column names, mirroring the physical executor's rule."""
    names: list[str] = []
    for item in select.items:
        if item.alias:
            names.append(item.alias)
        elif isinstance(item.expr, ColumnRef):
            names.append(item.expr.column)
        else:
            names.append(f"C{len(names) + 1}")
    return names


# ---------------------------------------------------------------------------
# Column resolution
# ---------------------------------------------------------------------------


class _Columns:
    """Per-block binding → column-name sets, with rowid awareness."""

    def __init__(
        self,
        catalog: Catalog,
        temps: Mapping[str, TempInfo] | None = None,
    ) -> None:
        self.catalog = catalog
        self.temps = temps or {}

    def columns_of(self, table: str) -> set[str] | None:
        if table in self.temps:
            return set(self.temps[table].outputs)
        if self.catalog.has_table(table):
            return set(self.catalog.schema_of(table).column_names)
        return None


def _block_bindings(
    select: Select, columns: _Columns, findings: Findings
) -> dict[str, set[str]]:
    """FROM bindings of one block; unknown tables are reported (PV004)."""
    bindings: dict[str, set[str]] = {}
    for ref in select.from_tables:
        cols = columns.columns_of(ref.name)
        if cols is None:
            findings.add(
                Diagnostic(
                    "PV004",
                    f"unknown table {ref.name!r} in FROM clause",
                    subject=to_sql(select),
                )
            )
            cols = set()
        bindings[ref.binding] = cols
    return bindings


def _resolve_ref(
    ref: ColumnRef,
    scopes: list[dict[str, set[str]]],
    findings: Findings,
    *,
    require_qualified: bool = False,
    subject: str | None = None,
    source_map=None,
) -> None:
    """Check one reference against a scope chain (innermost first)."""
    span = source_map.column_span(ref) if source_map is not None else None
    if ref.column == ROWID_COLUMN:
        # The implicit rowid pseudo-column exists on every scanned
        # relation; it must be qualified to name whose rowid it is.
        if ref.table is not None and any(
            ref.table in scope for scope in scopes
        ):
            return
    if ref.table is None and require_qualified:
        findings.add(
            Diagnostic(
                "PV003",
                f"column {ref.column!r} is unqualified after the "
                "qualification pass",
                subject=subject,
                span=span,
            )
        )
        return
    for scope in scopes:  # innermost first
        if ref.table is not None:
            if ref.table in scope:
                if ref.column in scope[ref.table]:
                    return
                # The binding is visible here but lacks the column:
                # deeper scopes cannot rescue a qualified reference.
                findings.add(
                    Diagnostic(
                        "PV001",
                        f"cannot resolve column {ref.qualified()}",
                        subject=subject,
                        span=span,
                    )
                )
                return
            continue
        owners = [b for b, cols in scope.items() if ref.column in cols]
        if len(owners) > 1:
            findings.add(
                Diagnostic(
                    "PV002",
                    f"ambiguous column {ref.column!r} "
                    f"(candidates: {sorted(owners)})",
                    subject=subject,
                    span=span,
                )
            )
            return
        if owners:
            return
    findings.add(
        Diagnostic(
            "PV001",
            f"cannot resolve column {ref.qualified()}",
            subject=subject,
            span=span,
        )
    )


# ---------------------------------------------------------------------------
# Nested-query verification (before the nested-iteration executor)
# ---------------------------------------------------------------------------


def verify_nested(
    select: Select,
    catalog: Catalog,
    *,
    require_qualified: bool = False,
    source_map=None,
) -> Findings:
    """Scope/correlation well-formedness of a (possibly nested) AST.

    Every column reference must bind in its own block or an enclosing
    one, innermost first — the static mirror of ``EvalContext.resolve``.
    With ``require_qualified`` (the pipeline's post-``qualify`` check),
    unqualified references are reported as PV003.
    """
    findings = Findings()
    columns = _Columns(catalog)
    _verify_block_scopes(
        select,
        columns,
        [],
        findings,
        require_qualified=require_qualified,
        source_map=source_map,
    )
    return findings


def _verify_block_scopes(
    select: Select,
    columns: _Columns,
    enclosing: list[dict[str, set[str]]],
    findings: Findings,
    *,
    require_qualified: bool,
    source_map=None,
) -> None:
    local = _block_bindings(select, columns, findings)
    scopes = [local] + enclosing
    subject = to_sql(select)

    # The nested-iteration executor resolves ORDER BY against *output*
    # names (aliases included), not table columns — mirror that.
    order_refs = {
        id(ref)
        for item in select.order_by
        for ref in column_refs(item.expr)
    }
    out_names = set(output_names(select))

    for node in walk(select, into_subqueries=False):
        if isinstance(node, ColumnRef):
            if (
                id(node) in order_refs
                and node.table is None
                and node.column in out_names
            ):
                continue
            _resolve_ref(
                node,
                scopes,
                findings,
                require_qualified=require_qualified,
                subject=subject,
                source_map=source_map,
            )
        elif isinstance(node, Select) and node is not select:
            _verify_block_scopes(
                node,
                columns,
                scopes,
                findings,
                require_qualified=require_qualified,
                source_map=source_map,
            )


# ---------------------------------------------------------------------------
# Single-level (canonical / temp-table) verification
# ---------------------------------------------------------------------------


def verify_single_level(
    select: Select,
    catalog: Catalog,
    temps: Mapping[str, TempInfo] | None = None,
    join_method: str | None = None,
    context: str = "query",
) -> Findings:
    """Invariants of one canonical query against its input schemas."""
    findings = Findings()
    columns = _Columns(catalog, temps)

    for node in walk(select):
        if isinstance(node, Select) and node is not select:
            findings.add(
                Diagnostic(
                    "PV010",
                    f"{context} still contains a nested query block",
                    subject=to_sql(node),
                )
            )
            return findings  # everything below assumes single-level

    local = _block_bindings(select, columns, findings)
    scopes = [local]
    subject = to_sql(select)
    for node in walk(select, into_subqueries=False):
        if isinstance(node, ColumnRef):
            _resolve_ref(node, scopes, findings, subject=subject)

    _verify_join_shape(select, local, findings, join_method, subject)
    if select.group_by or select.has_aggregate_select():
        _verify_grouped_output(select, findings, subject)
    if select.order_by:
        _verify_order_by(select, findings, subject)
    return findings


def _verify_join_shape(
    select: Select,
    local: dict[str, set[str]],
    findings: Findings,
    join_method: str | None,
    subject: str,
) -> None:
    """Outer-join placement and hash-key invariants, statically.

    Mirrors the executor's pairwise FROM-clause accumulation: the
    relation preserved by an outer comparison must be the accumulated
    left input (the transforms lay their FROM clauses out that way),
    full outer joins are unsupported, and an outer marker on something
    that cannot act as a join predicate would be silently demoted to a
    plain filter — all reported as errors before execution starts.
    """

    def binding_of(ref: ColumnRef) -> str | None:
        if ref.table is not None:
            return ref.table
        owners = [b for b, cols in local.items() if ref.column in cols]
        return owners[0] if len(owners) == 1 else None

    order = [ref.binding for ref in select.from_tables]
    for conjunct in conjuncts(select.where):
        outer_marks = [
            node
            for node in walk(conjunct, into_subqueries=False)
            if isinstance(node, Comparison) and node.outer is not None
        ]
        for comparison in outer_marks:
            if comparison.outer == "full":
                findings.add(
                    Diagnostic(
                        "PV006",
                        "full outer join is not supported by the executor",
                        subject=to_sql(comparison),
                    )
                )
                continue
            if comparison is not conjunct or not (
                isinstance(comparison.left, ColumnRef)
                and isinstance(comparison.right, ColumnRef)
            ):
                findings.add(
                    Diagnostic(
                        "PV009",
                        "outer-join marker on a predicate that cannot act "
                        "as a join predicate (it would silently degrade to "
                        "a plain filter)",
                        subject=to_sql(comparison),
                    )
                )
                continue
            left_b = binding_of(comparison.left)
            right_b = binding_of(comparison.right)
            if left_b is None or right_b is None or left_b == right_b:
                findings.add(
                    Diagnostic(
                        "PV009",
                        "outer-join comparison does not join two relations",
                        subject=to_sql(comparison),
                    )
                )
                continue
            preserved = left_b if comparison.outer == "left" else right_b
            padded = right_b if comparison.outer == "left" else left_b
            if left_b not in order or right_b not in order:
                continue  # unresolved binding already reported
            # The executor accumulates left-to-right, so the preserved
            # relation must come before the padded one in FROM order.
            if order.index(preserved) > order.index(padded):
                findings.add(
                    Diagnostic(
                        "PV006",
                        "outer join must preserve the accumulated left "
                        f"input, but {preserved!r} is joined after "
                        f"{padded!r}; reorder the FROM clause",
                        subject=to_sql(comparison),
                    )
                )
            if (
                join_method == "hash"
                and comparison.op != "="
            ):
                # The executor degrades gracefully (sorted theta merge
                # with no hash keys), so this is advice, not an error.
                findings.add(
                    Diagnostic(
                        "PV005",
                        "hash joins key on equality only; this "
                        "non-equality outer comparison falls back to a "
                        "sorted theta merge join",
                        severity="warning",
                        subject=to_sql(comparison),
                    )
                )


def _verify_grouped_output(
    select: Select, findings: Findings, subject: str
) -> None:
    group_exprs = list(select.group_by)
    for expr in group_exprs:
        if not isinstance(expr, ColumnRef):
            findings.add(
                Diagnostic(
                    "PV008",
                    "GROUP BY supports column references only",
                    subject=subject,
                )
            )
            return
    for item in select.items:
        expr = item.expr
        if isinstance(expr, FuncCall) and expr.is_aggregate:
            continue
        if contains_aggregate(expr):
            continue
        if isinstance(expr, ColumnRef):
            if any(_same_column(expr, g) for g in group_exprs):
                continue
            findings.add(
                Diagnostic(
                    "PV008",
                    f"non-aggregated column {expr.qualified()} must "
                    "appear in GROUP BY",
                    subject=subject,
                )
            )
        else:
            findings.add(
                Diagnostic(
                    "PV008",
                    "grouped SELECT items must be columns or aggregates",
                    subject=subject,
                )
            )
    if select.having is not None:
        for ref in column_refs(select.having):
            if not any(_same_column(ref, g) for g in group_exprs):
                # Aggregate arguments are exempt: COUNT(X) in HAVING
                # references X per group, not per output row.
                if _inside_aggregate(select.having, ref):
                    continue
                findings.add(
                    Diagnostic(
                        "PV008",
                        f"HAVING references non-grouped column "
                        f"{ref.qualified()}",
                        subject=subject,
                    )
                )


def _same_column(a: ColumnRef, b: Expr) -> bool:
    if not isinstance(b, ColumnRef):
        return False
    if a.column != b.column:
        return False
    return a.table is None or b.table is None or a.table == b.table


def _inside_aggregate(root: Expr, ref: ColumnRef) -> bool:
    for node in walk(root, into_subqueries=False):
        if isinstance(node, FuncCall) and node.is_aggregate:
            if any(child is ref for child in walk(node.arg)):
                return True
    return False


def _verify_order_by(
    select: Select, findings: Findings, subject: str
) -> None:
    """ORDER BY references must land in the output (executor rules)."""
    names = output_names(select)
    for item in select.order_by:
        expr = item.expr
        if not isinstance(expr, ColumnRef):
            findings.add(
                Diagnostic(
                    "PV011",
                    "ORDER BY supports column references only",
                    subject=subject,
                )
            )
            continue
        # Executor fallbacks, in order: output name match (alias or
        # bare column), then a SELECT item spelling the same reference.
        if expr.column in names:
            continue
        if any(
            isinstance(si.expr, ColumnRef) and si.expr == expr
            for si in select.items
        ):
            continue
        findings.add(
            Diagnostic(
                "PV011",
                f"ORDER BY column {expr.qualified()} is not in the "
                "SELECT list",
                subject=subject,
            )
        )


# ---------------------------------------------------------------------------
# Whole-transform verification
# ---------------------------------------------------------------------------


def collect_temp_infos(
    setup,
    catalog: Catalog,
) -> dict[str, TempInfo]:
    """Chain type/nullability inference through the temp definitions."""
    temps: dict[str, TempInfo] = {}
    inferred_temps: dict[str, dict[str, Inferred]] = {}
    for definition in setup:
        inference = NullabilityInference(
            catalog_provider(catalog, inferred_temps)
        )
        outputs = dict(inference.infer_output(definition.query))
        names = output_names(definition.query)
        query = definition.query
        group_keys = tuple(
            name
            for name, item in zip(names, query.items)
            if isinstance(item.expr, ColumnRef)
            and any(_same_column(item.expr, g) for g in query.group_by)
        )
        agg_pairs = [
            (name, item.expr.name)
            for name, item in zip(names, query.items)
            if isinstance(item.expr, FuncCall) and item.expr.is_aggregate
        ]
        temps[definition.name] = TempInfo(
            name=definition.name,
            query=query,
            outputs=outputs,
            group_keys=group_keys,
            agg_outputs=tuple(name for name, _ in agg_pairs),
            agg_funcs=tuple(func for _, func in agg_pairs),
            has_outer_join=any(
                isinstance(node, Comparison) and node.outer is not None
                for node in walk(query, into_subqueries=False)
            ),
            distinct=query.distinct,
        )
        inferred_temps[definition.name] = outputs
    return temps


def verify_transform(
    transform,
    catalog: Catalog,
    join_method: str | None = None,
) -> tuple[Findings, dict[str, TempInfo]]:
    """Verify a whole NEST-G result (setup temps plus canonical query).

    Returns the findings and the per-temp metadata (reused by the
    Kim-bug lint so inference runs once).
    """
    findings = Findings()
    temps = collect_temp_infos(transform.setup, catalog)

    seen: dict[str, TempInfo] = {}
    for definition in transform.setup:
        findings.extend(
            verify_single_level(
                definition.query,
                catalog,
                temps=seen,
                join_method=join_method,
                context=f"temp table {definition.name}",
            )
        )
        _verify_rejoin_coverage(definition.query, seen, findings)
        seen[definition.name] = temps[definition.name]

    findings.extend(
        verify_single_level(
            transform.query,
            catalog,
            temps=seen,
            join_method=join_method,
            context="canonical query",
        )
    )
    _verify_rejoin_coverage(transform.query, seen, findings)
    return findings, temps


def _verify_rejoin_coverage(
    consumer: Select,
    temps: Mapping[str, TempInfo],
    findings: Findings,
) -> None:
    """PV007: a grouped temp must be rejoined on all its GROUP BY keys.

    When the consumer equates only some of a grouped temp's keys, one
    consumer row can match several groups — multiplicities and
    aggregate attribution break (section 6.1 rejoins TEMP3 on every
    grouped outer column for exactly this reason).
    """
    local = {ref.binding for ref in consumer.from_tables}
    for ref in consumer.from_tables:
        info = temps.get(ref.name)
        if info is None or not info.grouped or not info.group_keys:
            continue
        binding = ref.binding
        equated: set[str] = set()
        for conjunct in conjuncts(consumer.where):
            if (
                isinstance(conjunct, Comparison)
                and conjunct.op == "="
                and isinstance(conjunct.left, ColumnRef)
                and isinstance(conjunct.right, ColumnRef)
            ):
                for mine, other in (
                    (conjunct.left, conjunct.right),
                    (conjunct.right, conjunct.left),
                ):
                    if (
                        mine.table == binding
                        and other.table != binding
                        and other.table in local
                    ):
                        equated.add(mine.column)
        missing = [key for key in info.group_keys if key not in equated]
        if missing:
            findings.add(
                Diagnostic(
                    "PV007",
                    f"grouped temp {info.name} is rejoined without "
                    f"equating its GROUP BY key(s) {missing}; one row "
                    "can match several groups",
                    subject=to_sql(consumer),
                    hint="join on every grouped column (section 6.1, "
                    "step 3)",
                )
            )
