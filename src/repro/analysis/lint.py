"""The Kim-bug lint: section 5's three bugs as static rules.

The paper's section 5 shows three ways Kim's NEST-JA transformation
silently returns wrong answers.  Each has a recognizable *shape* in the
transformed plan (temp-table definitions plus the queries that consume
them), so each is a lint rule with a stable id:

``KB001`` — the **COUNT bug** (sections 5.1–5.2).  A grouped temp that
    computes ``COUNT`` from the inner relation alone has no groups for
    outer values with no matches; rejoining it loses exactly those
    outer rows (Kiessling's Q2 returns the empty set instead of
    {10, 8}).  The rule also fires on the half-fixed shape: an
    outer-joined COUNT temp rejoined with a plain (non-null-safe) ``=``
    on a *nullable* group key — the NULL-keyed COUNT=0 group the outer
    join so carefully kept is dropped again by the rejoin.  This second
    form is where the nullability inference earns its keep: when the
    group key is provably NOT NULL (a primary-key join column), plain
    ``=`` is fine and the rule stays silent.

``KB002`` — the **non-equality operator bug** (section 5.3).  Kim's
    temp groups by the *inner* join column and keeps the original
    comparison operator in the rejoin, so a consumer comparing a temp's
    group key with ``<``/``>``/... aggregates per inner value instead
    of over the operator's whole range.  NEST-JA2 moves the original
    operator into the temp-building join and rejoins on equality, so
    the shape never appears in its output.

``KB003`` — the **duplicates bug** (section 5.4).  When a relation is
    joined into an aggregating temp *alongside* the aggregate's source
    (to restrict or pad it), each of its rows multiplies the rows the
    GROUP BY merges into the aggregate.  If that joined-in side reaches
    a base relation through a chain of projections *none of which
    eliminates duplicates*, and a consumer of the temp scans that same
    relation, duplicate rows inflate the aggregate (COUNT doubles for a
    twice-listed part).  The aggregate's own source relation is exempt:
    its duplicates are the data being aggregated.  NEST-JA2's step 1
    projects the outer join column ``DISTINCT``, which cuts the chain.

All three are reported as errors: a plan with these shapes computes
wrong answers.  The pipeline downgrades them to warnings when the user
explicitly asked for a bug-reproducing algorithm (``ja_algorithm`` of
``"kim"`` or ``"kim-outer"``) — the bug gallery must still run.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.analysis.diagnostics import Diagnostic, Findings
from repro.analysis.verifier import TempInfo, collect_temp_infos
from repro.catalog.catalog import Catalog
from repro.sql.ast import (
    ColumnRef,
    Comparison,
    FuncCall,
    Select,
    column_refs,
    conjuncts,
    walk,
)
from repro.sql.printer import to_sql

#: Comparison operators that are not (null-safe or plain) equality.
_NON_EQUALITY_OPS = frozenset({"<", "<=", ">", ">=", "<>", "!="})


def lint_transform(
    transform,
    catalog: Catalog,
    temps: Mapping[str, TempInfo] | None = None,
) -> Findings:
    """Run the Kim-bug rules over a transformed plan.

    Args:
        transform: a ``TransformResult``/``GeneralTransform`` (anything
            with ``setup`` and ``query``).
        catalog: resolves base-table schemas (for nullability).
        temps: per-temp metadata from
            :func:`repro.analysis.verifier.verify_transform`; computed
            here when the verifier did not run first.
    """
    findings = Findings()
    if temps is None:
        temps = collect_temp_infos(transform.setup, catalog)

    consumers: list[Select] = [d.query for d in transform.setup]
    consumers.append(transform.query)

    for consumer in consumers:
        local_temps = {
            ref.binding: temps[ref.name]
            for ref in consumer.from_tables
            if ref.name in temps and ref.name != _defining_name(consumer, transform)
        }
        for binding, info in local_temps.items():
            _check_count_bug(consumer, binding, info, findings)
            _check_non_equality(consumer, binding, info, findings)
            _check_duplicates(consumer, binding, info, temps, catalog, findings)
    return findings


def _defining_name(consumer: Select, transform) -> str | None:
    for definition in transform.setup:
        if definition.query is consumer:
            return definition.name
    return None


# ---------------------------------------------------------------------------
# KB001 — the COUNT bug
# ---------------------------------------------------------------------------


def _check_count_bug(
    consumer: Select,
    binding: str,
    info: TempInfo,
    findings: Findings,
) -> None:
    if not info.grouped or "COUNT" not in info.agg_funcs:
        return
    if not info.has_outer_join:
        # Kim's shape: the temp groups the inner relation alone, so an
        # outer value with no inner matches has *no group at all* —
        # COUNT can never be 0 and the rejoin loses the outer row.
        findings.add(
            Diagnostic(
                "KB001",
                f"COUNT temp {info.name} is built without an "
                "outer-preserving join: outer values with no matches "
                "have no group, so COUNT can never be 0 and the rejoin "
                "silently drops those outer rows",
                subject=to_sql(consumer),
                hint="build the temp with an outer join against a "
                "projection of the outer relation (NEST-JA2 step 2, "
                "section 6.1)",
            )
        )
        return
    # Half-fixed shape: outer join present, but the rejoin equality is
    # not null-safe while the group key can be NULL.
    for conjunct in conjuncts(consumer.where):
        if not isinstance(conjunct, Comparison) or conjunct.op != "=":
            continue
        if conjunct.null_safe:
            continue
        for side in (conjunct.left, conjunct.right):
            if (
                isinstance(side, ColumnRef)
                and side.table == binding
                and side.column in info.group_keys
            ):
                inferred = info.outputs.get(side.column)
                if inferred is not None and not inferred.nullable:
                    continue  # provably NOT NULL: plain = is safe
                findings.add(
                    Diagnostic(
                        "KB001",
                        f"outer-joined COUNT temp {info.name} is "
                        f"rejoined on nullable group key {side.column!r} "
                        "with a plain '=': the NULL-keyed COUNT=0 group "
                        "is dropped again by the rejoin",
                        subject=to_sql(conjunct),
                        hint="use a null-safe equality (<=>) for the "
                        "rejoin, or prove the key NOT NULL",
                    )
                )


# ---------------------------------------------------------------------------
# KB002 — the non-equality operator bug
# ---------------------------------------------------------------------------


def _check_non_equality(
    consumer: Select,
    binding: str,
    info: TempInfo,
    findings: Findings,
) -> None:
    if not info.grouped:
        return
    for conjunct in conjuncts(consumer.where):
        if (
            not isinstance(conjunct, Comparison)
            or conjunct.op not in _NON_EQUALITY_OPS
        ):
            continue
        for side in (conjunct.left, conjunct.right):
            if (
                isinstance(side, ColumnRef)
                and side.table == binding
                and side.column in info.group_keys
            ):
                findings.add(
                    Diagnostic(
                        "KB002",
                        f"temp {info.name} groups by {side.column!r} but "
                        f"is joined with '{conjunct.op}': the aggregate "
                        "was computed per inner value, not over the "
                        "operator's range (section 5.3)",
                        subject=to_sql(conjunct),
                        hint="apply the original operator while building "
                        "the temp and rejoin on equality (NEST-JA2)",
                    )
                )


# ---------------------------------------------------------------------------
# KB003 — the duplicates bug
# ---------------------------------------------------------------------------


def _duplicate_preserving_origins(
    table: str,
    temps: Mapping[str, TempInfo],
    catalog: Catalog,
) -> set[str]:
    """Base tables reachable from ``table`` with duplicates intact.

    A DISTINCT projection or a GROUP BY eliminates duplicates and cuts
    the chain; anything else passes each input row's multiplicity
    through to the aggregate.
    """
    info = temps.get(table)
    if info is None:
        return {table} if catalog.has_table(table) else set()
    if info.distinct or info.grouped:
        return set()
    origins: set[str] = set()
    for ref in info.query.from_tables:
        origins |= _duplicate_preserving_origins(ref.name, temps, catalog)
    return origins


def _aggregate_arg_bindings(select: Select) -> set[str]:
    """FROM bindings whose columns appear inside aggregate arguments."""
    bindings: set[str] = set()
    for item in select.items:
        for node in walk(item.expr, into_subqueries=False):
            if isinstance(node, FuncCall) and node.is_aggregate:
                for ref in column_refs(node.arg):
                    if ref.table is not None:
                        bindings.add(ref.table)
    return bindings


def _check_duplicates(
    consumer: Select,
    binding: str,
    info: TempInfo,
    temps: Mapping[str, TempInfo],
    catalog: Catalog,
    findings: Findings,
) -> None:
    if not info.grouped or not info.agg_funcs:
        return
    if len(info.query.from_tables) < 2:
        # A plain GROUP BY over one relation aggregates that relation's
        # rows as they are — duplicates there are data, not inflation.
        return
    # Relations joined in *alongside* the aggregate's source multiply
    # its rows: if duplicates survive from a base table to such a
    # relation, the temp's GROUP BY merges the copies *into* the
    # aggregate — that is exactly the section 5.4 bug.  The relation
    # feeding the aggregate arguments is the data being aggregated and
    # is exempt.
    arg_sides = _aggregate_arg_bindings(info.query)
    feeding: set[str] = set()
    for ref in info.query.from_tables:
        if ref.binding in arg_sides:
            continue
        feeding |= _duplicate_preserving_origins(ref.name, temps, catalog)
    if not feeding:
        return
    rescanned = feeding & {ref.name for ref in consumer.from_tables}
    for table in sorted(rescanned):
        findings.add(
            Diagnostic(
                "KB003",
                f"aggregate temp {info.name} reads base table {table} "
                "without duplicate elimination, and this consumer scans "
                f"{table} again: duplicate rows inflate the aggregate "
                "(section 5.4)",
                subject=to_sql(consumer),
                hint="project the outer join column DISTINCT before the "
                "aggregating join (NEST-JA2 step 1)",
            )
        )
