"""Diagnostics: what the static analyses report and how it is shown.

Every finding — a plan-invariant violation, a Kim-bug lint hit, a
nullability inconsistency — is a :class:`Diagnostic` with a stable rule
id, a severity, a human-readable message, and (when the finding maps
back to the original SQL text) a source :class:`Span` rendered as a
caret snippet.  Rule ids are stable across releases so tests, CI logs
and the difftest can match on them:

* ``PV0xx`` — plan verifier invariants (always errors);
* ``KB00x`` — Kim-bug lint rules, mapping the paper's section 5 bugs
  (errors on the deliberately buggy algorithms, absent on NEST-JA2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ColumnVerificationError, VerificationError

#: Severity levels, in increasing order of, well, severity.
SEVERITIES = ("note", "warning", "error")

#: Rules whose findings are column-binding failures; they raise
#: :class:`ColumnVerificationError` (a BindError) rather than the plain
#: :class:`VerificationError` so existing error handling keeps working.
BIND_RULES = frozenset({"PV001", "PV002", "PV003"})


@dataclass(frozen=True)
class Span:
    """A half-open character range ``[start, end)`` in the source SQL."""

    start: int
    end: int

    def line_col(self, source: str) -> tuple[int, int]:
        """1-based (line, column) of the span start in ``source``."""
        prefix = source[: self.start]
        line = prefix.count("\n") + 1
        column = self.start - (prefix.rfind("\n") + 1) + 1
        return line, column


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding.

    Attributes:
        rule: stable rule id (``PV001``, ``KB002``, ...).
        message: one-line human-readable description.
        severity: ``"error"``, ``"warning"``, or ``"note"``.
        subject: the offending SQL fragment or temp-table definition,
            rendered with :func:`repro.sql.printer.to_sql` (plans are
            synthetic, so this is how plan-level findings stay
            readable).
        span: character range in the *original* query text, when the
            finding maps back to it.
        hint: optional remediation note (what the paper's fix is).
    """

    rule: str
    message: str
    severity: str = "error"
    subject: str | None = None
    span: Span | None = None
    hint: str | None = None

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"invalid severity {self.severity!r}")

    def format(self, source: str | None = None) -> str:
        """Render the diagnostic, with a caret snippet when possible."""
        location = ""
        if self.span is not None and source is not None:
            line, column = self.span.line_col(source)
            location = f"{line}:{column}: "
        lines = [f"{location}{self.severity} [{self.rule}] {self.message}"]
        if self.span is not None and source is not None:
            lines.extend(_snippet(source, self.span))
        if self.subject:
            lines.append(f"    in: {self.subject}")
        if self.hint:
            lines.append(f"    hint: {self.hint}")
        return "\n".join(lines)


def _snippet(source: str, span: Span) -> list[str]:
    """The source line containing ``span`` plus a caret underline."""
    start = source.rfind("\n", 0, span.start) + 1
    end = source.find("\n", span.start)
    if end < 0:
        end = len(source)
    text = source[start:end]
    offset = span.start - start
    width = max(1, min(span.end, end) - span.start)
    stripped = text.lstrip()
    indent_cut = len(text) - len(stripped)
    return [
        f"    {stripped}",
        "    " + " " * (offset - indent_cut) + "^" * width,
    ]


@dataclass
class Findings:
    """A mutable collection of diagnostics with convenience queries."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, other: "Findings | list[Diagnostic]") -> None:
        if isinstance(other, Findings):
            self.diagnostics.extend(other.diagnostics)
        else:
            self.diagnostics.extend(other)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    def rules(self) -> set[str]:
        return {d.rule for d in self.diagnostics}

    def by_rule(self, rule: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.rule == rule]

    def __bool__(self) -> bool:
        return bool(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def format(self, source: str | None = None) -> str:
        if not self.diagnostics:
            return "no findings"
        return "\n".join(d.format(source) for d in self.diagnostics)

    def raise_errors(self, context: str = "plan verification failed") -> None:
        """Raise when any error-severity diagnostic is present.

        Column-binding rules raise :class:`ColumnVerificationError` (a
        ``BindError``), everything else :class:`VerificationError` (a
        ``PlanError``) — matching what the executors would eventually
        have raised dynamically.
        """
        errors = self.errors
        if not errors:
            return
        message = f"{context}: " + "; ".join(
            f"[{d.rule}] {d.message}" for d in errors
        )
        if all(d.rule in BIND_RULES for d in errors):
            raise ColumnVerificationError(message, tuple(errors))
        raise VerificationError(message, tuple(errors))
