-- Kiessling's Q2 (section 5.1): parts whose quantity-on-hand equals
-- the number of pre-1980 shipments.  The COUNT-bug query.
SELECT PNUM FROM PARTS
WHERE QOH = (SELECT COUNT(SHIPDATE) FROM SUPPLY
             WHERE SUPPLY.PNUM = PARTS.PNUM
               AND SHIPDATE < '1980-01-01')
