-- Section 5.3 shape: a non-equality correlation operator.  NEST-JA2
-- moves the `<` into the temp-building join and rejoins on equality.
SELECT PNUM FROM PARTS
WHERE QOH = (SELECT COUNT(SHIPDATE) FROM SUPPLY
             WHERE SUPPLY.PNUM < PARTS.PNUM)
