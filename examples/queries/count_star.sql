-- Section 5.2.1: COUNT(*) must become COUNT(join column) inside the
-- transformed temp or the outer join's NULL padding is miscounted.
SELECT PNUM FROM PARTS
WHERE QOH = (SELECT COUNT(*) FROM SUPPLY
             WHERE SUPPLY.PNUM = PARTS.PNUM)
