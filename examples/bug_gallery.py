"""The bug gallery: section 5's three NEST-JA failures, side by side.

For each scenario the script prints the paper's tables: the instance,
the temporary table each algorithm builds, and the final results of
nested iteration (ground truth), Kim's NEST-JA (buggy), and the
paper's NEST-JA2 (fixed).

Run with::

    python examples/bug_gallery.py
"""

from repro.bench.reporting import format_table
from repro.core.pipeline import Engine
from repro.optimizer.executor import SingleLevelExecutor
from repro.workloads.paper_data import (
    KIESSLING_Q2,
    QUERY_Q5,
    load_duplicates_instance,
    load_kiessling_instance,
    load_operator_bug_instance,
)

SCENARIOS = [
    (
        "5.1 The COUNT bug (Kiessling's Q2)",
        load_kiessling_instance,
        KIESSLING_Q2,
        "COUNT over an empty group must be 0, but a plain GROUP BY on "
        "the inner relation has no empty groups: part 8 vanishes.",
    ),
    (
        "5.3 Relations other than equality (query Q5)",
        load_operator_bug_instance,
        QUERY_Q5,
        "With SUPPLY.PNUM < PARTS.PNUM the aggregate ranges over all "
        "smaller part numbers; grouping SUPPLY by its own PNUM "
        "aggregates the wrong sets and invents part 10.",
    ),
    (
        "5.4 Duplicates in the outer join column",
        load_duplicates_instance,
        KIESSLING_Q2,
        "PARTS holds duplicate PNUMs; joining the raw outer relation "
        "would double the COUNTs, so NEST-JA2 projects it DISTINCT "
        "first.",
    ),
]


def dump_table(catalog, name: str) -> str:
    rows = [list(row) for row in catalog.heap_of(name).scan()]
    headers = list(catalog.schema_of(name).column_names)
    return format_table(headers, rows, title=name)


def show_temp_tables(catalog, engine: Engine, sql: str) -> None:
    transform = engine.transform(sql)
    for definition in transform.setup[transform.built:]:
        executor = SingleLevelExecutor(catalog, "merge")
        relation = executor.execute(definition.query)
        catalog.register_temp(
            definition.name, relation.heap, executor.output_names(definition.query)
        )
    for definition in transform.setup:
        print(definition.describe())
        print(dump_table(catalog, definition.name))
    catalog.drop_temp_tables()


def main() -> None:
    for title, loader, sql, why in SCENARIOS:
        print("=" * 72)
        print(title)
        print(why)
        print()

        catalog = loader()
        print(dump_table(catalog, "PARTS"))
        print()
        print(dump_table(catalog, "SUPPLY"))
        print()
        print("query:", " ".join(sql.split()))
        print()

        truth = Engine(catalog).run(sql, method="nested_iteration")
        print("nested iteration (truth):", sorted(truth.result.rows))

        buggy = Engine(catalog, ja_algorithm="kim").run(sql, method="transform")
        print("Kim NEST-JA (buggy):     ", sorted(buggy.result.rows))

        fixed = Engine(catalog).run(sql, method="transform")
        print("NEST-JA2 (fixed):        ", sorted(fixed.result.rows))
        print()

        print("-- Kim's temporary table --")
        show_temp_tables(catalog, Engine(catalog, ja_algorithm="kim"), sql)
        print("-- NEST-JA2's temporary tables --")
        show_temp_tables(catalog, Engine(catalog), sql)
        print()


if __name__ == "__main__":
    main()
