"""The paper's introduction: suppliers, parts, and shipments.

Runs the paper's example queries (1)-(5), one for each nesting type,
showing the classification, the transformation each receives, and the
page I/O of both evaluation strategies.

Run with::

    python examples/supplier_parts.py
"""

from repro.bench.harness import compare_methods
from repro.core.classify import catalog_resolver, classify_block
from repro.core.pipeline import Engine
from repro.sql.parser import parse
from repro.workloads.paper_data import (
    INTRO_QUERY_1,
    TYPE_A_QUERY,
    TYPE_J_QUERY,
    TYPE_JA_QUERY,
    TYPE_N_QUERY,
    load_supplier_parts,
)

EXAMPLES = [
    ("(1) suppliers of part P2", INTRO_QUERY_1, "bag"),
    ("(2) type-A nesting", TYPE_A_QUERY, "bag"),
    ("(3) type-N nesting", TYPE_N_QUERY, "bag"),
    # Paper-literal NEST-N-J can duplicate outer rows for type-J
    # (DESIGN.md, "NEST-N-J and duplicates") — compare as sets.
    ("(4) type-J nesting", TYPE_J_QUERY, "set"),
    ("(5) type-JA nesting", TYPE_JA_QUERY, "bag"),
]


def main() -> None:
    catalog = load_supplier_parts(buffer_pages=8)
    engine = Engine(catalog)
    resolver = catalog_resolver(catalog)

    for title, sql, check in EXAMPLES:
        print("=" * 72)
        print(title)
        print(sql.strip())

        nested = classify_block(parse(sql), resolver)
        if nested:
            print(f"classification: type-{nested[0].nesting.value}")
        else:
            print("classification: unnested")

        ni, tr = compare_methods(catalog, sql, check=check)
        print(f"nested iteration : {sorted(set(ni.rows))}  [{ni.page_ios} page I/Os]")
        print(f"transformed      : {sorted(set(tr.rows))}  [{tr.page_ios} page I/Os]")

        report = engine.run(sql, method="transform")
        if report.setup_sql:
            for line in report.setup_sql:
                print(f"  temp: {line}")
        print(f"  canonical: {report.canonical_sql}")
        print()


if __name__ == "__main__":
    main()
