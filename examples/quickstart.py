"""Quickstart: create a database, run a nested query both ways.

Run with::

    python examples/quickstart.py
"""

from repro import Database

def main() -> None:
    # A database is a simulated disk + a buffer pool of B pages.
    # B matters: it is the paper's main-memory buffer space.
    db = Database(buffer_pages=6)

    # The PARTS/SUPPLY schema from the paper's section 5 (Kiessling).
    db.create_table("PARTS", ["PNUM", "QOH"], primary_key=["PNUM"])
    db.create_table("SUPPLY", ["PNUM", "QUAN", ("SHIPDATE", "date")])
    db.insert("PARTS", [(3, 6), (10, 1), (8, 0)])
    db.insert(
        "SUPPLY",
        [
            (3, 4, "1979-07-03"),
            (3, 2, "1978-10-01"),
            (10, 1, "1978-06-08"),
            (10, 2, "1981-08-10"),
            (8, 5, "1983-05-07"),
        ],
    )

    # Kiessling's query Q2: parts whose quantity-on-hand equals the
    # number of shipments before 1980 — a type-JA nested query.
    q2 = """
        SELECT PNUM
        FROM PARTS
        WHERE QOH = (SELECT COUNT(SHIPDATE)
                     FROM SUPPLY
                     WHERE SUPPLY.PNUM = PARTS.PNUM AND
                           SHIPDATE < '1980-01-01')
    """

    print("=== nested iteration (System R's strategy) ===")
    baseline = db.run(q2, method="nested_iteration")
    print("rows:", sorted(baseline.result.rows))
    print(baseline.io.format())

    print()
    print("=== transformation (NEST-JA2 + merge joins) ===")
    transformed = db.run(q2, method="transform")
    print("rows:", sorted(transformed.result.rows))
    print(transformed.io.format())

    print()
    print("=== what the optimizer did ===")
    print(db.explain(q2))


if __name__ == "__main__":
    main()
