"""Cost explorer: the section 7 model against the measured engine.

Reproduces the paper's worked example (3 050 vs ~475 page I/Os), prints
the four NEST-JA2 evaluation variants, and sweeps the inner-relation
size to show where nested iteration and transformation cross over —
both analytically and measured on the simulated storage engine.

Run with::

    python examples/cost_explorer.py
"""

from repro.bench.harness import compare_methods
from repro.bench.reporting import format_table, savings_percent
from repro.optimizer.cost import (
    CostParameters,
    ja2_costs,
    nested_iteration_cost,
    nested_iteration_cost_auto,
)
from repro.workloads.generators import (
    GENERATED_JA_QUERY,
    PartsSupplySpec,
    build_parts_supply,
)


def section_7_4() -> None:
    print("=" * 72)
    print("Section 7.4 — the paper's worked example")
    params = CostParameters.paper_section_7_4()
    ni = nested_iteration_cost(params)
    breakdown = ja2_costs(params)
    rows = [
        ["nested iteration", ni, "3,050 (paper)"],
        ["NEST-JA2 merge+merge", round(breakdown.merge_merge, 1), "about 475 (paper)"],
        ["NEST-JA2 merge+nested", round(breakdown.merge_nested, 1), ""],
        ["NEST-JA2 nested+merge", round(breakdown.nested_merge, 1), ""],
        ["NEST-JA2 nested+nested", round(breakdown.nested_nested, 1), ""],
    ]
    print(format_table(["method", "model page I/Os", "paper"], rows))
    best_name, best_value = breakdown.best()
    print(f"optimizer's pick among the four variants: {best_name} "
          f"({best_value:,.1f} page I/Os)")
    print()


def analytic_sweep() -> None:
    print("=" * 72)
    print("Analytic sweep: inner-relation size Pj (Pi=50, B=6, f(i)Ni=100)")
    rows = []
    for pj in (2, 5, 10, 30, 100, 300):
        params = CostParameters(
            pi=50, pj=pj, pt2=7, pt3=max(1, pj // 3), pt4=8, pt=5,
            buffer_pages=6, fi_ni=100, nt2=100,
        )
        ni = nested_iteration_cost_auto(params)
        tr = ja2_costs(params).best()[1]
        winner = "nested iteration" if ni < tr else "transformation"
        rows.append([pj, round(ni), round(tr, 1), winner])
    print(format_table(
        ["Pj (pages)", "nested iteration", "best NEST-JA2 variant", "winner"],
        rows,
    ))
    print()


def measured_sweep() -> None:
    print("=" * 72)
    print("Measured sweep on the simulated engine (B = 4 pages)")
    rows = []
    for num_supply in (20, 60, 150, 400, 1000):
        spec = PartsSupplySpec(
            num_parts=40, num_supply=num_supply, rows_per_page=10,
            buffer_pages=4, seed=7,
        )
        catalog = build_parts_supply(spec)
        ni, tr = compare_methods(catalog, GENERATED_JA_QUERY)
        rows.append([
            num_supply,
            ni.page_ios,
            tr.page_ios,
            f"{savings_percent(ni.page_ios, tr.page_ios):.0f}%",
        ])
    print(format_table(
        ["SUPPLY rows", "nested iteration I/Os", "transformation I/Os",
         "saving"],
        rows,
    ))
    print()


def main() -> None:
    section_7_4()
    analytic_sweep()
    measured_sweep()


if __name__ == "__main__":
    main()
