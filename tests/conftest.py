"""Shared fixtures: the lock witness rides along on stress suites.

Every test marked ``stress`` (and every test, when ``REPRO_WITNESS`` is
set in the environment) runs with the runtime lock witness enabled:
locks created during the test are wrapped, acquisition order is
recorded, and the teardown re-raises any violation the test itself
swallowed.  A multi-thread hammer test therefore fails on the *first
observed* order inversion even when the interleaving that would
actually deadlock never fires in that run.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.concurrency.witness import witness


@pytest.fixture(autouse=True)
def lock_witness(request: pytest.FixtureRequest):
    wanted = request.node.get_closest_marker("stress") is not None or bool(
        os.environ.get("REPRO_WITNESS")
    )
    if not wanted:
        yield
        return
    was_active = witness.active
    witness.reset()
    if not was_active:
        witness.enable()
    try:
        yield
        witness.check()
    finally:
        witness.reset()
        if not was_active:
            witness.disable()
