"""Batched bindings: executemany/execute_batch vs the per-vector loop."""

from collections import Counter

import pytest

from repro.api import Database
from repro.serve.batch import BatchIneligible, build_batch_plan

JA_PARAM = (
    "SELECT PNUM FROM PARTS WHERE QOH = "
    "(SELECT COUNT(SHIPDATE) FROM SUPPLY "
    "WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < ?)"
)


def make_db(**kwargs) -> Database:
    db = Database(buffer_pages=64, **kwargs)
    db.create_table("PARTS", ["PNUM", "QOH"])
    db.create_table("SUPPLY", ["PNUM", "QUAN", ("SHIPDATE", "text")])
    db.insert("PARTS", [(i, i % 7) for i in range(1, 40)])
    db.insert(
        "SUPPLY",
        [
            (i % 39 + 1, i % 5, f"19{70 + i % 20}-01-01")
            for i in range(200)
        ],
    )
    return db


def vectors(n):
    return [(f"19{70 + k % 25}-06-01",) for k in range(n)]


class TestEquivalence:
    @pytest.mark.parametrize("engine", ["row", "vectorized"])
    @pytest.mark.parametrize("parallelism", [1, 4])
    def test_batched_matches_looped_and_nested(self, engine, parallelism):
        db = make_db(
            engine=engine, parallelism=parallelism, parallel_threshold=1
        )
        stmt = db.prepare(JA_PARAM)
        vecs = vectors(10)
        batch = stmt.execute_batch(vecs)
        assert batch.strategy == "batched"
        for vector, report in zip(vecs, batch.reports):
            looped = stmt.execute(vector)
            nested = db.run(
                JA_PARAM.replace("?", repr(vector[0])),
                method="nested_iteration",
            )
            assert Counter(report.result.rows) == Counter(
                looped.result.rows
            ) == Counter(nested.result.rows), vector
            assert report.result.columns == looped.result.columns

    def test_flat_parameterized_statement_batches(self):
        db = make_db()
        stmt = db.prepare("SELECT PNUM FROM PARTS WHERE QOH = :q")
        batch = stmt.execute_batch([{"q": k} for k in range(7)])
        assert batch.strategy == "batched"
        for k, report in enumerate(batch.reports):
            reference = db.run(
                f"SELECT PNUM FROM PARTS WHERE QOH = {k}",
                method="nested_iteration",
            )
            assert Counter(report.result.rows) == Counter(
                reference.result.rows
            )

    def test_empty_result_vectors_stay_in_position(self):
        db = make_db()
        stmt = db.prepare("SELECT PNUM FROM PARTS WHERE QOH = ?")
        batch = stmt.execute_batch([(3,), (999,), (4,)])
        assert batch.reports[1].result.rows == []
        assert batch.reports[0].result.rows
        assert batch.reports[2].result.rows

    def test_executemany_returns_per_vector_reports(self):
        db = make_db()
        stmt = db.prepare(JA_PARAM)
        vecs = vectors(5)
        reports = stmt.executemany(vecs)
        assert len(reports) == 5
        assert reports[0].method == "batched-transform"


class TestStrategySelection:
    def test_small_batches_loop(self):
        db = make_db()
        stmt = db.prepare(JA_PARAM)
        assert stmt.execute_batch(vectors(1)).strategy == "loop"
        assert stmt.execute_batch([]).strategy == "loop"

    def test_parameterless_statement_loops(self):
        db = make_db()
        stmt = db.prepare("SELECT PNUM FROM PARTS WHERE QOH = 3")
        batch = stmt.execute_batch([(), ()])
        assert batch.strategy == "loop"
        assert len(batch.reports) == 2

    def test_aggregate_final_is_ineligible_and_loops(self):
        db = make_db()
        stmt = db.prepare("SELECT COUNT(PNUM) FROM PARTS WHERE QOH > ?")
        with pytest.raises(BatchIneligible):
            build_batch_plan(stmt._plan, db.catalog)
        batch = stmt.execute_batch([(0,), (3,)])
        assert batch.strategy == "loop"
        for threshold, report in zip((0, 3), batch.reports):
            reference = db.run(
                f"SELECT COUNT(PNUM) FROM PARTS WHERE QOH > {threshold}",
                method="nested_iteration",
            )
            assert report.result.rows == reference.result.rows

    def test_order_by_is_ineligible(self):
        db = make_db()
        stmt = db.prepare(
            "SELECT PNUM FROM PARTS WHERE QOH = ? ORDER BY PNUM"
        )
        if stmt.mode != "generic":
            pytest.skip("shape not served by a generic plan")
        with pytest.raises(BatchIneligible):
            build_batch_plan(stmt._plan, db.catalog)

    def test_derived_batch_plan_is_cached_per_plan(self):
        db = make_db()
        stmt = db.prepare(JA_PARAM)
        stmt.execute_batch(vectors(3))
        first = stmt._batch
        stmt.execute_batch(vectors(3))
        assert stmt._batch is first
        # DDL re-plans; the stale derived plan must be rebuilt too.
        db.create_index("SUPPLY", "PNUM")
        batch = stmt.execute_batch(vectors(3))
        assert batch.strategy == "batched"
        assert stmt._batch is not first


class TestSnapshotPinning:
    """Satellite: ONE snapshot per batch, for both strategies."""

    def test_mid_batch_commit_does_not_split_loop_batch(self):
        db = make_db()
        # Aggregate final -> loop strategy.
        stmt = db.prepare("SELECT COUNT(PNUM) FROM PARTS WHERE QOH > ?")
        before = db.run(
            "SELECT COUNT(PNUM) FROM PARTS WHERE QOH > 0",
            method="nested_iteration",
        ).result.rows
        original = stmt.execute
        fired = []

        def hooked(vector):
            report = original(vector)
            if not fired:
                fired.append(True)
                # A concurrent commit lands mid-batch: 60 rows that all
                # satisfy QOH > 0.
                db.insert("PARTS", [(100 + i, 50) for i in range(60)])
            return report

        stmt.execute = hooked
        reports = stmt.executemany([(0,)] * 4)
        stmt.execute = original
        # Every vector saw the same committed state (the pre-insert
        # snapshot), even the ones bound after the commit landed.
        assert [r.result.rows for r in reports] == [before] * 4
        # The batch over, fresh executions see the new rows.
        after = stmt.execute((0,))
        assert after.result.rows[0][0] == before[0][0] + 60

    def test_mid_batch_commit_does_not_split_batched_batch(self):
        db = make_db()
        stmt = db.prepare(JA_PARAM)
        vecs = vectors(6)
        expected = [stmt.execute(v).result.rows for v in vecs]
        # The batched plan runs under the catalog read lock, so a
        # concurrent writer can only land before or after the batch —
        # never inside it.  Verify the whole batch agrees with the
        # pre-insert state when run first.
        batch = stmt.execute_batch(vecs)
        assert batch.strategy == "batched"
        assert [
            Counter(r.result.rows) for r in batch.reports
        ] == [Counter(rows) for rows in expected]

    @pytest.mark.parametrize("sql,vecs", [
        ("SELECT COUNT(PNUM) FROM PARTS WHERE QOH > ?", [(0,), (1,), (2,)]),
        (JA_PARAM, [(f"19{70 + k}-06-01",) for k in range(3)]),
    ])
    def test_one_snapshot_activation_per_batch(self, sql, vecs, monkeypatch):
        from repro.storage import visibility

        db = make_db()
        stmt = db.prepare(sql)
        stmt.execute(vecs[0])  # warm the plan (and temp materializations)
        activations = []
        real = visibility.activate

        def counting(snapshot):
            activations.append(snapshot)
            return real(snapshot)

        monkeypatch.setattr(visibility, "activate", counting)
        stmt.executemany(vecs)
        assert len(activations) == 1
