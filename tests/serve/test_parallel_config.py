"""The ``parallelism`` knob through the serving layer.

Mirrors PR 6's ``engine=`` threading: the knob must reach every
executor the serving layer constructs (cached plans, prepared
statements, the fallback session engine), be part of the plan-cache
key (two engines with different degrees must never share a plan), and
leave results and page I/O exactly where the serial engine puts them.
"""

from collections import Counter

from repro.api import Database
from repro.serve.plan import engine_config


def seed_db(**kwargs):
    db = Database(buffer_pages=128, join_method="hash", **kwargs)
    db.create_table("PARTS", ["PNUM", "QOH"], primary_key=["PNUM"])
    db.create_table("SUPPLY", ["PNUM", "QUAN", ("SHIPDATE", "text")])
    db.insert("PARTS", [(i, i % 4) for i in range(1, 120)])
    db.insert(
        "SUPPLY",
        [(i % 50, i % 6, "1979-06-0%d" % (1 + i % 9)) for i in range(400)],
    )
    return db


JA_SQL = (
    "SELECT PNUM FROM PARTS WHERE QOH = "
    "(SELECT COUNT(QUAN) FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM "
    "AND QUAN > 2)"
)


class TestPlanCacheKey:
    def test_engine_config_includes_parallelism(self):
        serial = seed_db(parallelism=1)
        parallel = seed_db(parallelism=4, parallel_threshold=0)
        assert engine_config(serial.engine, "transform") != engine_config(
            parallel.engine, "transform"
        )

    def test_degree_change_is_a_cache_miss(self):
        db = seed_db(parallelism=1)
        db.execute_cached(JA_SQL)
        assert len(db.plan_cache) == 1
        # Reconfigure the live engine: the next lookup must not reuse
        # the serial plan.
        db.engine.parallelism = 4
        db.engine.parallel_threshold = 0
        db.execute_cached(JA_SQL)
        assert len(db.plan_cache) == 2

    def test_same_degree_hits(self):
        db = seed_db(parallelism=4, parallel_threshold=0)
        db.execute_cached(JA_SQL)
        db.execute_cached(JA_SQL)
        assert len(db.plan_cache) == 1
        assert db.plan_cache.stats().hits >= 1


class TestReplayEquivalence:
    def test_cached_parallel_replay_matches_serial(self):
        serial = seed_db(parallelism=1)
        parallel = seed_db(parallelism=4, parallel_threshold=0)
        want = serial.execute_cached(JA_SQL).result.rows
        got = parallel.execute_cached(JA_SQL).result.rows
        assert Counter(got) == Counter(want)
        # Replays (memoized temps aside) stay equivalent too.
        again = parallel.execute_cached(JA_SQL).result.rows
        assert Counter(again) == Counter(want)

    def test_prepared_statement_parallel(self):
        serial = seed_db(parallelism=1)
        parallel = seed_db(parallelism=4, parallel_threshold=0)
        sql = (
            "SELECT PNUM FROM PARTS WHERE QOH = "
            "(SELECT COUNT(QUAN) FROM SUPPLY "
            "WHERE SUPPLY.PNUM = PARTS.PNUM AND QUAN > ?)"
        )
        want = serial.prepare(sql).execute((2,)).result.rows
        got = parallel.prepare(sql).execute((2,)).result.rows
        assert Counter(got) == Counter(want)

    def test_nested_iteration_plan_kind(self):
        serial = seed_db(parallelism=1)
        parallel = seed_db(parallelism=4, parallel_threshold=0)
        want = serial.execute_cached(
            JA_SQL, method="nested_iteration"
        ).result.rows
        got = parallel.execute_cached(
            JA_SQL, method="nested_iteration"
        ).result.rows
        assert Counter(got) == Counter(want)


class TestAnalyzeEquivalence:
    def test_parallel_analyze_identical_stats_and_io(self):
        from repro.catalog.statistics import analyze_table

        serial_db = seed_db()
        parallel_db = seed_db()

        serial_db.catalog.buffer.evict_all()
        serial_db.catalog.buffer.reset_stats()
        serial_stats = analyze_table(serial_db.catalog, "SUPPLY")
        serial_io = serial_db.catalog.buffer.stats()

        parallel_db.catalog.buffer.evict_all()
        parallel_db.catalog.buffer.reset_stats()
        parallel_stats = analyze_table(
            parallel_db.catalog, "SUPPLY", parallelism=4
        )
        parallel_io = parallel_db.catalog.buffer.stats()

        assert parallel_stats == serial_stats
        assert parallel_io.page_ios == serial_io.page_ios

    def test_cost_formulas_see_identical_totals(self):
        """The section-7 formulas are pure functions of the gathered
        statistics, so per-partition ANALYZE must leave every cost the
        planner computes unchanged."""
        from repro.catalog.statistics import analyze_table
        from repro.optimizer.cost import (
            CostParameters,
            hash_join_cost,
            ja2_hash_cost,
        )

        def costs(parallelism):
            db = seed_db()
            stats = analyze_table(
                db.catalog, "SUPPLY", parallelism=parallelism
            )
            parts = analyze_table(db.catalog, "PARTS", parallelism=parallelism)
            pnum = stats.columns["PNUM"]
            params = CostParameters(
                pi=parts.num_pages,
                pj=stats.num_pages,
                pt2=max(1.0, pnum.distinct / 64),
                pt3=stats.num_pages * pnum.equality_selectivity() * 10,
                pt4=max(1.0, pnum.distinct / 64),
                pt=max(1.0, pnum.distinct / 64),
                buffer_pages=128,
                fi_ni=parts.num_rows,
                nt2=pnum.distinct,
            )
            return (
                hash_join_cost(params.pt, params.pi, params.buffer_pages),
                ja2_hash_cost(params),
            )

        assert costs(1) == costs(4)

    def test_database_analyze_uses_engine_degree(self):
        db = seed_db(parallelism=4, parallel_threshold=0)
        db.analyze()
        assert "SUPPLY" in db.catalog.statistics
        reference = seed_db()
        reference.analyze()
        assert (
            db.catalog.statistics["SUPPLY"]
            == reference.catalog.statistics["SUPPLY"]
        )
