"""Plan cache: keying, normalization, LRU bounds, and invalidation."""

from collections import Counter

import pytest

from repro.api import Database
from repro.serve.cache import PlanCache
from repro.serve.normalize import parameterize, fingerprint, user_param_count
from repro.sql.parser import parse

JA_QUERY = (
    "SELECT PNUM FROM PARTS WHERE QOH = "
    "(SELECT COUNT(SHIPDATE) FROM SUPPLY "
    "WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < '1980-06-01')"
)


def make_db() -> Database:
    db = Database(buffer_pages=16)
    db.create_table("PARTS", ["PNUM", "QOH"])
    db.create_table(
        "SUPPLY", ["PNUM", "QUAN", ("SHIPDATE", "text")]
    )
    db.insert("PARTS", [(3, 6), (10, 1), (8, 0)])
    db.insert(
        "SUPPLY",
        [
            (3, 4, "1980-01-01"),
            (3, 2, "1980-08-01"),
            (10, 1, "1980-02-01"),
            (8, 5, "1981-01-01"),
        ],
    )
    return db


class TestNormalization:
    def test_literal_variants_share_a_fingerprint(self):
        a, values_a = parameterize(
            parse("SELECT PNUM FROM PARTS WHERE QOH = 100")
        )
        b, values_b = parameterize(
            parse("select pnum from parts where qoh = 200")
        )
        assert fingerprint(a) == fingerprint(b)
        assert values_a == (100,)
        assert values_b == (200,)

    def test_null_literals_are_not_parameterized(self):
        tree, values = parameterize(
            parse("SELECT PNUM FROM PARTS WHERE QOH = NULL")
        )
        assert values == ()
        assert "NULL" in fingerprint(tree)

    def test_select_list_literals_are_not_parameterized(self):
        tree, values = parameterize(
            parse("SELECT 7 FROM PARTS WHERE QOH = 1")
        )
        assert values == (1,)
        assert "SELECT 7" in fingerprint(tree)

    def test_extracted_slots_follow_user_slots(self):
        tree, values = parameterize(
            parse("SELECT PNUM FROM PARTS WHERE PNUM = ? AND QOH = 5")
        )
        assert user_param_count(tree) == 2
        assert values == (5,)


class TestCacheBehaviour:
    def test_hit_after_miss(self):
        db = make_db()
        first = db.execute_cached(JA_QUERY)
        second = db.execute_cached(JA_QUERY)
        assert first.result.rows == second.result.rows
        stats = db.cache_stats()
        assert stats.hits == 1
        assert stats.misses == 1

    def test_literal_variants_hit_the_same_entry(self):
        db = make_db()
        db.execute_cached("SELECT PNUM FROM PARTS WHERE QOH > 0")
        report = db.execute_cached("select pnum from parts where qoh > 5")
        assert Counter(report.result.rows) == Counter([(3,)])
        stats = db.cache_stats()
        assert stats.hits == 1
        assert len(db.plan_cache) == 1

    def test_cached_rows_match_uncached(self):
        db = make_db()
        plain = db.run(JA_QUERY, method="transform")
        cached = db.execute_cached(JA_QUERY)
        again = db.execute_cached(JA_QUERY)
        assert cached.result.rows == plain.result.rows
        assert again.result.rows == plain.result.rows

    def test_lru_eviction_is_bounded(self):
        db = make_db()
        db.plan_cache = PlanCache(capacity=2)
        db.plan_cache.attach(db.catalog)
        db.engine.plan_cache = db.plan_cache
        queries = [
            "SELECT PNUM FROM PARTS WHERE QOH > 0",
            "SELECT QOH FROM PARTS WHERE PNUM > 0",
            "SELECT PNUM, QOH FROM PARTS WHERE QOH >= 0",
        ]
        for sql in queries:
            db.execute_cached(sql)
        assert len(db.plan_cache) == 2
        assert db.cache_stats().evictions == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)


class TestInvalidation:
    """Schema changes purge; data changes are survived via snapshots."""

    def test_plan_survives_insert_and_sees_fresh_rows(self):
        db = make_db()
        before = db.execute_cached(JA_QUERY)
        assert Counter(before.result.rows) == Counter([(10,), (8,)])
        # A new SUPPLY row changes the COUNT for PNUM 8.  The cached
        # plan stays valid — replays pin the *current* snapshot — so
        # this is a hit, not an invalidation, yet the result is fresh.
        db.insert("SUPPLY", [(8, 1, "1979-01-01")])
        assert len(db.plan_cache) == 1
        after = db.execute_cached(JA_QUERY)
        assert Counter(after.result.rows) == Counter([(10,)])
        stats = db.cache_stats()
        assert stats.invalidations == 0
        assert stats.hits == 1
        assert stats.snapshot_pin_hits == 1
        # The memoized temp materializations described the pre-insert
        # data and were flushed by the data event.
        assert stats.memo_flushes >= 1

    def test_create_index_invalidates(self):
        db = make_db()
        db.execute_cached(JA_QUERY)
        db.create_index("SUPPLY", "PNUM")
        assert len(db.plan_cache) == 0
        report = db.execute_cached(JA_QUERY)
        assert Counter(report.result.rows) == Counter([(10,), (8,)])
        stats = db.cache_stats()
        assert stats.misses == 2

    def test_drop_and_recreate_replans_and_reverifies(self):
        db = make_db()
        sql = "SELECT PNUM FROM PARTS WHERE QOH > 0"
        db.execute_cached(sql)
        db.drop_table("PARTS")
        assert len(db.plan_cache) == 0
        # Recreate with a different shape: the new plan must be built
        # and verified against the *new* schema, not replayed.
        db.create_table("PARTS", ["PNUM", "QOH", "EXTRA"])
        db.insert("PARTS", [(1, 2, 3)])
        report = db.execute_cached(sql)
        assert report.result.rows == [(1,)]

    def test_analyze_bumps_version(self):
        db = make_db()
        db.execute_cached(JA_QUERY)
        version = db.catalog.version
        db.analyze("SUPPLY")
        assert db.catalog.version > version
        assert len(db.plan_cache) == 0

    def test_temp_tables_do_not_invalidate(self):
        db = make_db()
        db.execute_cached(JA_QUERY)
        size = len(db.plan_cache)
        # A transformed run builds and drops temp tables; those must
        # not purge the cache (they are session-local churn).
        db.run(JA_QUERY, method="transform")
        assert len(db.plan_cache) == size


class TestReplayIsolation:
    def test_replay_leaves_no_temps_behind(self):
        db = make_db()
        db.execute_cached(JA_QUERY)
        db.execute_cached(JA_QUERY)
        assert all(
            not db.catalog.get(name).is_temp for name in db.tables()
        )

    def test_shared_temps_are_freed_on_invalidation(self):
        """With sharing on, materializations live in the registry."""
        db = make_db()
        db.execute_cached(JA_QUERY)
        db.execute_cached(JA_QUERY)  # replay leases the shared temps
        registry = db.plan_cache.sharing
        assert len(registry) > 0
        heaps = [entry.heap for entry in registry._entries.values()]
        db.insert("PARTS", [(99, 5)])
        assert len(registry) == 0
        assert all(heap.num_rows == 0 for heap in heaps)

    def test_memoized_temps_are_freed_on_invalidation(self):
        """With sharing off, the private per-plan memo still applies."""
        from repro.serve.cache import PlanCache

        db = make_db()
        db.plan_cache = PlanCache(sharing=False)
        db.plan_cache.attach(db.catalog)
        db.engine.plan_cache = db.plan_cache
        db.execute_cached(JA_QUERY)
        db.execute_cached(JA_QUERY)  # replay hits the temp memo
        plan = next(iter(db.plan_cache._entries.values()))
        assert plan._temp_memo
        heaps = [
            heap
            for temps in plan._temp_memo.values()
            for _name, heap, _columns in temps
        ]
        db.insert("PARTS", [(99, 5)])
        assert not plan._temp_memo
        assert all(heap.num_rows == 0 for heap in heaps)
