"""Cross-query shared subplans: fingerprints, refcounts, invalidation."""

import threading
from collections import Counter

import pytest

from repro.api import Database
from repro.serve.sharing import SharedSubplanRegistry, compute_share_specs
from repro.sql.parser import parse

JA_QUERY = (
    "SELECT PNUM FROM PARTS WHERE QOH = "
    "(SELECT COUNT(SHIPDATE) FROM SUPPLY "
    "WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < '1980-06-01')"
)
# Structurally different outer block, identical inner chain: shares
# every temp the JA query materializes.
JA_SIBLING = (
    "SELECT PNUM, QOH FROM PARTS WHERE QOH >= "
    "(SELECT COUNT(SHIPDATE) FROM SUPPLY "
    "WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < '1980-06-01')"
)


def make_db(**kwargs) -> Database:
    db = Database(buffer_pages=32, **kwargs)
    db.create_table("PARTS", ["PNUM", "QOH"])
    db.create_table("SUPPLY", ["PNUM", "QUAN", ("SHIPDATE", "text")])
    db.insert("PARTS", [(3, 6), (10, 1), (8, 0)])
    db.insert(
        "SUPPLY",
        [
            (3, 4, "1980-01-01"),
            (3, 2, "1980-08-01"),
            (10, 1, "1980-02-01"),
            (8, 5, "1981-01-01"),
        ],
    )
    return db


class TestShareSpecs:
    def _specs(self, db, sql):
        from repro.core.nest_g import nest_g
        from repro.core.pipeline import prepare_query
        from repro.serve.session import SessionCatalog

        session = SessionCatalog(db.catalog)
        rewritten = prepare_query(parse(sql), session)
        try:
            return compute_share_specs(nest_g(rewritten, session))
        finally:
            session.drop_temp_tables()

    def test_identical_chains_share_fingerprints(self):
        db = make_db()
        first = self._specs(db, JA_QUERY)
        second = self._specs(db, JA_SIBLING)
        assert [s.fingerprint for s in first] == [
            s.fingerprint for s in second
        ]

    def test_different_restrictions_do_not_collide(self):
        db = make_db()
        first = self._specs(db, JA_QUERY)
        other = self._specs(
            db, JA_QUERY.replace("SHIPDATE < '1980-06-01'", "SHIPDATE < '1990-06-01'")
        )
        # The restricted inner projection (and everything downstream)
        # differs; the distinct-outer-keys temp is still shared.
        assert first[0].fingerprint == other[0].fingerprint
        assert first[1].fingerprint != other[1].fingerprint
        assert first[2].fingerprint != other[2].fingerprint

    def test_parameter_slots_accumulate_through_the_chain(self):
        db = make_db()
        specs = self._specs(
            db, JA_QUERY.replace("'1980-06-01'", "?")
        )
        assert specs[0].param_slots == ()
        assert specs[1].param_slots == (0,)
        assert specs[2].param_slots == (0,)


class TestCrossQuerySharing:
    def test_sibling_query_reuses_materializations(self):
        db = make_db()
        first = db.execute_cached(JA_QUERY)
        assert any(s.startswith("built") for s in first.steps)
        second = db.execute_cached(JA_SIBLING)
        assert all(s.startswith("shared") for s in second.steps[:-1])
        assert Counter(first.result.rows) == Counter([(10,), (8,)])
        assert Counter(second.result.rows) == Counter(
            [(3, 6), (10, 1), (8, 0)]
        )
        stats = db.cache_stats()
        assert stats.shared_materializations == 3
        assert stats.shared_hits == 3

    def test_replay_of_same_plan_is_not_a_cross_hit(self):
        db = make_db()
        db.execute_cached(JA_QUERY)
        db.execute_cached(JA_QUERY)
        stats = db.cache_stats()
        assert stats.shared_materializations == 3
        assert stats.shared_hits == 0

    def test_insert_purges_and_results_stay_fresh(self):
        db = make_db()
        db.execute_cached(JA_QUERY)
        db.execute_cached(JA_SIBLING)
        db.insert("SUPPLY", [(8, 1, "1979-01-01")])
        stats = db.cache_stats()
        assert stats.shared_purges == 3
        after = db.execute_cached(JA_QUERY)
        assert Counter(after.result.rows) == Counter([(10,)])

    def test_sharing_disabled_keeps_registry_off(self):
        from repro.serve.cache import PlanCache

        db = make_db()
        db.plan_cache = PlanCache(sharing=False)
        db.plan_cache.attach(db.catalog)
        db.engine.plan_cache = db.plan_cache
        db.execute_cached(JA_QUERY)
        report = db.execute_cached(JA_SIBLING)
        assert not any(s.startswith("shared") for s in report.steps)
        stats = db.cache_stats()
        assert stats.shared_materializations == 0


class TestRefcountedLifecycle:
    def test_eviction_of_last_holder_frees_entries(self):
        db = make_db()
        db.execute_cached(JA_QUERY)
        registry = db.plan_cache.sharing
        assert len(registry) == 3
        heaps = [entry.heap for entry in registry._entries.values()]
        db.plan_cache.clear()  # releases every plan -> drops holders
        assert len(registry) == 0
        assert all(heap.num_rows == 0 for heap in heaps)

    def test_surviving_holder_keeps_entries_alive(self):
        db = make_db()
        db.execute_cached(JA_QUERY)
        db.execute_cached(JA_SIBLING)  # second holder of the same temps
        registry = db.plan_cache.sharing
        plans = list(db.plan_cache._entries.values())
        plans[0].release()
        assert len(registry) == 3  # the sibling still holds them
        plans[1].release()
        assert len(registry) == 0

    def test_double_release_is_safe(self):
        db = make_db()
        db.execute_cached(JA_QUERY)
        plan = next(iter(db.plan_cache._entries.values()))
        registry = db.plan_cache.sharing
        plan.release()
        plan.release()  # idempotent: holder set popped on first call
        assert len(registry) == 0

    def test_publish_rejects_stale_data_version(self):
        registry = SharedSubplanRegistry()

        class _Heap:
            num_rows = 1

            def truncate(self):
                self.num_rows = 0

        class _Plan:
            fingerprint = "F"

        key = ("fp", (), 1, 7, ())
        entry = registry.publish(key, _Heap(), ["C"], _Plan(), 8)
        assert entry is None  # a commit landed after the snapshot pin
        assert len(registry) == 0

    def test_capacity_eviction_skips_active_leases(self):
        registry = SharedSubplanRegistry(capacity=1)

        class _Heap:
            def __init__(self):
                self.num_rows = 1

            def truncate(self):
                self.num_rows = 0

        class _Plan:
            fingerprint = "F"

        plan = _Plan()
        keys = [("fp%d" % i, (), 1, 1, ()) for i in range(3)]
        first = registry.publish(keys[0], _Heap(), ["C"], plan, 1)
        assert first is not None  # lease held: pinned against eviction
        registry.publish(keys[1], _Heap(), ["C"], plan, 1)
        registry.publish(keys[2], _Heap(), ["C"], plan, 1)
        assert keys[0] in registry._entries  # active: survived the cap
        registry.release_lease(first)


@pytest.mark.stress
class TestConcurrentSharing:
    THREADS = 8
    ROUNDS = 25

    def test_concurrent_release_vs_eager_invalidation(self):
        """Replays race inserts: no reader may lose pages under it."""
        db = make_db()
        expected = {
            JA_QUERY: Counter(db.run(JA_QUERY, method="nested_iteration").result.rows),
            JA_SIBLING: Counter(
                db.run(JA_SIBLING, method="nested_iteration").result.rows
            ),
        }
        stop = threading.Event()
        failures: list[BaseException] = []

        def reader(sql):
            try:
                while not stop.is_set():
                    report = db.execute_cached(sql)
                    assert Counter(report.result.rows) == expected[sql], sql
            except BaseException as error:
                failures.append(error)

        def writer():
            try:
                for _ in range(self.ROUNDS):
                    # A dangling PNUM: purges shared temps eagerly but
                    # never changes any answer the readers check.
                    db.insert("SUPPLY", [(999, 1, "1980-01-01")])
            except BaseException as error:
                failures.append(error)

        threads = [
            threading.Thread(target=reader, args=(sql,))
            for sql in (JA_QUERY, JA_SIBLING)
            for _ in range(self.THREADS // 2)
        ] + [threading.Thread(target=writer)]
        for thread in threads:
            thread.start()
        threads[-1].join()
        stop.set()
        for thread in threads[:-1]:
            thread.join()
        if failures:
            raise failures[0]
        registry = db.plan_cache.sharing
        # Quiesced: every lease returned, nothing left active.
        assert all(
            entry.active == 0 for entry in registry._entries.values()
        )
