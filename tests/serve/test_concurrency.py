"""Concurrent read path: buffer pool stress and multi-threaded replay."""

import threading
from collections import Counter

from repro.api import Database
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager
from repro.storage.locks import RWLock

THREADS = 8


def run_workers(count, target):
    failures: list[BaseException] = []

    def wrapped(index: int) -> None:
        try:
            target(index)
        except BaseException as error:  # surfaced in the main thread
            failures.append(error)

    workers = [
        threading.Thread(target=wrapped, args=(i,)) for i in range(count)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    if failures:
        raise failures[0]


class TestRWLock:
    def test_readers_are_reentrant(self):
        lock = RWLock()
        with lock.read(), lock.read():
            pass

    def test_write_implies_read(self):
        lock = RWLock()
        with lock.write(), lock.read():
            pass

    def test_concurrent_readers_proceed(self):
        lock = RWLock()
        inside = []
        gate = threading.Barrier(4, timeout=10)

        def reader(_index):
            with lock.read():
                gate.wait()  # deadlocks unless all 4 hold the lock at once
                inside.append(1)

        run_workers(4, reader)
        assert len(inside) == 4

    def test_writer_excludes_readers(self):
        lock = RWLock()
        log = []

        def writer(_index):
            with lock.write():
                log.append("w-in")
                # Readers must not interleave inside this section.
                log.append("w-out")

        def reader(_index):
            with lock.read():
                log.append("r")

        run_workers(
            6, lambda i: writer(i) if i % 2 else reader(i)
        )
        text = "".join(log)
        assert "w-inw-out" in text.replace("r", "")
        for start in range(len(log)):
            if log[start] == "w-in":
                assert log[start + 1] == "w-out"


class TestBufferPoolStress:
    def test_concurrent_pin_unpin_evict_with_full_pool(self):
        """Hammer a tiny pool from 8 threads; no lost or corrupt pages."""
        disk = DiskManager()
        pool = BufferPool(disk, capacity=4)
        pages = []
        for value in range(32):
            page = pool.new_page(capacity=4, pin=True)
            page.append((value,))
            pool.unpin(page.page_id)
            pages.append((page.page_id, value))
        pool.evict_all()

        def worker(index):
            for round_number in range(40):
                page_id, value = pages[(index * 7 + round_number) % 32]
                page = pool.get_page(page_id, pin=True)
                try:
                    assert list(page.rows) == [(value,)], (
                        f"page {page_id} corrupted"
                    )
                finally:
                    pool.unpin(page_id)
                if round_number % 5 == 0:
                    pool.evict_all()  # skips pinned frames

        run_workers(THREADS, worker)
        # Every frame must end unpinned: re-reading all pages works.
        pool.evict_all()
        for page_id, value in pages:
            page = pool.get_page(page_id)
            assert list(page.rows) == [(value,)]

    def test_io_delay_sleeps_outside_locks(self):
        """Two delayed reads from two threads overlap, not serialize."""
        import time

        disk = DiskManager(io_delay=0.05)
        pool = BufferPool(disk, capacity=4)
        ids = []
        for value in range(2):
            page = pool.new_page(capacity=4)
            page.append((value,))
            ids.append(page.page_id)
        pool.evict_all()

        start = time.perf_counter()
        run_workers(2, lambda i: pool.get_page(ids[i]))
        elapsed = time.perf_counter() - start
        assert elapsed < 0.095, f"delayed reads serialized: {elapsed:.3f}s"


class TestConcurrentReplay:
    JA_QUERY = (
        "SELECT PNUM FROM PARTS WHERE QOH = "
        "(SELECT COUNT(SHIPDATE) FROM SUPPLY "
        "WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < ?)"
    )

    def make_db(self) -> Database:
        db = Database(buffer_pages=16)
        db.create_table("PARTS", ["PNUM", "QOH"])
        db.create_table("SUPPLY", ["PNUM", "QUAN", ("SHIPDATE", "text")])
        db.insert(
            "PARTS", [(n, n % 4) for n in range(1, 40)]
        )
        db.insert(
            "SUPPLY",
            [
                (n % 39 + 1, n, "1979-01-01" if n % 3 else "1981-01-01")
                for n in range(120)
            ],
        )
        return db

    def test_eight_threads_match_single_thread(self):
        db = self.make_db()
        statement = db.prepare(self.JA_QUERY)
        expected = statement.execute(("1980-06-01",)).result.rows
        results: dict[int, list] = {}

        def worker(index):
            rows = None
            for _ in range(5):
                rows = statement.execute(("1980-06-01",)).result.rows
            results[index] = rows

        run_workers(THREADS, worker)
        for index in range(THREADS):
            assert Counter(results[index]) == Counter(expected), (
                f"thread {index} diverged"
            )

    def test_concurrent_distinct_vectors(self):
        """Different bind vectors from different threads don't mix."""
        db = self.make_db()
        statement = db.prepare(
            "SELECT PNUM FROM PARTS WHERE QOH >= ?"
        )
        expected = {
            floor: Counter(statement.execute((floor,)).result.rows)
            for floor in range(4)
        }

        def worker(index):
            floor = index % 4
            for _ in range(5):
                rows = statement.execute((floor,)).result.rows
                assert Counter(rows) == expected[floor], (
                    f"vector {floor} got another vector's rows"
                )

        run_workers(THREADS, worker)

    def test_concurrent_run_cached(self):
        db = self.make_db()
        sql = self.JA_QUERY.replace("?", "'1980-06-01'")
        expected = Counter(db.execute_cached(sql).result.rows)

        def worker(_index):
            for _ in range(5):
                rows = db.execute_cached(sql).result.rows
                assert Counter(rows) == expected

        run_workers(THREADS, worker)
        stats = db.cache_stats()
        assert stats.hits >= THREADS * 5
