"""Prepared statements: binding, modes, and result fidelity."""

from collections import Counter

import pytest

from repro.api import Database
from repro.difftest.normalize import normalize_rows
from repro.difftest.oracle import SQLiteOracle
from repro.errors import BindError
from repro.sql.lexer import LexError
from repro.sql.parser import parse
from repro.sql.printer import to_sql


def make_db(**kwargs) -> Database:
    db = Database(buffer_pages=16, **kwargs)
    db.create_table("PARTS", ["PNUM", "QOH"])
    db.create_table("SUPPLY", ["PNUM", "QUAN", ("SHIPDATE", "text")])
    db.insert("PARTS", [(3, 6), (10, 1), (8, 0)])
    db.insert(
        "SUPPLY",
        [
            (3, 4, "1980-01-01"),
            (3, 2, "1980-08-01"),
            (10, 1, "1980-02-01"),
            (8, 5, "1981-01-01"),
        ],
    )
    return db


class TestParameterSyntax:
    def test_positional_markers_take_successive_slots(self):
        select = parse("SELECT PNUM FROM PARTS WHERE PNUM = ? AND QOH = ?")
        assert to_sql(select).count("?") == 2

    def test_named_parameters_share_slots(self):
        stmt = make_db().prepare(
            "SELECT PNUM FROM PARTS WHERE QOH >= :lo AND QOH >= :lo"
        )
        assert stmt.param_count == 1
        assert stmt.named_params == {"LO": 0}

    def test_printer_round_trips_markers(self):
        sql = "SELECT PNUM FROM PARTS WHERE QOH BETWEEN :LO AND :HI"
        assert to_sql(parse(sql)).count(":LO") == 1
        assert to_sql(parse(sql)).count(":HI") == 1

    def test_bare_colon_is_a_lex_error(self):
        with pytest.raises(LexError):
            parse("SELECT PNUM FROM PARTS WHERE QOH = : 5")


class TestBinding:
    def test_positional_execution(self):
        stmt = make_db().prepare("SELECT PNUM FROM PARTS WHERE QOH >= ?")
        assert Counter(stmt.execute((1,)).result.rows) == Counter(
            [(3,), (10,)]
        )
        assert Counter(stmt.execute((6,)).result.rows) == Counter([(3,)])

    def test_named_execution(self):
        stmt = make_db().prepare(
            "SELECT PNUM FROM PARTS WHERE QOH BETWEEN :lo AND :hi"
        )
        rows = stmt.execute({"lo": 0, "hi": 5}).result.rows
        assert Counter(rows) == Counter([(10,), (8,)])

    def test_missing_named_value_is_an_error(self):
        stmt = make_db().prepare(
            "SELECT PNUM FROM PARTS WHERE QOH BETWEEN :lo AND :hi"
        )
        with pytest.raises(BindError, match="missing value"):
            stmt.execute({"lo": 0})

    def test_unknown_name_is_an_error(self):
        stmt = make_db().prepare("SELECT PNUM FROM PARTS WHERE QOH >= :lo")
        with pytest.raises(BindError, match="no parameter"):
            stmt.execute({"hi": 1})

    def test_wrong_arity_is_an_error(self):
        stmt = make_db().prepare("SELECT PNUM FROM PARTS WHERE QOH >= ?")
        with pytest.raises(BindError, match="takes 1 parameter"):
            stmt.execute((1, 2))

    def test_type_mismatch_is_an_error(self):
        stmt = make_db().prepare("SELECT PNUM FROM PARTS WHERE QOH >= ?")
        with pytest.raises(BindError, match="expects int"):
            stmt.execute(("ten",))

    def test_bool_does_not_pass_as_int(self):
        stmt = make_db().prepare("SELECT PNUM FROM PARTS WHERE QOH >= ?")
        with pytest.raises(BindError):
            stmt.execute((True,))

    def test_null_bind_is_rejected_in_plain_comparison(self):
        stmt = make_db().prepare("SELECT PNUM FROM PARTS WHERE QOH = ?")
        with pytest.raises(BindError, match="IS NULL"):
            stmt.execute((None,))

    def test_executemany(self):
        stmt = make_db().prepare("SELECT PNUM FROM PARTS WHERE QOH >= ?")
        reports = stmt.executemany([(0,), (1,), (6,)])
        assert [len(r.result.rows) for r in reports] == [3, 2, 1]


class TestModes:
    def test_generic_mode_for_plain_predicates(self):
        stmt = make_db().prepare("SELECT PNUM FROM PARTS WHERE QOH >= ?")
        assert stmt.mode == "generic"

    def test_custom_mode_for_parameter_under_type_a(self):
        stmt = make_db().prepare(
            "SELECT PNUM FROM PARTS WHERE QOH > "
            "(SELECT AVG(QOH) FROM PARTS WHERE QOH < ?)"
        )
        assert stmt.mode == "custom"
        assert Counter(stmt.execute((5,)).result.rows) == Counter(
            [(3,), (10,)]
        )
        assert Counter(stmt.execute((100,)).result.rows) == Counter([(3,)])
        # Same vector again: the per-vector plan replays.
        assert Counter(stmt.execute((5,)).result.rows) == Counter(
            [(3,), (10,)]
        )

    def test_replan_after_catalog_change(self):
        db = make_db()
        stmt = db.prepare("SELECT PNUM FROM PARTS WHERE QOH >= ?")
        first = stmt.execute((1,))
        db.insert("PARTS", [(50, 9)])
        second = stmt.execute((1,))
        assert Counter(second.result.rows) == Counter(
            [(3,), (10,), (50,)]
        )
        assert first.result.rows != second.result.rows


class TestResultFidelity:
    """Cached paths must agree with the interpreter and with SQLite."""

    #: (sql, params, engine fix-up flags needed for multiset fidelity —
    #: type-N merges fan out duplicate inner PNUMs without dedupe_inner,
    #: the DESIGN.md caveat).
    QUERIES = [
        ("SELECT PNUM FROM PARTS WHERE QOH >= ?", (1,), {}),
        (
            "SELECT PNUM FROM PARTS WHERE QOH = "
            "(SELECT COUNT(SHIPDATE) FROM SUPPLY "
            "WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < ?)",
            ("1980-06-01",),
            {},
        ),
        (
            "SELECT PNUM FROM PARTS WHERE PNUM IN "
            "(SELECT PNUM FROM SUPPLY WHERE QUAN >= ?)",
            (2,),
            {"dedupe_inner": True},
        ),
    ]

    @pytest.mark.parametrize("sql,params,flags", QUERIES)
    def test_prepared_matches_interpreter_and_sqlite(self, sql, params, flags):
        db = make_db(**flags)
        prepared = db.prepare(sql).execute(params).result.rows

        # Interpreter baseline: bind by literal substitution.
        literal_sql = sql
        for value in params:
            literal = repr(value) if isinstance(value, str) else str(value)
            literal_sql = literal_sql.replace("?", literal, 1)
        interpreted = db.run(
            literal_sql, method="nested_iteration"
        ).result.rows
        assert Counter(prepared) == Counter(interpreted)

        with SQLiteOracle(db.catalog) as oracle:
            sqlite_rows = oracle.run(literal_sql)
        assert normalize_rows(prepared) == normalize_rows(sqlite_rows)

    @pytest.mark.parametrize("sql,params,flags", QUERIES)
    def test_cached_matches_prepared(self, sql, params, flags):
        db = make_db(**flags)
        prepared = db.prepare(sql).execute(params).result.rows
        literal_sql = sql
        for value in params:
            literal = repr(value) if isinstance(value, str) else str(value)
            literal_sql = literal_sql.replace("?", literal, 1)
        cached = db.execute_cached(literal_sql).result.rows
        replayed = db.execute_cached(literal_sql).result.rows
        assert cached == replayed
        assert Counter(cached) == Counter(prepared)
