"""Tests for Relation and RowSchema."""

import pytest

from repro.engine.relation import Relation, temp_rows_per_page
from repro.engine.schema import RowSchema
from repro.errors import BindError
from repro.sql.ast import ColumnRef
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager


def make_buffer(capacity=4):
    return BufferPool(DiskManager(), capacity=capacity)


class TestRowSchema:
    def setup_method(self):
        self.schema = RowSchema(
            [("PARTS", "PNUM"), ("PARTS", "QOH"), ("SUPPLY", "PNUM")]
        )

    def test_len_and_names(self):
        assert len(self.schema) == 3
        assert self.schema.qualified_names() == [
            "PARTS.PNUM", "PARTS.QOH", "SUPPLY.PNUM"
        ]
        assert self.schema.column_names() == ["PNUM", "QOH", "PNUM"]

    def test_qualifiers(self):
        assert self.schema.qualifiers == {"PARTS", "SUPPLY"}

    def test_for_table(self):
        schema = RowSchema.for_table("T", ["A", "B"])
        assert schema.fields == (("T", "A"), ("T", "B"))

    def test_concatenation(self):
        left = RowSchema([("L", "A")])
        right = RowSchema([("R", "B")])
        assert (left + right).fields == (("L", "A"), ("R", "B"))

    def test_qualified_lookup(self):
        assert self.schema.index_of(ColumnRef("SUPPLY", "PNUM")) == 2
        assert self.schema.index_of(ColumnRef("PARTS", "PNUM")) == 0

    def test_unqualified_unique_lookup(self):
        assert self.schema.index_of(ColumnRef(None, "QOH")) == 1

    def test_unqualified_ambiguous_raises(self):
        with pytest.raises(BindError):
            self.schema.index_of(ColumnRef(None, "PNUM"))

    def test_missing_raises_and_try_returns_none(self):
        with pytest.raises(BindError):
            self.schema.index_of(ColumnRef(None, "NOPE"))
        assert self.schema.try_index_of(ColumnRef(None, "NOPE")) is None

    def test_equality_and_hash(self):
        twin = RowSchema(self.schema.fields)
        assert twin == self.schema
        assert hash(twin) == hash(self.schema)

    def test_unqualified_field_printing(self):
        schema = RowSchema([(None, "CT")])
        assert schema.qualified_names() == ["CT"]


class TestRelation:
    def test_requires_exactly_one_backing(self):
        schema = RowSchema([(None, "A")])
        with pytest.raises(ValueError):
            Relation(schema)
        with pytest.raises(ValueError):
            Relation(schema, rows=[], heap=object())  # type: ignore[arg-type]

    def test_in_memory_relation(self):
        schema = RowSchema([(None, "A")])
        relation = Relation.from_rows(schema, [(1,), (2,)], name="M")
        assert not relation.is_heap_backed
        assert relation.num_rows == 2
        assert relation.num_pages == 0
        assert relation.to_list() == [(1,), (2,)]
        # Re-iterable.
        assert relation.to_list() == [(1,), (2,)]

    def test_materialize_writes_pages(self):
        buffer = make_buffer()
        schema = RowSchema([(None, "A")])
        relation = Relation.materialize(
            schema, ((i,) for i in range(10)), buffer, rows_per_page=4
        )
        assert relation.is_heap_backed
        assert relation.num_pages == 3
        assert buffer.disk.page_writes >= 3
        assert relation.to_list() == [(i,) for i in range(10)]

    def test_drop_frees_pages(self):
        buffer = make_buffer()
        schema = RowSchema([(None, "A")])
        relation = Relation.materialize(schema, [(1,)], buffer)
        relation.drop()
        assert buffer.disk.num_pages == 0

    def test_repr_mentions_backing(self):
        schema = RowSchema([(None, "A")])
        memory = Relation.from_rows(schema, [], name="M")
        assert "memory" in repr(memory)

    def test_temp_rows_per_page_scales_with_width(self):
        assert temp_rows_per_page(1) > temp_rows_per_page(4) >= 1
        assert temp_rows_per_page(1000) == 1
