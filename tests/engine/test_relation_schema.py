"""Tests for Relation and RowSchema."""

import pytest

from repro.engine.relation import Relation, temp_rows_per_page
from repro.engine.schema import RowSchema
from repro.errors import BindError
from repro.sql.ast import ColumnRef
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager


def make_buffer(capacity=4):
    return BufferPool(DiskManager(), capacity=capacity)


class TestRowSchema:
    def setup_method(self):
        self.schema = RowSchema(
            [("PARTS", "PNUM"), ("PARTS", "QOH"), ("SUPPLY", "PNUM")]
        )

    def test_len_and_names(self):
        assert len(self.schema) == 3
        assert self.schema.qualified_names() == [
            "PARTS.PNUM", "PARTS.QOH", "SUPPLY.PNUM"
        ]
        assert self.schema.column_names() == ["PNUM", "QOH", "PNUM"]

    def test_qualifiers(self):
        assert self.schema.qualifiers == {"PARTS", "SUPPLY"}

    def test_for_table(self):
        schema = RowSchema.for_table("T", ["A", "B"])
        assert schema.fields == (("T", "A"), ("T", "B"))

    def test_concatenation(self):
        left = RowSchema([("L", "A")])
        right = RowSchema([("R", "B")])
        assert (left + right).fields == (("L", "A"), ("R", "B"))

    def test_qualified_lookup(self):
        assert self.schema.index_of(ColumnRef("SUPPLY", "PNUM")) == 2
        assert self.schema.index_of(ColumnRef("PARTS", "PNUM")) == 0

    def test_unqualified_unique_lookup(self):
        assert self.schema.index_of(ColumnRef(None, "QOH")) == 1

    def test_unqualified_ambiguous_raises(self):
        with pytest.raises(BindError):
            self.schema.index_of(ColumnRef(None, "PNUM"))

    def test_missing_raises_and_try_returns_none(self):
        with pytest.raises(BindError):
            self.schema.index_of(ColumnRef(None, "NOPE"))
        assert self.schema.try_index_of(ColumnRef(None, "NOPE")) is None

    def test_equality_and_hash(self):
        twin = RowSchema(self.schema.fields)
        assert twin == self.schema
        assert hash(twin) == hash(self.schema)

    def test_unqualified_field_printing(self):
        schema = RowSchema([(None, "CT")])
        assert schema.qualified_names() == ["CT"]


class TestRelation:
    def test_requires_exactly_one_backing(self):
        schema = RowSchema([(None, "A")])
        with pytest.raises(ValueError):
            Relation(schema)
        with pytest.raises(ValueError):
            Relation(schema, rows=[], heap=object())  # type: ignore[arg-type]

    def test_in_memory_relation(self):
        schema = RowSchema([(None, "A")])
        relation = Relation.from_rows(schema, [(1,), (2,)], name="M")
        assert not relation.is_heap_backed
        assert relation.num_rows == 2
        assert relation.num_pages == 0
        assert relation.to_list() == [(1,), (2,)]
        # Re-iterable.
        assert relation.to_list() == [(1,), (2,)]

    def test_materialize_writes_pages(self):
        buffer = make_buffer()
        schema = RowSchema([(None, "A")])
        relation = Relation.materialize(
            schema, ((i,) for i in range(10)), buffer, rows_per_page=4
        )
        assert relation.is_heap_backed
        assert relation.num_pages == 3
        assert buffer.disk.page_writes >= 3
        assert relation.to_list() == [(i,) for i in range(10)]

    def test_drop_frees_pages(self):
        buffer = make_buffer()
        schema = RowSchema([(None, "A")])
        relation = Relation.materialize(schema, [(1,)], buffer)
        relation.drop()
        assert buffer.disk.num_pages == 0

    def test_repr_mentions_backing(self):
        schema = RowSchema([(None, "A")])
        memory = Relation.from_rows(schema, [], name="M")
        assert "memory" in repr(memory)

    def test_temp_rows_per_page_scales_with_width(self):
        assert temp_rows_per_page(1) > temp_rows_per_page(4) >= 1
        assert temp_rows_per_page(1000) == 1


class TestTempRowsPerPage:
    """Degenerate temp widths (the PR-6 sizing fix)."""

    def test_zero_columns_sized_like_one(self):
        # An EXISTS-style probe projects no columns, but its tuples
        # still occupy a slot each — never "infinite rows per page".
        assert temp_rows_per_page(0) == temp_rows_per_page(1)

    def test_negative_width_raises(self):
        with pytest.raises(ValueError):
            temp_rows_per_page(-1)

    def test_matches_catalog_sizing_rule(self):
        # page_bytes // row_width with a floor of one tuple per page.
        assert temp_rows_per_page(2) == temp_rows_per_page(1) // 2
        assert temp_rows_per_page(10_000) == 1


class TestRowidRelation:
    """The rowid view must delegate backing state to its base (the
    PR-6 split-brain fix): backing checks, row/page counts, and drop
    decisions all agree with the base relation."""

    def _heap_base(self, buffer):
        schema = RowSchema([("T", "A")])
        return Relation.materialize(
            schema, [(10,), (20,), (10,), (30,)], buffer, rows_per_page=2,
            name="base",
        )

    def test_heap_backed_view_delegates_backing_state(self):
        from repro.engine.relation import ROWID_COLUMN, RowidRelation

        buffer = make_buffer()
        base = self._heap_base(buffer)
        view = RowidRelation(base, "T")
        assert view.is_heap_backed
        assert view.heap is base.heap
        assert view.num_rows == base.num_rows
        assert view.num_pages == base.num_pages
        assert view.schema.column_names()[-1] == ROWID_COLUMN

    def test_view_rows_carry_scan_position(self):
        from repro.engine.relation import RowidRelation

        buffer = make_buffer()
        view = RowidRelation(self._heap_base(buffer), "T")
        rows = view.to_list()
        # Stable identity even for value-identical tuples.
        assert rows == [(10, 0), (20, 1), (10, 2), (30, 3)]
        # Batch access agrees with row access.
        batched = [row for batch in view.iter_batches() for row in batch]
        assert batched == rows

    def test_memory_backed_view_delegates(self):
        from repro.engine.relation import RowidRelation

        schema = RowSchema([("T", "A")])
        base = Relation.from_rows(schema, [(1,), (1,)])
        view = RowidRelation(base, "T")
        assert not view.is_heap_backed
        assert view.num_rows == 2
        assert view.num_pages == 0
        assert view.to_list() == [(1, 0), (1, 1)]

    def test_drop_frees_base_pages(self):
        from repro.engine.relation import RowidRelation

        buffer = make_buffer()
        base = self._heap_base(buffer)
        view = RowidRelation(base, "T")
        view.drop()
        assert buffer.disk.num_pages == 0
        assert base.num_rows == 0
